"""Cluster DAGs and structured Bayesian networks [78] (Fig 19).

A *cluster DAG* is a DAG whose nodes are disjoint sets of Boolean
variables; it asserts that a cluster is independent of its
non-descendants given its parents (the hierarchical-map independences of
Section 4.2).  Quantifying every cluster with a conditional PSDD yields
a *structured Bayesian network* (SBN) whose joint is the product of the
conditional distributions.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Sequence, \
    Tuple

from ..psdd.psdd import PsddNode
from ..psdd.learn import learn_parameters
from ..psdd.sample import sample as psdd_sample
from .conditional import ConditionalPsdd

__all__ = ["ClusterDag", "StructuredBayesianNetwork"]


class ClusterDag:
    """A DAG over named clusters of Boolean variables."""

    def __init__(self):
        self._vars: Dict[str, Tuple[int, ...]] = {}
        self._parents: Dict[str, Tuple[str, ...]] = {}
        self._order: List[str] = []

    def add_cluster(self, name: str, variables: Sequence[int],
                    parents: Sequence[str] = ()) -> "ClusterDag":
        """Add a cluster; parents must already exist; variable sets must
        be disjoint across clusters."""
        if name in self._vars:
            raise ValueError(f"cluster {name!r} already present")
        new_vars = tuple(variables)
        for other, vars_ in self._vars.items():
            if set(vars_) & set(new_vars):
                raise ValueError(
                    f"cluster {name!r} shares variables with {other!r}")
        for parent in parents:
            if parent not in self._vars:
                raise ValueError(f"unknown parent cluster {parent!r}")
        self._vars[name] = new_vars
        self._parents[name] = tuple(parents)
        self._order.append(name)
        return self

    @property
    def clusters(self) -> List[str]:
        return list(self._order)

    def variables(self, name: str) -> Tuple[int, ...]:
        return self._vars[name]

    def parents(self, name: str) -> Tuple[str, ...]:
        return self._parents[name]

    def parent_variables(self, name: str) -> Tuple[int, ...]:
        result: List[int] = []
        for parent in self._parents[name]:
            result.extend(self._vars[parent])
        return tuple(result)

    def all_variables(self) -> List[int]:
        return [v for name in self._order for v in self._vars[name]]


class StructuredBayesianNetwork:
    """A cluster DAG quantified with conditional PSDDs.

    Root clusters (no parents) carry a plain PSDD; the rest carry a
    :class:`ConditionalPsdd` over their parents' variables.
    """

    def __init__(self, dag: ClusterDag):
        self.dag = dag
        self._roots: Dict[str, PsddNode] = {}
        self._conditionals: Dict[str, ConditionalPsdd] = {}

    def set_root_distribution(self, name: str,
                              psdd: PsddNode) -> "StructuredBayesianNetwork":
        if self.dag.parents(name):
            raise ValueError(f"cluster {name!r} has parents; use "
                             "set_conditional")
        self._roots[name] = psdd
        return self

    def set_conditional(self, name: str, conditional: ConditionalPsdd
                        ) -> "StructuredBayesianNetwork":
        if not self.dag.parents(name):
            raise ValueError(f"cluster {name!r} is a root; use "
                             "set_root_distribution")
        self._conditionals[name] = conditional
        return self

    def _check_quantified(self) -> None:
        for name in self.dag.clusters:
            if self.dag.parents(name):
                if name not in self._conditionals:
                    raise ValueError(f"cluster {name!r} not quantified")
            elif name not in self._roots:
                raise ValueError(f"cluster {name!r} not quantified")

    # -- semantics ----------------------------------------------------------------
    def probability(self, assignment: Mapping[int, bool]) -> float:
        """Joint probability of a complete assignment: the product of
        per-cluster conditional probabilities."""
        self._check_quantified()
        value = 1.0
        for name in self.dag.clusters:
            if self.dag.parents(name):
                value *= self._conditionals[name].probability(
                    assignment, assignment)
            else:
                value *= self._roots[name].probability(assignment)
            if value == 0.0:
                return 0.0
        return value

    def sample(self, rng: random.Random | None = None) -> Dict[int, bool]:
        """Ancestral sampling in cluster order."""
        self._check_quantified()
        rng = rng or random.Random()
        assignment: Dict[int, bool] = {}
        for name in self.dag.clusters:
            if self.dag.parents(name):
                drawn = self._conditionals[name].sample(assignment, rng)
            else:
                drawn = psdd_sample(self._roots[name], rng)
            assignment.update(drawn)
        return assignment

    def fit(self, data: Sequence[Tuple[Mapping[int, bool], float]],
            alpha: float = 0.0) -> "StructuredBayesianNetwork":
        """Learn every cluster's parameters from complete assignments."""
        self._check_quantified()
        for name in self.dag.clusters:
            if self.dag.parents(name):
                triples = [(a, a, c) for a, c in data]
                self._conditionals[name].fit(triples, alpha=alpha)
            else:
                learn_parameters(self._roots[name], list(data),
                                 alpha=alpha)
        return self

    def size(self) -> int:
        """Total circuit size over all clusters."""
        self._check_quantified()
        total = sum(p.size() for p in self._roots.values())
        total += sum(c.size() for c in self._conditionals.values())
        return total

    def __repr__(self) -> str:
        return f"StructuredBayesianNetwork({len(self.dag.clusters)} " \
               "clusters)"
