"""Hierarchical maps (Figs 18–22): scaling route compilation by region
decomposition.

Nodes of a map are partitioned into named regions.  Edges *between*
regions ("crossings", the paper's e₁…e₆) form the root cluster of a
cluster DAG; each region's *inner* edges (c₁…c₆ for Culver City) form a
child cluster whose structured space is conditioned on the incident
crossings — exactly the Fig 20 story: the valid routes inside Culver
City are a function of the Westside crossings used to enter/exit it.

The construction needs the hierarchical independence that motivates
the paper's hierarchical maps: given the crossing pattern, the inner
segments of different regions combine freely.  That is only true when
every region is traversed as one contiguous segment — otherwise the
*pairing* of crossing endpoints inside one region couples with the
pairings of its neighbours.  The model therefore restricts the route
space to *hierarchical routes*: the source/destination regions use
exactly one crossing and every other region uses zero or two (the same
enter-once/exit-once reading the paper gives for Fig 18).  With that
restriction the product decomposition is exact; the tests verify the
distribution sums to one over the space.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, \
    Tuple


from ..psdd.psdd import psdd_from_sdd
from ..sdd.compiler import compile_terms_sdd
from ..sdd.manager import SddManager
from ..vtree.construct import balanced_vtree
from ..spaces.gridmap import Node, RoadMap
from ..spaces.routes import enumerate_routes
from .cluster_dag import ClusterDag, StructuredBayesianNetwork
from .conditional import ConditionalPsdd

__all__ = ["HierarchicalMap", "NestedHierarchicalMap"]


class HierarchicalMap:
    """A two-level hierarchical route model over a partitioned map."""

    def __init__(self, road_map: RoadMap, regions: Mapping[str,
                                                           Sequence[Node]],
                 source: Node, destination: Node,
                 max_length: Optional[int] = None):
        self.road_map = road_map
        self.source = source
        self.destination = destination
        self.regions: Dict[str, FrozenSet[Node]] = {
            name: frozenset(nodes) for name, nodes in regions.items()}
        self._validate_partition()
        if self._region_of(source) == self._region_of(destination):
            raise ValueError("source and destination must lie in "
                             "different regions of a hierarchical map")
        self._split_edges()
        self.all_routes = enumerate_routes(road_map, source, destination,
                                           max_length)
        self.routes = [route for route in self.all_routes
                       if self.is_hierarchical_route(route)]
        if not self.routes:
            raise ValueError("no hierarchical route between the "
                             "given endpoints")
        self._build_network()

    # -- structure ---------------------------------------------------------------
    def _validate_partition(self) -> None:
        seen: set = set()
        for name, nodes in self.regions.items():
            if seen & nodes:
                raise ValueError(f"region {name!r} overlaps another")
            seen |= nodes
        missing = set(self.road_map.nodes) - seen
        if missing:
            raise ValueError(f"nodes not covered by regions: {missing}")

    def _region_of(self, node: Node) -> str:
        for name, nodes in self.regions.items():
            if node in nodes:
                return name
        raise KeyError(node)

    def _split_edges(self) -> None:
        self.crossing_vars: List[int] = []
        self.inner_vars: Dict[str, List[int]] = {
            name: [] for name in self.regions}
        for edge in self.road_map.edges:
            a, b = edge
            var = self.road_map.edge_variable(a, b)
            ra, rb = self._region_of(a), self._region_of(b)
            if ra == rb:
                self.inner_vars[ra].append(var)
            else:
                self.crossing_vars.append(var)

    # -- construction -------------------------------------------------------------
    def _build_network(self) -> None:
        dag = ClusterDag()
        dag.add_cluster("crossings", self.crossing_vars)
        region_names = [name for name in self.regions
                        if self.inner_vars[name]]
        for name in region_names:
            dag.add_cluster(name, self.inner_vars[name],
                            parents=["crossings"])
        self.network = StructuredBayesianNetwork(dag)

        # root: the space of realized crossing patterns
        root_manager = SddManager(balanced_vtree(self.crossing_vars))
        patterns = set()
        route_assignments = [self.road_map.route_assignment(route)
                             for route in self.routes]
        for assignment in route_assignments:
            patterns.add(tuple(v if assignment[v] else -v
                               for v in self.crossing_vars))
        root_sdd = compile_terms_sdd(sorted(patterns), root_manager)
        self.network.set_root_distribution(
            "crossings", psdd_from_sdd(root_sdd))

        # regions: conditional spaces keyed by incident crossings
        for name in region_names:
            conditional = self._build_region_conditional(
                name, root_manager, route_assignments)
            self.network.set_conditional(name, conditional)

    def _incident_crossings(self, name: str) -> List[int]:
        result = []
        for var in self.crossing_vars:
            a, b = self.road_map.edge_of_variable(var)
            if a in self.regions[name] or b in self.regions[name]:
                result.append(var)
        return result

    def _build_region_conditional(self, name: str,
                                  root_manager: SddManager,
                                  route_assignments) -> ConditionalPsdd:
        inner = self.inner_vars[name]
        incident = self._incident_crossings(name)
        child_manager = SddManager(balanced_vtree(inner))
        spaces: Dict[Tuple[int, ...], set] = {}
        for assignment in route_assignments:
            context = tuple(v if assignment[v] else -v for v in incident)
            term = tuple(v if assignment[v] else -v for v in inner)
            spaces.setdefault(context, set()).add(term)
        contexts = []
        covered = root_manager.false
        for context, terms in sorted(spaces.items()):
            gate = root_manager.term(context)
            covered = root_manager.disjoin(covered, gate)
            space = compile_terms_sdd(sorted(terms), child_manager)
            contexts.append((gate, space))
        remainder = root_manager.negate(covered)
        if not remainder.is_false:
            # unrealized crossing patterns: the region is not traversed
            empty = child_manager.term([-v for v in inner])
            contexts.append((remainder, empty))
        return ConditionalPsdd(contexts, root_manager, child_manager)

    def is_hierarchical_route(self, path: Sequence[Node]) -> bool:
        """Does the route traverse each region as a single segment?

        Source/destination regions must use exactly one crossing; every
        other region zero or two.
        """
        assignment = self.road_map.route_assignment(path)
        used: Dict[str, int] = {name: 0 for name in self.regions}
        for var in self.crossing_vars:
            if assignment[var]:
                a, b = self.road_map.edge_of_variable(var)
                used[self._region_of(a)] += 1
                used[self._region_of(b)] += 1
        terminal = {self._region_of(self.source),
                    self._region_of(self.destination)}
        for name, count in used.items():
            if name in terminal:
                if count != 1:
                    return False
            elif count not in (0, 2):
                return False
        return True

    # -- use ---------------------------------------------------------------------
    def fit(self, trajectories: Sequence[Sequence[Node]],
            alpha: float = 0.0) -> "HierarchicalMap":
        counts: Dict[Tuple[Tuple[int, bool], ...], int] = {}
        for path in trajectories:
            assignment = self.road_map.route_assignment(path)
            key = tuple(sorted(assignment.items()))
            counts[key] = counts.get(key, 0) + 1
        data = [(dict(key), count) for key, count in counts.items()]
        self.network.fit(data, alpha=alpha)
        return self

    def route_probability(self, path: Sequence[Node]) -> float:
        return self.network.probability(
            self.road_map.route_assignment(path))

    def sample_route_assignment(self, rng: random.Random | None = None
                                ) -> Dict[int, bool]:
        return self.network.sample(rng)

    def size(self) -> int:
        """Total circuit size of the hierarchical representation."""
        return self.network.size()


class NestedHierarchicalMap:
    """An arbitrary-depth hierarchical route model (Fig 18's shape).

    ``regions`` is a *tree*: values are either node sequences (leaf
    regions) or nested mappings (regions with sub-regions), e.g. the
    paper's Westside::

        {"santa_monica": [...], "venice": [...], "culver_city": [...],
         "westwood": {"ucla": [...], "village": [...]}}

    Edges between the children of a region form that region's crossing
    cluster; a cluster's distribution is conditioned on *all* ancestor
    crossing clusters (its boundary edges live there).  The route space
    is restricted to routes traversing every region — at every level —
    as a single segment, which makes the product decomposition exact.
    """

    ROOT = ""

    def __init__(self, road_map: RoadMap, regions: Mapping,
                 source: Node, destination: Node,
                 max_length: Optional[int] = None):
        self.road_map = road_map
        self.source = source
        self.destination = destination
        self._parse_tree(regions)
        if self._leaf_of(source) == self._leaf_of(destination):
            raise ValueError("source and destination must lie in "
                             "different leaf regions")
        self._split_edges()
        self.all_routes = enumerate_routes(road_map, source, destination,
                                           max_length)
        self.routes = [route for route in self.all_routes
                       if self.is_hierarchical_route(route)]
        if not self.routes:
            raise ValueError("no hierarchical route between the "
                             "given endpoints")
        self._build_network()

    # -- region tree -----------------------------------------------------------
    def _parse_tree(self, regions: Mapping) -> None:
        self.children: Dict[str, List[str]] = {self.ROOT: []}
        self.leaf_nodes: Dict[str, FrozenSet[Node]] = {}
        self.parent: Dict[str, str] = {}

        def walk(prefix: str, spec: Mapping) -> None:
            for name, value in spec.items():
                path = f"{prefix}/{name}" if prefix else name
                self.children.setdefault(prefix or self.ROOT,
                                         []).append(path)
                self.parent[path] = prefix or self.ROOT
                if isinstance(value, Mapping):
                    self.children[path] = []
                    walk(path, value)
                else:
                    self.leaf_nodes[path] = frozenset(value)

        walk("", regions)
        seen: set = set()
        for path, nodes in self.leaf_nodes.items():
            if seen & nodes:
                raise ValueError(f"region {path!r} overlaps another")
            seen |= nodes
        missing = set(self.road_map.nodes) - seen
        if missing:
            raise ValueError(f"nodes not covered by regions: {missing}")
        self._leaf_by_node: Dict[Node, str] = {}
        for path, nodes in self.leaf_nodes.items():
            for node in nodes:
                self._leaf_by_node[node] = path

    def _leaf_of(self, node: Node) -> str:
        return self._leaf_by_node[node]

    def _ancestry(self, path: str) -> List[str]:
        """The chain root .. path (inclusive)."""
        chain = [path]
        while chain[-1] != self.ROOT:
            chain.append(self.parent[chain[-1]])
        return list(reversed(chain))

    def _regions_containing(self, node: Node) -> List[str]:
        return self._ancestry(self._leaf_of(node))

    # -- edges ---------------------------------------------------------------
    def _split_edges(self) -> None:
        #: crossing vars per internal region (keyed by region path)
        self.crossing_vars: Dict[str, List[int]] = {
            path: [] for path in self.children}
        #: inner edge vars per leaf region
        self.inner_vars: Dict[str, List[int]] = {
            path: [] for path in self.leaf_nodes}
        for a, b in self.road_map.edges:
            var = self.road_map.edge_variable(a, b)
            chain_a = self._regions_containing(a)
            chain_b = self._regions_containing(b)
            common = self.ROOT
            for ra, rb in zip(chain_a, chain_b):
                if ra != rb:
                    break
                common = ra
            if chain_a[-1] == chain_b[-1]:
                self.inner_vars[chain_a[-1]].append(var)
            else:
                self.crossing_vars[common].append(var)

    def _boundary_vars(self, path: str) -> List[int]:
        """Crossing variables with exactly one endpoint inside ``path``."""
        members = self._members(path)
        result = []
        for ancestor in self._ancestry(path)[:-1]:
            for var in self.crossing_vars.get(ancestor, []):
                a, b = self.road_map.edge_of_variable(var)
                if (a in members) != (b in members):
                    result.append(var)
        return sorted(result)

    def _members(self, path: str) -> FrozenSet[Node]:
        if path in self.leaf_nodes:
            return self.leaf_nodes[path]
        members: FrozenSet[Node] = frozenset()
        for child in self.children[path]:
            members |= self._members(child)
        return members

    # -- the route space restriction ----------------------------------------------
    def is_hierarchical_route(self, path_nodes: Sequence[Node]) -> bool:
        """Single-segment traversal at every region of the tree."""
        assignment = self.road_map.route_assignment(path_nodes)
        for path in list(self.children) + list(self.leaf_nodes):
            if path == self.ROOT:
                continue
            members = self._members(path)
            used = sum(1 for var in self._boundary_vars(path)
                       if assignment[var])
            terminal = (self.source in members) != \
                (self.destination in members)
            both_inside = self.source in members and \
                self.destination in members
            if terminal:
                if used != 1:
                    return False
            elif both_inside:
                if used != 0:
                    return False
            elif used not in (0, 2):
                return False
        return True

    # -- construction ---------------------------------------------------------------
    def _build_network(self) -> None:
        dag = ClusterDag()
        route_assignments = [self.road_map.route_assignment(route)
                             for route in self.routes]
        # clusters in breadth order: crossings of internal regions,
        # then leaf inner clusters
        ordered_internals = [path for path in self.children
                             if self.crossing_vars[path]]
        ordered_internals.sort(key=lambda p: len(self._ancestry(p)))
        self._cluster_of: Dict[str, str] = {}
        for path in ordered_internals:
            cluster = f"crossings:{path or 'root'}"
            parents = [self._cluster_of[a]
                       for a in self._ancestry(path)[:-1]
                       if a in self._cluster_of]
            dag.add_cluster(cluster, self.crossing_vars[path],
                            parents=parents)
            self._cluster_of[path] = cluster
        leaf_clusters = [path for path in self.leaf_nodes
                         if self.inner_vars[path]]
        for path in leaf_clusters:
            cluster = f"inner:{path}"
            parents = [self._cluster_of[a]
                       for a in self._ancestry(path)[:-1]
                       if a in self._cluster_of]
            dag.add_cluster(cluster, self.inner_vars[path],
                            parents=parents)
        self.network = StructuredBayesianNetwork(dag)

        for path in ordered_internals:
            cluster = self._cluster_of[path]
            if not dag.parents(cluster):
                manager = SddManager(
                    balanced_vtree(self.crossing_vars[path]))
                patterns = {tuple(v if a[v] else -v
                                  for v in self.crossing_vars[path])
                            for a in route_assignments}
                sdd = compile_terms_sdd(sorted(patterns), manager)
                self.network.set_root_distribution(
                    cluster, psdd_from_sdd(sdd))
            else:
                self.network.set_conditional(
                    cluster, self._conditional_for(
                        path, self.crossing_vars[path],
                        dag.parent_variables(cluster),
                        route_assignments))
        for path in leaf_clusters:
            cluster = f"inner:{path}"
            self.network.set_conditional(
                cluster, self._conditional_for(
                    path, self.inner_vars[path],
                    dag.parent_variables(cluster), route_assignments))

    def _conditional_for(self, path: str, own_vars: Sequence[int],
                         parent_vars: Sequence[int],
                         route_assignments) -> ConditionalPsdd:
        incident = [v for v in self._boundary_vars(path)
                    if v in set(parent_vars)]
        parent_manager = SddManager(balanced_vtree(parent_vars))
        child_manager = SddManager(balanced_vtree(own_vars))
        spaces: Dict[Tuple[int, ...], set] = {}
        for assignment in route_assignments:
            context = tuple(v if assignment[v] else -v for v in incident)
            term = tuple(v if assignment[v] else -v for v in own_vars)
            spaces.setdefault(context, set()).add(term)
        contexts = []
        covered = parent_manager.false
        for context, terms in sorted(spaces.items()):
            gate = parent_manager.term(context)
            covered = parent_manager.disjoin(covered, gate)
            contexts.append((gate,
                             compile_terms_sdd(sorted(terms),
                                               child_manager)))
        remainder = parent_manager.negate(covered)
        if not remainder.is_false:
            empty = child_manager.term([-v for v in own_vars])
            contexts.append((remainder, empty))
        return ConditionalPsdd(contexts, parent_manager, child_manager)

    # -- use ---------------------------------------------------------------------
    def fit(self, trajectories: Sequence[Sequence[Node]],
            alpha: float = 0.0) -> "NestedHierarchicalMap":
        counts: Dict[Tuple[Tuple[int, bool], ...], int] = {}
        for path_nodes in trajectories:
            assignment = self.road_map.route_assignment(path_nodes)
            key = tuple(sorted(assignment.items()))
            counts[key] = counts.get(key, 0) + 1
        data = [(dict(key), count) for key, count in counts.items()]
        self.network.fit(data, alpha=alpha)
        return self

    def route_probability(self, path_nodes: Sequence[Node]) -> float:
        return self.network.probability(
            self.road_map.route_assignment(path_nodes))

    def sample_route_assignment(self, rng: random.Random | None = None
                                ) -> Dict[int, bool]:
        return self.network.sample(rng)

    def size(self) -> int:
        return self.network.size()
