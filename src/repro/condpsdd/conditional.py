"""Conditional PSDDs [78] — distributions over conditional spaces
(Figs 20, 21, 24).

A conditional PSDD represents Pr(Y | X) where the *structured space*
of Y depends on the state of X.  The paper draws it as an SDD gate over
X (yellow) selecting among the roots of a multi-rooted PSDD over Y
(green): evaluating the gate at x selects the distribution for x.

Here the gate is represented as a partition of the X-space into
*contexts* — each context an SDD over X — with one PSDD root per
context.  This is semantically exactly the paper's object (Fig 24
"selecting conditional distributions"); the multi-rooted sharing of the
green layer corresponds to contexts mapping to shared PSDD nodes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Sequence, Tuple

from ..psdd.learn import learn_parameters
from ..psdd.psdd import PsddNode, psdd_from_sdd
from ..psdd.sample import sample as psdd_sample
from ..sdd.manager import SddManager
from ..sdd.node import SddNode

__all__ = ["ConditionalPsdd"]


class ConditionalPsdd:
    """Pr(Y | X) with per-context structured spaces.

    Parameters
    ----------
    contexts:
        Sequence of ``(gate, space)`` pairs: ``gate`` an SDD over the
        parent variables and ``space`` an SDD over the child variables.
        Gates must be pairwise disjoint and jointly exhaustive over the
        parent space.
    parent_manager / child_manager:
        The SDD managers of gates and spaces respectively (distinct
        variable namespaces are allowed and typical).
    """

    def __init__(self, contexts: Sequence[Tuple[SddNode, SddNode]],
                 parent_manager: SddManager,
                 child_manager: SddManager):
        if not contexts:
            raise ValueError("need at least one context")
        self.parent_manager = parent_manager
        self.child_manager = child_manager
        self._gates: List[SddNode] = []
        self.psdds: List[PsddNode] = []
        union = parent_manager.false
        for gate, space in contexts:
            if parent_manager.conjoin(union, gate) is not \
                    parent_manager.false:
                raise ValueError("context gates overlap")
            union = parent_manager.disjoin(union, gate)
            self._gates.append(gate)
            self.psdds.append(psdd_from_sdd(space))
        if not union.is_true:
            raise ValueError("context gates do not cover the parent space")

    @property
    def num_contexts(self) -> int:
        return len(self._gates)

    def gate(self, index: int) -> SddNode:
        return self._gates[index]

    def context_index(self, parent_assignment: Mapping[int, bool]) -> int:
        """Which context a parent state selects (Fig 24's evaluation)."""
        for i, gate in enumerate(self._gates):
            if gate.evaluate(parent_assignment):
                return i
        raise AssertionError("gates must be exhaustive")

    def select(self, parent_assignment: Mapping[int, bool]) -> PsddNode:
        """The conditional distribution Pr(Y | x)."""
        return self.psdds[self.context_index(parent_assignment)]

    # -- semantics --------------------------------------------------------------
    def probability(self, child_assignment: Mapping[int, bool],
                    parent_assignment: Mapping[int, bool]) -> float:
        """Pr(y | x)."""
        return self.select(parent_assignment).probability(
            child_assignment)

    def sample(self, parent_assignment: Mapping[int, bool],
               rng: random.Random | None = None) -> Dict[int, bool]:
        return psdd_sample(self.select(parent_assignment), rng)

    # -- learning ----------------------------------------------------------------
    def fit(self, data: Sequence[Tuple[Mapping[int, bool],
                                       Mapping[int, bool], float]],
            alpha: float = 0.0) -> "ConditionalPsdd":
        """Learn all context distributions from (x, y, count) triples."""
        buckets: List[List[Tuple[Mapping[int, bool], float]]] = \
            [[] for _ in self._gates]
        for parent_assignment, child_assignment, count in data:
            index = self.context_index(parent_assignment)
            buckets[index].append((child_assignment, count))
        for psdd, bucket in zip(self.psdds, buckets):
            if bucket:
                learn_parameters(psdd, bucket, alpha=alpha)
        return self

    def size(self) -> int:
        """Gate sizes plus distinct PSDD sizes (shared nodes counted
        once per root here; the multi-rooted encoding would share)."""
        return sum(g.size() for g in self._gates) + \
            sum(p.size() for p in self.psdds)

    def __repr__(self) -> str:
        return f"ConditionalPsdd({self.num_contexts} contexts)"
