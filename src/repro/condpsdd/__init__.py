"""Conditional PSDDs, cluster DAGs, structured BNs, hierarchical maps."""

from .conditional import ConditionalPsdd
from .cluster_dag import ClusterDag, StructuredBayesianNetwork
from .hierarchical import HierarchicalMap, NestedHierarchicalMap

__all__ = ["ConditionalPsdd", "ClusterDag", "StructuredBayesianNetwork",
           "HierarchicalMap", "NestedHierarchicalMap"]
