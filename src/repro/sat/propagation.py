"""Two-watched-literal unit propagation and an iterative DPLL solver.

The seed propagator (`repro.sat.dpll.unit_propagate_legacy`) re-scans
the whole clause list on every propagation round, so a chain of k
implications costs O(k · total-literals).  The engine here implements
the classic two-watched-literal scheme (Moskewicz et al., Chaff 2001):
each clause watches two of its literal *occurrences*, and an assignment
only touches the clauses watching the falsified literal.  One setup
pass plus work proportional to the occurrences actually visited
replaces the repeated rescans.

Two entry points:

* :func:`propagate_watched` — drop-in replacement for the legacy
  ``unit_propagate(clauses, assignment)`` contract: mutates
  ``assignment`` with implied literals and returns the reduced residual
  clause list (or None on conflict).  The residual is *identical* to
  the legacy one — satisfied clauses dropped, falsified literal
  occurrences removed, original clause order preserved — which the
  property-based cross-check suite asserts.
* :class:`WatchedSolver` — a full iterative DPLL solver with a trail
  and chronological backtracking whose watch lists persist across
  backtracks (the whole point of the scheme: backtracking is free).

Watches are positional (they watch literal *occurrences*, not values),
so degenerate clauses with repeated literals — e.g. ``(2, 2)`` —
behave exactly like the legacy propagator: two unassigned occurrences
are never treated as a unit.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..perf.instrument import Counter

__all__ = ["propagate_watched", "propagate_implied", "TrailPropagator",
           "WatchedSolver"]

Clause = Tuple[int, ...]
Assignment = Dict[int, bool]


def propagate_watched(clauses: Sequence[Clause], assignment: Assignment,
                      stats: Counter | None = None
                      ) -> Optional[List[Clause]]:
    """Exhaustive unit propagation via two watched literals.

    Mutates ``assignment`` with every implied literal.  Returns the
    residual clause list (legacy-identical), or None on conflict.  When
    there is nothing to propagate (no pre-set assignment, no unit
    clause), the input list is returned unchanged — callers may use the
    identity to skip their own post-processing.
    """
    if not assignment:
        # fast path: nothing assigned and no unit clause means the
        # fixpoint is the input itself — one cheap length scan
        has_unit = False
        for clause in clauses:
            if len(clause) < 2:
                if not clause:
                    return None  # empty clause: immediate conflict
                has_unit = True
                break
        if not has_unit:
            return clauses if isinstance(clauses, list) else list(clauses)

    queue: deque[int] = deque()
    get = assignment.get

    def value(lit: int) -> Optional[bool]:
        v = get(abs(lit))
        if v is None:
            return None
        return v if lit > 0 else not v

    def enqueue(lit: int) -> bool:
        var, val = abs(lit), lit > 0
        cur = get(var)
        if cur is not None:
            return cur == val
        assignment[var] = val
        queue.append(lit)
        return True

    # -- setup: one pass to seed watches and the unit queue ----------------
    watch_pos: List[Optional[List[int]]] = [None] * len(clauses)
    watchers: Dict[int, List[int]] = {}
    for ci, clause in enumerate(clauses):
        satisfied = False
        free: List[int] = []
        for pos, lit in enumerate(clause):
            v = get(lit if lit > 0 else -lit)
            if v is None:
                free.append(pos)
            elif v == (lit > 0):
                satisfied = True
                break
        if satisfied:
            continue
        if not free:
            return None  # all occurrences false: empty clause
        if len(free) == 1:
            if not enqueue(clause[free[0]]):
                return None
            continue
        pair = [free[0], free[1]]
        watch_pos[ci] = pair
        watchers.setdefault(clause[pair[0]], []).append(ci)
        watchers.setdefault(clause[pair[1]], []).append(ci)

    # -- propagation to fixpoint ------------------------------------------
    propagations = 0
    visits = 0
    while queue:
        lit = queue.popleft()
        propagations += 1
        false_lit = -lit
        watching = watchers.get(false_lit)
        if not watching:
            continue
        kept: List[int] = []
        conflict = False
        for ci in watching:
            visits += 1
            pair = watch_pos[ci]
            clause = clauses[ci]
            if pair is None or conflict:
                continue
            if clause[pair[0]] == false_lit:
                wi = 0
            elif clause[pair[1]] == false_lit:
                wi = 1
            else:
                continue  # stale entry: this watch moved on already
            other_lit = clause[pair[1 - wi]]
            if value(other_lit) is True:
                kept.append(ci)
                continue
            moved = False
            for pos, cand in enumerate(clause):
                if pos == pair[0] or pos == pair[1]:
                    continue
                if value(cand) is not False:
                    pair[wi] = pos
                    watchers.setdefault(cand, []).append(ci)
                    moved = True
                    break
            if moved:
                continue
            kept.append(ci)  # no replacement: clause is unit or conflicting
            if value(other_lit) is False or not enqueue(other_lit):
                conflict = True
        watchers[false_lit] = kept
        if conflict:
            if stats is not None:
                stats.incr("propagations", propagations)
                stats.incr("clause_visits", visits)
            return None
    if stats is not None:
        stats.incr("propagations", propagations)
        stats.incr("clause_visits", visits)

    # -- one final pass builds the legacy-identical residual ---------------
    reduced: List[Clause] = []
    for clause in clauses:
        satisfied = False
        remaining: List[int] = []
        for lit in clause:
            v = get(lit if lit > 0 else -lit)
            if v is None:
                remaining.append(lit)
            elif v == (lit > 0):
                satisfied = True
                break
        if satisfied:
            continue
        if not remaining:
            return None  # unreachable at fixpoint; defensive
        reduced.append(tuple(remaining))
    return reduced


def propagate_implied(clauses: Sequence[Clause],
                      stats: Counter | None = None
                      ) -> Tuple[List[int], Optional[List[Clause]]]:
    """Propagate from scratch; return (implied literals, residual).

    The compiler-facing contract: on conflict returns ``([], None)``,
    otherwise the implied literals in propagation order and a residual
    that mentions no implied variable.
    """
    assignment: Assignment = {}
    residual = propagate_watched(clauses, assignment, stats)
    if residual is None:
        return [], None
    return [v if val else -v for v, val in assignment.items()], residual


class TrailPropagator:
    """Persistent two-watched-literal state with a backtrackable trail.

    The core sharpSAT-style engine: set up watches over the original
    clause list once, then *condition* by enqueueing a literal and
    propagating, and *backtrack* by undoing the trail to a mark — watch
    lists survive backtracking untouched, so neither operation ever
    copies a clause.  :class:`WatchedSolver` adds DPLL search on top;
    :class:`repro.sat.counter.ModelCounter` drives it directly for
    component counting.
    """

    def __init__(self, clauses: Iterable[Iterable[int]], num_vars: int,
                 stats: Counter | None = None):
        self.clauses: List[Clause] = [tuple(c) for c in clauses]
        self.num_vars = num_vars
        self.stats = stats
        self.values: List[Optional[bool]] = [None] * (num_vars + 1)
        self.trail: List[int] = []
        self.qhead = 0
        self.has_empty = False
        self.units: List[int] = []
        self.watch_pos: List[Optional[List[int]]] = \
            [None] * len(self.clauses)
        self.watchers: Dict[int, List[int]] = {}
        for ci, clause in enumerate(self.clauses):
            if not clause:
                self.has_empty = True
            elif len(clause) == 1:
                self.units.append(clause[0])
            else:
                pair = [0, 1]
                self.watch_pos[ci] = pair
                self.watchers.setdefault(clause[0], []).append(ci)
                self.watchers.setdefault(clause[1], []).append(ci)

    # -- assignment machinery ----------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        v = self.values[abs(lit)]
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int) -> bool:
        var, val = abs(lit), lit > 0
        cur = self.values[var]
        if cur is not None:
            return cur == val
        self.values[var] = val
        self.trail.append(lit)
        return True

    def undo_to(self, mark: int) -> None:
        while len(self.trail) > mark:
            self.values[abs(self.trail.pop())] = None
        self.qhead = mark

    def assert_root(self, literals: Iterable[int] = ()) -> bool:
        """Assert unit clauses plus ``literals`` and propagate; False on
        conflict (or an empty input clause)."""
        if self.has_empty:
            return False
        for lit in literals:
            if not self._enqueue(lit):
                return False
        for lit in self.units:
            if not self._enqueue(lit):
                return False
        return self._propagate()

    def condition(self, lit: int) -> bool:
        """Assume ``lit`` and propagate to fixpoint; False on conflict
        (the trail is left extended either way — undo with the mark
        taken before the call)."""
        if not self._enqueue(lit):
            return False
        return self._propagate()

    def reduce(self, clauses: Sequence[Clause]) -> List[Clause]:
        """Residual of ``clauses`` under the current assignment:
        satisfied clauses dropped, false literal occurrences removed.
        At a propagation fixpoint the result has no empty or unit
        clause (every kept clause keeps both non-false watches)."""
        values = self.values
        reduced: List[Clause] = []
        for clause in clauses:
            satisfied = False
            remaining: List[int] = []
            for lit in clause:
                v = values[lit if lit > 0 else -lit]
                if v is None:
                    remaining.append(lit)
                elif v == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            reduced.append(tuple(remaining))
        return reduced

    def _propagate(self) -> bool:
        """Drain the trail; True on success, False on conflict."""
        propagations = 0
        visits = 0
        ok = True
        while ok and self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            propagations += 1
            false_lit = -lit
            watching = self.watchers.get(false_lit)
            if not watching:
                continue
            kept: List[int] = []
            for idx, ci in enumerate(watching):
                if not ok:
                    kept.extend(watching[idx:])
                    break
                visits += 1
                pair = self.watch_pos[ci]
                clause = self.clauses[ci]
                if clause[pair[0]] == false_lit:
                    wi = 0
                elif clause[pair[1]] == false_lit:
                    wi = 1
                else:
                    continue  # stale
                other_lit = clause[pair[1 - wi]]
                if self._value(other_lit) is True:
                    kept.append(ci)
                    continue
                moved = False
                for pos, cand in enumerate(clause):
                    if pos == pair[0] or pos == pair[1]:
                        continue
                    if self._value(cand) is not False:
                        pair[wi] = pos
                        self.watchers.setdefault(cand, []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ci)
                if self._value(other_lit) is False or \
                        not self._enqueue(other_lit):
                    ok = False
            self.watchers[false_lit] = kept
        if self.stats is not None:
            self.stats.incr("propagations", propagations)
            self.stats.incr("clause_visits", visits)
        return ok


class WatchedSolver(TrailPropagator):
    """Iterative DPLL over persistent watch lists.

    One-shot use: construct from a clause list, call :meth:`solve` once.
    Branching follows a static most-frequent-variable order (ties to
    the smaller variable), trying True before False, mirroring the
    legacy recursive solver's heuristic closely enough that the two
    agree on satisfiability everywhere (asserted by the cross-check
    suite) while never copying a clause list.

    ``budget`` (explicit, else ambient) is charged one node per
    decision; exhaustion raises
    :class:`~repro.limits.budget.BudgetExceeded` with the decision
    count in ``partial``.
    """

    def __init__(self, clauses: Iterable[Iterable[int]], num_vars: int,
                 stats: Counter | None = None, budget=None):
        super().__init__(clauses, num_vars, stats)
        from ..limits.budget import resolve_budget
        self.budget = resolve_budget(budget)
        counts: Dict[int, int] = {}
        for clause in self.clauses:
            for lit in clause:
                var = abs(lit)
                counts[var] = counts.get(var, 0) + 1
        self.branch_order = sorted(counts, key=lambda v: (-counts[v], v))

    # -- search -------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = ()
              ) -> Optional[Assignment]:
        """A satisfying (partial) assignment, or None.

        Assumption literals are asserted as fixed root-level facts.
        """
        if not self.assert_root(assumptions):
            return None
        # decision stack: (trail mark, decision literal, tried-both)
        stack: List[Tuple[int, int, bool]] = []
        order = self.branch_order
        cursor = 0
        while True:
            var = None
            while cursor < len(order):
                if self.values[order[cursor]] is None:
                    var = order[cursor]
                    break
                cursor += 1
            if var is None:
                return {abs(lit): lit > 0 for lit in self.trail}
            if self.budget is not None:
                self.budget.tick(partial={"operation": "solve",
                                          "trail_depth": len(self.trail)})
            if self.stats is not None:
                self.stats.incr("decisions")
            stack.append((len(self.trail), var, False))
            self._enqueue(var)
            while not self._propagate():
                while stack:
                    mark, lit, flipped = stack.pop()
                    self.undo_to(mark)
                    if not flipped:
                        stack.append((mark, -lit, True))
                        self._enqueue(-lit)
                        break
                else:
                    return None
                # a flip may sit above earlier decisions: re-scan branch
                # order from the top after any backtrack
                cursor = 0
            cursor = 0
