"""A DPLL satisfiability solver.

The solver works on :class:`repro.logic.Cnf` and supports assumptions,
model extraction and model enumeration.  Satisfiability runs on the
iterative two-watched-literal engine of :mod:`repro.sat.propagation`
(:class:`~repro.sat.propagation.WatchedSolver`); ``unit_propagate``
keeps its original contract but is likewise watched-literal based.  The
seed's recursive copy-on-condition solver and its clause-rescan
propagator survive as ``solve_legacy`` / ``unit_propagate_legacy`` —
they are the reference implementations the property-based cross-check
suite compares against, and the baselines the perf benchmarks measure
speedups over.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..logic.cnf import Cnf
from ..perf.instrument import Counter
from .propagation import WatchedSolver, propagate_watched

__all__ = ["solve", "solve_legacy", "is_satisfiable", "enumerate_models",
           "unit_propagate", "unit_propagate_legacy"]

Clause = Tuple[int, ...]
Assignment = Dict[int, bool]


def unit_propagate(clauses: List[Clause], assignment: Assignment,
                   stats: Counter | None = None
                   ) -> Optional[List[Clause]]:
    """Exhaustively propagate unit clauses (watched-literal engine).

    Mutates ``assignment`` with implied literals.  Returns the reduced
    clause list, or None on conflict (an empty clause was derived).
    The residual is identical — clause for clause — to the one the
    legacy propagator produces.
    """
    return propagate_watched(clauses, assignment, stats)


def unit_propagate_legacy(clauses: List[Clause], assignment: Assignment,
                          stats: Counter | None = None
                          ) -> Optional[List[Clause]]:
    """The seed propagator: re-scans every clause per round.

    Kept as the reference implementation for the cross-check suite and
    as the benchmark baseline.  Same contract as ``unit_propagate``.

    .. deprecated:: access via :mod:`repro.compat`; not for new call
       sites — ``REPRO_LEGACY=1`` selects it process-wide.
    """
    changed = True
    while changed:
        changed = False
        if stats is not None:
            stats.incr("clause_visits", len(clauses))
        reduced: List[Clause] = []
        for clause in clauses:
            satisfied = False
            remaining: List[int] = []
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    remaining.append(lit)
            if satisfied:
                continue
            if not remaining:
                return None  # conflict
            if len(remaining) == 1:
                lit = remaining[0]
                assignment[abs(lit)] = lit > 0
                changed = True
                if stats is not None:
                    stats.incr("propagations")
            else:
                reduced.append(tuple(remaining))
        clauses = reduced
    return clauses


def _pure_literals(clauses: Sequence[Clause]) -> List[int]:
    polarity: Dict[int, int] = {}  # var -> bitmask: 1 pos, 2 neg
    for clause in clauses:
        for lit in clause:
            polarity[abs(lit)] = polarity.get(abs(lit), 0) | (1 if lit > 0
                                                              else 2)
    return [v if mask == 1 else -v
            for v, mask in polarity.items() if mask in (1, 2)]


def _choose_branch_variable(clauses: Sequence[Clause]) -> int:
    """Most frequently occurring variable."""
    counts: Dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            counts[abs(lit)] = counts.get(abs(lit), 0) + 1
    return max(counts, key=lambda v: (counts[v], -v))


def _dpll(clauses: List[Clause], assignment: Assignment
          ) -> Optional[Assignment]:
    clauses = unit_propagate_legacy(clauses, assignment)
    if clauses is None:
        return None
    if not clauses:
        return assignment
    for lit in _pure_literals(clauses):
        if abs(lit) not in assignment:
            assignment[abs(lit)] = lit > 0
    clauses = [c for c in clauses
               if not any(abs(l) in assignment
                          and assignment[abs(l)] == (l > 0) for l in c)]
    if not clauses:
        return assignment
    var = _choose_branch_variable(clauses)
    for value in (True, False):
        trial = dict(assignment)
        trial[var] = value
        result = _dpll(list(clauses), trial)
        if result is not None:
            return result
    return None


def solve(cnf: Cnf, assumptions: Iterable[int] = (),
          stats: Counter | None = None,
          budget=None) -> Optional[Assignment]:
    """Find a satisfying assignment, or None.

    The returned assignment is *complete* over variables 1..num_vars
    (unconstrained variables default to False).  ``assumptions`` is an
    iterable of literals to assert.  Runs on the iterative
    two-watched-literal solver; see :func:`solve_legacy` for the seed
    recursive implementation.  ``budget`` (explicit, else ambient)
    bounds the search — one charge per decision — and exhaustion raises
    :class:`~repro.limits.budget.BudgetExceeded`.
    """
    assumption_list = list(assumptions)
    for lit in assumption_list:
        if -lit in assumption_list:
            return None
    solver = WatchedSolver(cnf.clauses, cnf.num_vars, stats=stats,
                           budget=budget)
    result = solver.solve(assumption_list)
    if result is None:
        return None
    for var in range(1, cnf.num_vars + 1):
        result.setdefault(var, False)
    return result


def solve_legacy(cnf: Cnf, assumptions: Iterable[int] = ()
                 ) -> Optional[Assignment]:
    """The seed solver: recursive DPLL with copy-on-condition clause
    lists and pure-literal elimination.  Reference implementation for
    the cross-check suite and the benchmark baseline.

    .. deprecated:: access via :mod:`repro.compat`; not for new call
       sites."""
    assignment: Assignment = {}
    for lit in assumptions:
        var = abs(lit)
        value = lit > 0
        if assignment.get(var, value) != value:
            return None
        assignment[var] = value
    result = _dpll(list(cnf.clauses), assignment)
    if result is None:
        return None
    for var in range(1, cnf.num_vars + 1):
        result.setdefault(var, False)
    return result


def is_satisfiable(cnf: Cnf, assumptions: Iterable[int] = ()) -> bool:
    """Decide SAT (the prototypical NP problem of Section 2.1)."""
    return solve(cnf, assumptions) is not None


def enumerate_models(cnf: Cnf) -> Iterator[Assignment]:
    """Yield all models over variables 1..num_vars.

    Uses recursive splitting rather than blocking clauses so enumeration
    of k models costs O(k · poly) rather than re-solving from scratch.
    """
    variables = list(range(1, cnf.num_vars + 1))
    yield from _enumerate(list(cnf.clauses), {}, variables)


def _enumerate(clauses: List[Clause], assignment: Assignment,
               variables: List[int]) -> Iterator[Assignment]:
    assignment = dict(assignment)
    clauses = unit_propagate(clauses, assignment)
    if clauses is None:
        return
    free = [v for v in variables if v not in assignment]
    if not clauses:
        # all remaining variables are unconstrained
        yield from _expand_free(assignment, free)
        return
    var = _choose_branch_variable(clauses)
    for value in (False, True):
        trial = dict(assignment)
        trial[var] = value
        yield from _enumerate(list(clauses), trial, variables)


def _expand_free(assignment: Assignment, free: List[int]
                 ) -> Iterator[Assignment]:
    if not free:
        yield dict(assignment)
        return
    var, rest = free[0], free[1:]
    for value in (False, True):
        assignment[var] = value
        yield from _expand_free(assignment, rest)
    del assignment[var]
