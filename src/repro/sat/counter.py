"""Exact model counting (#SAT) with component decomposition and caching.

This is the sharpSAT recipe [88] in miniature: DPLL search with unit
propagation, decomposition of the residual CNF into independent
components, and memoisation of component counts.  ``ModelCounter``
exposes switches for both optimisations so the ABL2 benchmark can
measure their effect.

Performance-relevant choices (see ``docs/performance.md``):

* propagation runs on the two-watched-literal engine
  (:mod:`repro.sat.propagation`); ``propagator="legacy"`` selects the
  seed clause-rescan propagator as a benchmark baseline;
* component cache keys are cheap order-independent 128-bit hashes of
  the residual clause set (``cache_mode="hash"``) instead of
  ``frozenset`` materialisations; ``cache_mode="exact"`` restores the
  collision-free frozenset keys as a correctness fallback;
* each :meth:`ModelCounter.count` call works against a private
  :class:`CountContext`, so one counter instance is re-entrant and can
  serve concurrent callers; ``cache_hits`` / ``decisions`` / ``stats``
  report the most recently *completed* call.

The count is always over variables ``1..num_vars`` of the input CNF:
variables that never occur in a clause contribute a factor of two each.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..limits.budget import Budget, BudgetExceeded, resolve_budget
from ..logic.cnf import Cnf
from ..perf.instrument import Counter
from .components import split_components, trail_components
from .propagation import TrailPropagator

__all__ = ["ModelCounter", "CountContext", "count_models",
           "component_key"]

Clause = Tuple[int, ...]

_MASK64 = (1 << 64) - 1
# CPython reserves -1 as the C-level hash error sentinel: hash(-1) ==
# hash(-2) == -2, so the literal -1 must be remapped before clause
# tuples are hashed or the clauses (-1,) and (-2,) collide.  Any value
# far outside the literal range works.
_NEG_ONE_STANDIN = 0x51_D1F3_F5F7

_LANE_MULT = 0x9E3779B97F4A7C15


def component_key(clauses: List[Clause], mode: str) -> Hashable:
    """Cache key for a residual clause set.

    ``mode="exact"`` materialises the collision-free frozenset the seed
    used.  ``mode="hash"`` combines per-clause hashes through two
    commutative lanes (sum, and xor of an odd-multiplier image) plus
    the clause count into a cheap canonical ~128-bit key:
    order-independent like the frozenset, but O(1) memory and no set
    materialisation.  CPython tuple hashes are xxHash-avalanched and
    int-deterministic (no string salting), so the lanes are well mixed
    and stable in-process.
    """
    if mode == "exact":
        return frozenset(clauses)
    acc_sum = 0
    acc_xor = 0
    for clause in clauses:
        if -1 in clause:
            clause = tuple(_NEG_ONE_STANDIN if lit == -1 else lit
                           for lit in clause)
        h = hash(clause)
        acc_sum += h
        acc_xor ^= (h * _LANE_MULT) & _MASK64
    return (len(clauses), acc_sum & _MASK64, acc_xor)


class CountContext:
    """Per-call mutable state of one :meth:`ModelCounter.count` run.

    Owning the cache and counters here (rather than on the counter
    instance) is what makes counting re-entrant: concurrent calls on a
    shared ``ModelCounter`` never see each other's cache or statistics.
    """

    __slots__ = ("cache", "stats", "budget")

    def __init__(self, budget: Optional[Budget] = None):
        self.cache: Dict[Hashable, int] = {}
        self.stats = Counter()
        self.budget = budget


class ModelCounter:
    """Exact #SAT solver.

    Parameters
    ----------
    use_components:
        Decompose residual formulas into connected components and
        multiply their counts.
    use_cache:
        Memoise counts of residual components.  Requires deterministic
        residuals, which unit propagation provides.
    cache_mode:
        ``"hash"`` (default) keys the cache by a cheap canonical hash
        of the residual; ``"exact"`` by the residual frozenset — the
        collision-free correctness fallback.
    propagator:
        ``"watched"`` (default) or ``"legacy"`` (seed clause-rescan
        propagation, kept as a measurable baseline).  ``None`` defers
        to :func:`repro.compat.default_propagator`, i.e. the
        ``REPRO_LEGACY`` switch.
    budget:
        Optional :class:`~repro.limits.budget.Budget`; the counter
        charges it one node per decision point and one cache entry per
        memoised component, raising
        :class:`~repro.limits.budget.BudgetExceeded` (with the
        decisions/cache counters so far in ``partial``) on exhaustion.
        ``count(budget=...)`` overrides per call; with neither, the
        ambient budget (:meth:`Budget.scope`) governs if installed.
        For certified bounds instead of an exception, see
        :func:`repro.limits.anytime.anytime_count`.
    """

    def __init__(self, use_components: bool = True, use_cache: bool = True,
                 cache_mode: str = "hash",
                 propagator: str | None = None,
                 budget: Optional[Budget] = None):
        if propagator is None:
            from ..compat import default_propagator
            propagator = default_propagator()
        if cache_mode not in ("hash", "exact"):
            raise ValueError(f"unknown cache_mode {cache_mode!r}")
        if propagator not in ("watched", "legacy"):
            raise ValueError(f"unknown propagator {propagator!r}")
        self.use_components = use_components
        self.use_cache = use_cache
        self.cache_mode = cache_mode
        self.propagator = propagator
        self.budget = budget
        self._last: CountContext = CountContext()

    # -- statistics of the most recently completed call --------------------
    @property
    def stats(self) -> Counter:
        return self._last.stats

    @property
    def cache(self) -> Dict[Hashable, int]:
        return self._last.cache

    @property
    def cache_hits(self) -> int:
        return self._last.stats["cache_hits"]

    @property
    def decisions(self) -> int:
        return self._last.stats["decisions"]

    def count(self, cnf: Cnf, budget: Optional[Budget] = None) -> int:
        """Number of models of ``cnf`` over variables 1..num_vars.

        ``budget`` overrides the instance/ambient budget for this call;
        on exhaustion the raised :class:`BudgetExceeded` carries the
        partial search state (decisions, cache entries) in ``partial``.
        """
        ctx = CountContext(resolve_budget(
            budget if budget is not None else self.budget))
        clauses = list(cnf.clauses)
        try:
            if any(len(c) == 0 for c in clauses):
                return 0
            mentioned = {abs(lit) for c in clauses for lit in c}
            if self.propagator == "watched":
                inner = self._count_trail(clauses, len(mentioned), ctx)
            else:
                inner = self._count(clauses, ctx)
            free = cnf.num_vars - len(mentioned)
            return inner << free if inner else 0
        except BudgetExceeded as error:
            error.partial.setdefault("operation", "count")
            error.partial.setdefault("decisions", ctx.stats["decisions"])
            error.partial.setdefault("cache_entries", len(ctx.cache))
            raise
        finally:
            self._last = ctx

    # -- trail-based counting (the default, sharpSAT-style) -----------------
    # One TrailPropagator is built per count() call; conditioning is an
    # enqueue + propagation on persistent watch lists and unconditioning
    # is a trail rewind.  No residual clause list is ever materialised:
    # the search works on *clause indices* against the trail.  One fused
    # pass per node classifies clauses (satisfied / active), collects
    # their free literals and the variable→clause occurrence lists, and
    # the component walk, the cache key and the branching heuristic all
    # read off those structures directly.
    def _count_trail(self, clauses: List[Clause], num_mentioned: int,
                     ctx: CountContext) -> int:
        engine = TrailPropagator(clauses, max(
            (abs(lit) for c in clauses for lit in c), default=0), ctx.stats)
        if not engine.assert_root():
            return 0
        return self._tc_parts(range(len(clauses)), num_mentioned,
                              len(engine.trail), engine, clauses, ctx)

    def _tc_parts(self, indices, scope_vars: int, assigned: int,
                  engine: TrailPropagator, clauses: List[Clause],
                  ctx: CountContext) -> int:
        """Count over a ``scope_vars``-variable scope of which
        ``assigned`` are already on the trail and ``indices`` names the
        candidate clauses: drop satisfied ones, split the rest into
        variable-connected components, multiply, shift by free vars."""
        components, occ = trail_components(clauses, indices, engine.values,
                                           self.use_components)
        if not components:
            return 1 << (scope_vars - assigned)
        if self.use_components:
            ctx.stats.incr("component_splits")
            ctx.stats.incr("components_found", len(components))
        total = 1
        counted = 0
        for comp_indices, comp_vars in components:
            counted += len(comp_vars)
            total *= self._tc_component(comp_indices, comp_vars, occ,
                                        engine, clauses, ctx)
            if total == 0:
                return 0
        return total << (scope_vars - assigned - counted)

    def _tc_component(self, comp_indices: List[int], comp_vars: List[int],
                      occ: Dict[int, List[int]], engine: TrailPropagator,
                      clauses: List[Clause], ctx: CountContext) -> int:
        key: Optional[Hashable] = None
        if self.use_cache:
            # (clause ids, free vars) fully determines the residual:
            # every assigned literal of an unsatisfied clause is false,
            # so the residual clause is exactly the restriction of
            # clauses[ci] to the component variables.  "hash" keeps two
            # 64-bit tuple hashes; "exact" the tuples themselves.
            ids = tuple(comp_indices)
            vrs = tuple(sorted(comp_vars))
            key = ((hash(ids), hash(vrs))
                   if self.cache_mode == "hash" else (ids, vrs))
            cached = ctx.cache.get(key)
            if cached is not None:
                ctx.stats.incr("cache_hits")
                return cached
        # every occurrence of a component variable lies inside the
        # component, so the shared occurrence lists double as scores
        if ctx.budget is not None:
            ctx.budget.tick()
        var = max(comp_vars, key=lambda v: (len(occ[v]), -v))
        ctx.stats.incr("decisions")
        num_vars = len(comp_vars)
        total = 0
        for value in (False, True):
            mark = len(engine.trail)
            # propagation stays inside this component (its clauses are
            # variable-connected), so the trail delta is the count of
            # component variables assigned in this branch
            if engine.condition(var if value else -var):
                total += self._tc_parts(comp_indices, num_vars,
                                        len(engine.trail) - mark,
                                        engine, clauses, ctx)
            engine.undo_to(mark)
        if key is not None:
            if ctx.budget is not None:
                ctx.budget.charge_cache()
            ctx.cache[key] = total
        return total

    # -- clause-list counting (the measurable legacy baseline) --------------
    def _propagate(self, clauses: List[Clause], assignment: Dict[int, bool],
                   ctx: CountContext) -> Optional[List[Clause]]:
        from .dpll import unit_propagate_legacy
        return unit_propagate_legacy(clauses, assignment, ctx.stats)

    # The recursive count is over exactly the variables mentioned by the
    # clause list it is given; callers account for free variables.
    # Both _count and _count_component compute the same function — the
    # model count of a clause set over its own variables — so they share
    # one cache: a residual can hit *before* being propagated and split.
    def _count(self, clauses: List[Clause], ctx: CountContext) -> int:
        key: Optional[Hashable] = None
        if self.use_cache and clauses:
            key = component_key(clauses, self.cache_mode)
            cached = ctx.cache.get(key)
            if cached is not None:
                ctx.stats.incr("cache_hits")
                return cached
        assignment: Dict[int, bool] = {}
        reduced = self._propagate(clauses, assignment, ctx)
        if reduced is None:
            if key is not None:
                ctx.cache[key] = 0
            return 0
        if reduced is clauses:  # fast path: propagation was a no-op
            base = 1
        else:
            before = {abs(lit) for c in clauses for lit in c}
            after = {abs(lit) for c in reduced for lit in c}
            # variables silenced by propagation but not fixed are free
            free = len(before) - len(after) - len(assignment)
            base = 1 << free
        if not reduced:
            total = base
        else:
            if self.use_components:
                parts = split_components(reduced, ctx.stats)
            else:
                parts = [reduced]
            total = base
            for part in parts:
                total *= self._count_component(part, ctx)
                if total == 0:
                    total = 0
                    break
        if key is not None:
            ctx.cache[key] = total
        return total

    def _count_component(self, clauses: List[Clause],
                         ctx: CountContext) -> int:
        key: Optional[Hashable] = None
        if self.use_cache:
            key = component_key(clauses, self.cache_mode)
            cached = ctx.cache.get(key)
            if cached is not None:
                ctx.stats.incr("cache_hits")
                return cached
        if ctx.budget is not None:
            ctx.budget.tick()
        var = self._pick_variable(clauses)
        ctx.stats.incr("decisions")
        component_vars = {abs(lit) for c in clauses for lit in c}
        total = 0
        for value in (False, True):
            branch = self._condition(clauses, var, value)
            if branch is None:
                continue
            count = self._count(branch, ctx)
            if not count:
                continue
            # _count is over variables mentioned by `branch`; variables of
            # this component eliminated by the conditioning (beyond `var`
            # itself) are free in this branch
            branch_vars = {abs(lit) for c in branch for lit in c}
            free = len(component_vars) - 1 - len(branch_vars)
            total += count << free
        if key is not None:
            ctx.cache[key] = total
        return total

    @staticmethod
    def _pick_variable(clauses: List[Clause]) -> int:
        counts: Dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        return max(counts, key=lambda v: (counts[v], -v))

    @staticmethod
    def _condition(clauses: List[Clause], var: int, value: bool
                   ) -> Optional[List[Clause]]:
        # tuple containment is a C-level scan: much cheaper than per-
        # literal abs() comparisons in the interpreter
        true_lit = var if value else -var
        false_lit = -true_lit
        result: List[Clause] = []
        for clause in clauses:
            if true_lit in clause:
                continue
            if false_lit in clause:
                reduced = tuple(lit for lit in clause if lit != false_lit)
                if not reduced:
                    return None
                result.append(reduced)
            else:
                result.append(clause)
        return result


def count_models(cnf: Cnf, use_components: bool = True,
                 use_cache: bool = True, cache_mode: str = "hash",
                 propagator: str | None = None,
                 budget: Optional[Budget] = None) -> int:
    """Convenience wrapper around :class:`ModelCounter`."""
    counter = ModelCounter(use_components=use_components,
                           use_cache=use_cache, cache_mode=cache_mode,
                           propagator=propagator, budget=budget)
    return counter.count(cnf)
