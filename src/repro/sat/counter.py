"""Exact model counting (#SAT) with component decomposition and caching.

This is the sharpSAT recipe [88] in miniature: DPLL search with unit
propagation, decomposition of the residual CNF into independent
components, and memoisation of component counts.  ``ModelCounter``
exposes switches for both optimisations so the ABL2 benchmark can
measure their effect.

The count is always over variables ``1..num_vars`` of the input CNF:
variables that never occur in a clause contribute a factor of two each.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..logic.cnf import Cnf
from .components import split_components
from .dpll import unit_propagate

__all__ = ["ModelCounter", "count_models"]

Clause = Tuple[int, ...]


class ModelCounter:
    """Exact #SAT solver.

    Parameters
    ----------
    use_components:
        Decompose residual formulas into connected components and
        multiply their counts.
    use_cache:
        Memoise counts of residual components (keyed by their clause
        sets).  Requires deterministic residuals, which unit propagation
        provides.
    """

    def __init__(self, use_components: bool = True, use_cache: bool = True):
        self.use_components = use_components
        self.use_cache = use_cache
        self.cache: Dict[FrozenSet[Clause], int] = {}
        self.cache_hits = 0
        self.decisions = 0

    def count(self, cnf: Cnf) -> int:
        """Number of models of ``cnf`` over variables 1..num_vars."""
        self.cache.clear()
        self.cache_hits = 0
        self.decisions = 0
        clauses = list(cnf.clauses)
        if any(len(c) == 0 for c in clauses):
            return 0
        mentioned = {abs(lit) for c in clauses for lit in c}
        inner = self._count(clauses)
        free = cnf.num_vars - len(mentioned)
        return inner << free if inner else 0

    # The recursive count is over exactly the variables mentioned by the
    # clause list it is given; callers account for free variables.
    def _count(self, clauses: List[Clause]) -> int:
        assignment: Dict[int, bool] = {}
        before = {abs(lit) for c in clauses for lit in c}
        reduced = unit_propagate(clauses, assignment)
        if reduced is None:
            return 0
        after = {abs(lit) for c in reduced for lit in c}
        # variables silenced by propagation but not fixed are free
        free = len(before) - len(after) - len(assignment)
        base = 1 << free
        if not reduced:
            return base
        if self.use_components:
            parts = split_components(reduced)
        else:
            parts = [reduced]
        total = base
        for part in parts:
            total *= self._count_component(part)
            if total == 0:
                return 0
        return total

    def _count_component(self, clauses: List[Clause]) -> int:
        key: Optional[FrozenSet[Clause]] = None
        if self.use_cache:
            key = frozenset(clauses)
            cached = self.cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
        var = self._pick_variable(clauses)
        self.decisions += 1
        total = 0
        for value in (False, True):
            branch = self._condition(clauses, var, value)
            if branch is None:
                continue
            count = self._count(branch)
            # _count is over variables mentioned by `branch`; variables of
            # this component eliminated by the conditioning (beyond `var`
            # itself) are free in this branch
            component_vars = {abs(lit) for c in clauses for lit in c}
            branch_vars = {abs(lit) for c in branch for lit in c}
            free = len(component_vars) - 1 - len(branch_vars)
            total += count << free if count else 0
        if key is not None:
            self.cache[key] = total
        return total

    @staticmethod
    def _pick_variable(clauses: List[Clause]) -> int:
        counts: Dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        return max(counts, key=lambda v: (counts[v], -v))

    @staticmethod
    def _condition(clauses: List[Clause], var: int, value: bool
                   ) -> Optional[List[Clause]]:
        result: List[Clause] = []
        for clause in clauses:
            if any(abs(lit) == var and (lit > 0) == value for lit in clause):
                continue
            reduced = tuple(lit for lit in clause if abs(lit) != var)
            if not reduced:
                return None
            result.append(reduced)
        return result


def count_models(cnf: Cnf, use_components: bool = True,
                 use_cache: bool = True) -> int:
    """Convenience wrapper around :class:`ModelCounter`."""
    counter = ModelCounter(use_components=use_components,
                           use_cache=use_cache)
    return counter.count(cnf)
