"""SAT solving and exact model counting."""

from .dpll import enumerate_models, is_satisfiable, solve, unit_propagate
from .components import split_components
from .counter import ModelCounter, count_models

__all__ = ["enumerate_models", "is_satisfiable", "solve", "unit_propagate",
           "split_components", "ModelCounter", "count_models"]
