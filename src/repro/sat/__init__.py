"""SAT solving and exact model counting."""

from .dpll import (enumerate_models, is_satisfiable, solve, solve_legacy,
                   unit_propagate, unit_propagate_legacy)
from .propagation import WatchedSolver, propagate_implied, propagate_watched
from .components import occurrence_index, split_components
from .counter import (CountContext, ModelCounter, component_key,
                      count_models)

__all__ = ["enumerate_models", "is_satisfiable", "solve", "solve_legacy",
           "unit_propagate", "unit_propagate_legacy", "WatchedSolver",
           "propagate_implied", "propagate_watched", "occurrence_index",
           "split_components", "CountContext", "ModelCounter",
           "component_key", "count_models"]
