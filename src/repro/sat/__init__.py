"""SAT solving and exact model counting.

The seed baselines (``solve_legacy``, ``unit_propagate_legacy``) are
deliberately *not* re-exported here: production code reaches them only
through :mod:`repro.compat` (enforced by ``tools/lint_invariants.py``);
benchmarks and tests import :mod:`repro.sat.dpll` or the compat shim
directly.
"""

from .dpll import enumerate_models, is_satisfiable, solve, unit_propagate
from .propagation import WatchedSolver, propagate_implied, propagate_watched
from .components import occurrence_index, split_components
from .counter import (CountContext, ModelCounter, component_key,
                      count_models)

__all__ = ["enumerate_models", "is_satisfiable", "solve",
           "unit_propagate", "WatchedSolver",
           "propagate_implied", "propagate_watched", "occurrence_index",
           "split_components", "CountContext", "ModelCounter",
           "component_key", "count_models"]
