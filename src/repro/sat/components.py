"""Connected-component decomposition of CNF clause sets.

If the clause/variable incidence graph of a CNF splits into independent
components, its model count is the product of the components' counts.
This is the decomposition rule at the heart of sharpSAT-style counters
and of the d-DNNF compilers built on their traces (Section 3, [38]).

The split walks the incidence graph through an explicit
clause→variable / variable→clause occurrence index, visiting every
clause and every literal occurrence exactly once — near-linear in the
formula size, where the seed's union-find paid path-compression
overhead per occurrence.  Output (component order and clause order
inside a component) is identical to the seed implementation: components
sorted by their smallest variable, clauses in original order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..perf.instrument import Counter

__all__ = ["split_components", "occurrence_index", "trail_components"]

Clause = Tuple[int, ...]


def occurrence_index(clauses: Sequence[Clause]
                     ) -> Dict[int, List[int]]:
    """Variable → indices of the clauses that mention it.

    A clause mentioning a variable several times appears that many
    times in the variable's list; consumers that need distinct clauses
    (like the component walk) already guard with a visited set, and
    skipping per-clause deduplication keeps the build a single pass.
    """
    occ: Dict[int, List[int]] = {}
    setdefault = occ.setdefault
    for ci, clause in enumerate(clauses):
        for lit in clause:
            setdefault(lit if lit > 0 else -lit, []).append(ci)
    return occ


def split_components(clauses: Sequence[Clause],
                     stats: Counter | None = None) -> List[List[Clause]]:
    """Partition clauses into variable-connected components.

    Two clauses are connected when they share a variable.  Returns the
    list of components (each a list of clauses), in a deterministic
    order (by smallest variable in the component).
    """
    if not clauses:
        return []
    occ = occurrence_index(clauses)
    visited = [False] * len(clauses)
    components: Dict[int, List[int]] = {}  # min variable -> clause indices
    for start in range(len(clauses)):
        if visited[start]:
            continue
        visited[start] = True
        member: List[int] = []
        stack = [start]
        seen_vars: set[int] = set()
        while stack:
            ci = stack.pop()
            member.append(ci)
            for lit in clauses[ci]:
                var = abs(lit)
                if var in seen_vars:
                    continue
                seen_vars.add(var)
                for cj in occ[var]:
                    if not visited[cj]:
                        visited[cj] = True
                        stack.append(cj)
        member.sort()  # restore original clause order
        # an empty clause forms its own variable-free component
        root = min(seen_vars) if seen_vars else -(start + 1)
        components[root] = member
    if stats is not None:
        stats.incr("component_splits")
        stats.incr("components_found", len(components))
    return [[clauses[ci] for ci in components[root]]
            for root in sorted(components)]


def trail_components(clauses: Sequence[Clause], indices,
                     values: List[Optional[bool]], split: bool = True
                     ) -> Tuple[List[Tuple[List[int], List[int]]],
                                Dict[int, List[int]]]:
    """Fused active-clause scan and component walk over clause *indices*.

    This is the hot-path variant of :func:`split_components` used by the
    trail-based engines (sharpSAT-style counter and compiler): nothing
    is materialised.  ``indices`` names the candidate clauses,
    ``values`` is the trail's 1-indexed variable assignment
    (``True``/``False``/``None``).  One pass drops satisfied clauses,
    collects the free literals of the rest, and builds the
    variable→clause occurrence lists; a stack walk then partitions the
    active clauses into variable-connected components.

    Returns ``(components, occ)``: each component is ``(sorted clause
    indices, component variables)``, and ``occ`` maps every free
    variable to the active clauses containing it (one entry per literal
    occurrence, so ``len(occ[v])`` doubles as an occurrence score).
    ``components`` is empty iff every candidate clause is satisfied.
    With ``split=False`` all active clauses form a single component.

    Callers must be at a propagation fixpoint: an active clause then has
    at least two free literals, so no component is empty or unit.
    """
    free_lits: Dict[int, List[int]] = {}
    occ: Dict[int, List[int]] = {}
    for ci in indices:
        lits: List[int] = []
        satisfied = False
        for lit in clauses[ci]:
            var = lit if lit > 0 else -lit
            val = values[var]
            if val is None:
                lits.append(lit)
            elif val == (lit > 0):
                satisfied = True
                break
        if satisfied:
            continue
        free_lits[ci] = lits
        for lit in lits:
            var = lit if lit > 0 else -lit
            entry = occ.get(var)
            if entry is None:
                occ[var] = [ci]
            else:
                entry.append(ci)
    if not free_lits:
        return [], occ
    if not split:
        return [(sorted(free_lits), list(occ))], occ
    components: List[Tuple[List[int], List[int]]] = []
    seen: set = set()
    for start in occ:
        if start in seen:
            continue
        seen.add(start)
        stack = [start]
        comp_vars: List[int] = []
        comp_cls: set = set()
        while stack:
            var = stack.pop()
            comp_vars.append(var)
            for ci in occ[var]:
                if ci in comp_cls:
                    continue
                comp_cls.add(ci)
                for lit in free_lits[ci]:
                    v = lit if lit > 0 else -lit
                    if v not in seen:
                        seen.add(v)
                        stack.append(v)
        components.append((sorted(comp_cls), comp_vars))
    return components, occ
