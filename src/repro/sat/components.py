"""Connected-component decomposition of CNF clause sets.

If the clause/variable incidence graph of a CNF splits into independent
components, its model count is the product of the components' counts.
This is the decomposition rule at the heart of sharpSAT-style counters
and of the d-DNNF compilers built on their traces (Section 3, [38]).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["split_components"]

Clause = Tuple[int, ...]


def split_components(clauses: Sequence[Clause]) -> List[List[Clause]]:
    """Partition clauses into variable-connected components.

    Two clauses are connected when they share a variable.  Returns the
    list of components (each a list of clauses), in a deterministic
    order (by smallest variable in the component).
    """
    if not clauses:
        return []
    parent: Dict[int, int] = {}

    def find(v: int) -> int:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for clause in clauses:
        variables = [abs(lit) for lit in clause]
        for var in variables:
            parent.setdefault(var, var)
        for other in variables[1:]:
            union(variables[0], other)

    groups: Dict[int, List[Clause]] = {}
    for clause in clauses:
        root = find(abs(clause[0]))
        groups.setdefault(root, []).append(clause)
    return [groups[root] for root in sorted(groups)]
