"""Tests for factors, Bayesian networks, VE and the Fig 2 queries."""

import itertools

import numpy as np
import pytest

from repro.bayesnet import (BayesianNetwork, Factor, chain_network,
                            d_map, d_mar, d_mpe, d_sdp, map_query, mar,
                            marginal, medical_network, min_fill_order,
                            mpe, posterior, random_network, sdp)


# -- Factor ---------------------------------------------------------------------

def test_factor_construction_and_call():
    f = Factor(("A", "B"), {"A": 2, "B": 3}, np.arange(6).reshape(2, 3))
    assert f({"A": 1, "B": 2}) == 5.0
    with pytest.raises(ValueError):
        Factor(("A",), {"A": 2}, np.zeros(3))
    with pytest.raises(ValueError):
        Factor(("A", "A"), {"A": 2}, np.zeros((2, 2)))


def test_factor_multiply_aligns_axes():
    f = Factor(("A",), {"A": 2}, [0.4, 0.6])
    g = Factor(("B", "A"), {"A": 2, "B": 2},
               [[0.1, 0.2], [0.3, 0.4]])
    product = f.multiply(g)
    for a in (0, 1):
        for b in (0, 1):
            assert product({"A": a, "B": b}) == pytest.approx(
                f({"A": a}) * g({"A": a, "B": b}))


def test_factor_multiply_unit():
    f = Factor(("A",), {"A": 2}, [0.4, 0.6])
    assert Factor.unit().multiply(f)({"A": 1}) == pytest.approx(0.6)


def test_factor_sum_and_max_out():
    f = Factor(("A", "B"), {"A": 2, "B": 2}, [[1, 2], [3, 4]])
    s = f.sum_out(["B"])
    assert s({"A": 0}) == 3 and s({"A": 1}) == 7
    m = f.max_out(["A"])
    assert m({"B": 0}) == 3 and m({"B": 1}) == 4
    assert f.sum_out(["Z"]) is f  # unknown vars ignored


def test_factor_reduce_normalize_argmax():
    f = Factor(("A", "B"), {"A": 2, "B": 2}, [[1, 2], [3, 4]])
    r = f.reduce({"A": 1})
    assert r.variables == ("B",)
    assert r({"B": 1}) == 4
    n = f.normalize()
    assert n.total() == pytest.approx(1.0)
    assert f.argmax() == {"A": 1, "B": 1}
    with pytest.raises(ZeroDivisionError):
        Factor(("A",), {"A": 2}, [0, 0]).normalize()


def test_factor_cardinality_mismatch():
    f = Factor(("A",), {"A": 2}, [1, 1])
    g = Factor(("A",), {"A": 3}, [1, 1, 1])
    with pytest.raises(ValueError):
        f.multiply(g)


# -- network construction ----------------------------------------------------------

def test_network_construction_errors():
    net = BayesianNetwork()
    net.add_variable("A", (), [0.5, 0.5])
    with pytest.raises(ValueError):
        net.add_variable("A", (), [0.5, 0.5])  # duplicate
    with pytest.raises(ValueError):
        net.add_variable("B", ("Z",), [[0.5, 0.5]])  # unknown parent
    with pytest.raises(ValueError):
        net.add_variable("B", ("A",), [0.5, 0.5])  # bad shape
    with pytest.raises(ValueError):
        net.add_variable("B", (), [0.5, 0.6])  # not normalized


def test_fig4_distribution_is_product_of_parameters():
    """The Fig 4 semantics: Pr(a,b,c) = θ_a · θ_b|a · θ_c|a."""
    net = chain_network(theta_a=0.6, theta_b_given_a=(0.2, 0.9),
                        theta_c_given_a=(0.7, 0.3))
    assert net.probability({"A": 1, "B": 1, "C": 0}) == \
        pytest.approx(0.6 * 0.9 * 0.7)
    assert net.probability({"A": 0, "B": 0, "C": 1}) == \
        pytest.approx(0.4 * 0.8 * 0.7)
    total = sum(net.probability(s) for s in net.states())
    assert total == pytest.approx(1.0)
    assert net.parameter_count() == 10  # as the paper notes


def test_joint_factor_matches_probability():
    net = medical_network()
    joint = net.joint_factor()
    for state in itertools.islice(net.states(), 8):
        assert joint(state) == pytest.approx(net.probability(state))
    assert joint.total() == pytest.approx(1.0)


# -- variable elimination ------------------------------------------------------------

def test_marginal_matches_bruteforce():
    net = medical_network()
    joint = net.joint_factor()
    for name in net.variables:
        ve = marginal(net, [name])
        brute = joint.sum_out([v for v in net.variables if v != name])
        for state in range(net.cardinality(name)):
            assert ve({name: state}) == pytest.approx(
                brute({name: state}))


def test_posterior_with_evidence():
    net = medical_network()
    post = posterior(net, ["c"], {"T1": 1})
    joint = net.joint_factor().reduce({"T1": 1})
    expected = joint.sum_out(["sex", "T2", "AGREE"]).normalize()
    for state in (0, 1):
        assert post({"c": state}) == pytest.approx(expected({"c": state}))


def test_min_fill_order_covers_all():
    net = medical_network()
    order = min_fill_order(net)
    assert sorted(order) == sorted(net.variables)
    order_keep = min_fill_order(net, keep=["c"])
    assert "c" not in order_keep


# -- the Fig 2 queries ------------------------------------------------------------

def test_mar_equals_bruteforce():
    net = medical_network()
    joint = net.joint_factor()
    p = mar(net, {"c": 1})
    brute = joint.sum_out(["sex", "T1", "T2", "AGREE"])({"c": 1})
    assert p == pytest.approx(brute)


def test_mar_with_evidence():
    net = medical_network()
    p = mar(net, {"c": 1}, {"T1": 1, "T2": 1})
    # Bayes by hand over the joint
    joint = net.joint_factor().reduce({"T1": 1, "T2": 1})
    reduced = joint.sum_out(["sex", "AGREE"])
    brute = reduced({"c": 1}) / (reduced({"c": 0}) + reduced({"c": 1}))
    assert p == pytest.approx(brute)


def test_mpe_matches_enumeration():
    net = medical_network()
    instantiation, p = mpe(net)
    best = max(net.states(), key=net.probability)
    assert p == pytest.approx(net.probability(best))
    assert net.probability(instantiation) == pytest.approx(p)


def test_mpe_with_evidence():
    net = medical_network()
    instantiation, p = mpe(net, {"T1": 1})
    assert instantiation["T1"] == 1
    best = max((s for s in net.states() if s["T1"] == 1),
               key=net.probability)
    assert p == pytest.approx(net.probability(best))


def test_map_matches_enumeration():
    net = medical_network()
    y, p = map_query(net, ["sex", "c"])
    joint = net.joint_factor().sum_out(["T1", "T2", "AGREE"])
    best = max(((a, b) for a in (0, 1) for b in (0, 1)),
               key=lambda ab: joint({"sex": ab[0], "c": ab[1]}))
    assert (y["sex"], y["c"]) == best
    assert p == pytest.approx(joint({"sex": best[0], "c": best[1]}))


def test_map_is_not_mpe_projection_in_general():
    """The classic MAP ≠ projected MPE pitfall — our implementations
    must treat them differently (they may coincide on some networks)."""
    net = chain_network(theta_a=0.5, theta_b_given_a=(0.45, 0.55),
                        theta_c_given_a=(0.1, 0.9))
    y_map, _ = map_query(net, ["B"])
    inst_mpe, _ = mpe(net)
    # MAP over B maximizes Pr(B); both are legal answers, just check both
    assert y_map["B"] in (0, 1) and inst_mpe["B"] in (0, 1)
    assert mar(net, {"B": y_map["B"]}) >= mar(net, {"B": 1 - y_map["B"]})


def test_sdp_bruteforce_agreement():
    net = medical_network()
    threshold = 0.9
    current = mar(net, {"c": 1}) >= threshold
    brute = 0.0
    for t1 in (0, 1):
        for t2 in (0, 1):
            p_y = mar(net, {"T1": t1, "T2": t2})
            p_x = mar(net, {"c": 1}, {"T1": t1, "T2": t2})
            if (p_x >= threshold) == current:
                brute += p_y
    assert sdp(net, "c", 1, threshold, ["T1", "T2"]) == \
        pytest.approx(brute)
    assert 0.9 < brute < 1.0  # informative on our quantification


def test_sdp_trivial_when_observation_is_irrelevant():
    net = chain_network()
    # observing C cannot change a decision on C itself... use B:
    # decision on A with threshold 0 sticks always
    assert sdp(net, "A", 1, 0.0, ["B"]) == pytest.approx(1.0)


def test_decision_versions():
    net = medical_network()
    _inst, p = mpe(net)
    assert d_mpe(net, p - 0.01)
    assert not d_mpe(net, p + 0.01)
    assert d_mar(net, {"c": 0}, 0.5)
    assert not d_mar(net, {"c": 1}, 0.5)
    _y, pm = map_query(net, ["sex", "c"])
    assert d_map(net, ["sex", "c"], pm - 0.01)
    assert not d_map(net, ["sex", "c"], pm + 0.01)
    s = sdp(net, "c", 1, 0.9, ["T1", "T2"])
    assert d_sdp(net, "c", 1, 0.9, ["T1", "T2"], s - 0.01)
    assert not d_sdp(net, "c", 1, 0.9, ["T1", "T2"], s + 0.01)


def test_random_network_valid():
    import random
    net = random_network(6, rng=random.Random(0), zero_fraction=0.3)
    total = sum(net.probability(s) for s in net.states())
    assert total == pytest.approx(1.0)
