"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.logic import Cnf
from repro.nnf import from_nnf_format, model_count


@pytest.fixture
def cnf_file(tmp_path):
    path = tmp_path / "example.cnf"
    path.write_text("p cnf 4 3\n1 2 0\n-2 3 0\n3 -4 0\n")
    return str(path)


@pytest.fixture
def unsat_file(tmp_path):
    path = tmp_path / "unsat.cnf"
    path.write_text("p cnf 1 2\n1 0\n-1 0\n")
    return str(path)


def test_count_command(cnf_file, capsys):
    assert main(["count", cnf_file]) == 0
    out = capsys.readouterr().out
    assert "s mc 7" in out


def test_count_verbose_and_switches(cnf_file, capsys):
    assert main(["count", cnf_file, "-v", "--no-cache",
                 "--no-components"]) == 0
    out = capsys.readouterr().out
    assert "s mc 7" in out
    assert "c decisions" in out


def test_sat_command(cnf_file, unsat_file, capsys):
    assert main(["sat", cnf_file]) == 0
    assert "SATISFIABLE" in capsys.readouterr().out
    assert main(["sat", unsat_file]) == 1
    assert "UNSATISFIABLE" in capsys.readouterr().out


def test_compile_roundtrip(cnf_file, tmp_path, capsys):
    output = str(tmp_path / "out.nnf")
    assert main(["compile", cnf_file, "-o", output]) == 0
    circuit = from_nnf_format(open(output).read())
    assert model_count(circuit, range(1, 5)) == 7


def test_compile_to_stdout(cnf_file, capsys):
    assert main(["compile", cnf_file]) == 0
    out = capsys.readouterr().out
    assert out.startswith("nnf ")


def test_compile_sdd_format(cnf_file, tmp_path, capsys):
    from repro.ir.serialize import read_sdd_file
    from repro.sdd.queries import model_count as sdd_model_count
    base = str(tmp_path / "out")
    assert main(["compile", cnf_file, "--format", "sdd",
                 "-o", base]) == 0
    root, _ = read_sdd_file(open(base + ".sdd").read(),
                            open(base + ".vtree").read())
    assert sdd_model_count(root) == 7


def test_compile_with_cache_dir(cnf_file, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["compile", cnf_file, "--cache-dir", cache,
                 "--stats"]) == 0
    first = capsys.readouterr().out
    assert "c artifact_misses 1" in first
    assert main(["compile", cnf_file, "--cache-dir", cache,
                 "--stats"]) == 0
    second = capsys.readouterr().out
    assert "c artifact_hits 1" in second
    assert "c artifact-hit-rate 1.00" in second
    # the compiled circuit text is identical warm and cold
    assert first.split("\nc ")[0] == second.split("\nc ")[0]


def test_query_command(cnf_file, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["query", cnf_file, "--query", "count",
                 "--cache-dir", cache]) == 0
    assert "s mc 7" in capsys.readouterr().out

    assert main(["query", cnf_file, "--query", "sat"]) == 0
    assert "s SATISFIABLE" in capsys.readouterr().out

    assert main(["query", cnf_file, "--query", "wmc",
                 "--weight", "1=0.3", "--weight=-1=0.7",
                 "--cache-dir", cache, "--stats"]) == 0
    out = capsys.readouterr().out
    assert "s wmc" in out
    assert "c artifact_hits 1" in out

    assert main(["query", cnf_file, "--query", "mpe",
                 "--weight", "4=2.0"]) == 0
    out = capsys.readouterr().out
    assert "s mpe" in out and "\nv " in "\n" + out

    assert main(["query", cnf_file, "--query", "marginals"]) == 0
    out = capsys.readouterr().out
    assert "c marginal 1 " in out and "s mc 7" in out


def test_query_bad_weight(cnf_file, capsys):
    assert main(["query", cnf_file, "--query", "wmc",
                 "--weight", "nope"]) == 2
    assert "bad weight spec" in capsys.readouterr().err


def test_sdd_command(cnf_file, capsys):
    for vtree in ("balanced", "right-linear", "left-linear"):
        assert main(["sdd", cnf_file, "--vtree", vtree]) == 0
        out = capsys.readouterr().out
        assert "s mc 7" in out
        assert "c sdd-size" in out


def test_enumerate_command(cnf_file, capsys):
    assert main(["enumerate", cnf_file]) == 0
    out = capsys.readouterr().out
    assert out.count("\nc ") + out.startswith("c ") >= 0
    assert "c 7 models printed" in out
    # every printed model satisfies the formula
    cnf = Cnf.from_dimacs(open(cnf_file).read())
    for line in out.splitlines():
        if line.startswith("v "):
            literals = [int(t) for t in line.split()[1:-1]]
            assignment = {abs(l): l > 0 for l in literals}
            assert cnf.evaluate(assignment)


def test_enumerate_limit(cnf_file, capsys):
    assert main(["enumerate", cnf_file, "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "c 2 models printed" in out


def test_missing_file(capsys):
    assert main(["count", "/nonexistent/x.cnf"]) == 2
    assert "error" in capsys.readouterr().err


def test_bad_dimacs(tmp_path, capsys):
    path = tmp_path / "bad.cnf"
    path.write_text("1 2 0\n")  # no header
    assert main(["count", str(path)]) == 2
    assert "error" in capsys.readouterr().err
