"""Unit tests for the infix formula parser."""

import pytest

from repro.logic import FALSE, ParseError, TRUE, VarMap, parse


def test_single_variable():
    vm = VarMap()
    f = parse("X", vm)
    assert f.evaluate(vm.assignment(X=True))
    assert not f.evaluate(vm.assignment(X=False))


def test_shared_varmap_namespace():
    vm = VarMap()
    parse("A & B", vm)
    parse("B | C", vm)
    assert vm.names() == ["A", "B", "C"]
    assert vm.index("B") == 2


def test_varmap_roundtrip():
    vm = VarMap()
    idx = vm.index("Foo")
    assert vm.name(idx) == "Foo"
    assert "Foo" in vm
    assert len(vm) == 1


def test_precedence_and_over_or():
    vm = VarMap()
    f = parse("A | B & C", vm)
    # must parse as A | (B & C)
    assert f.evaluate(vm.assignment(A=True, B=False, C=False))
    assert not f.evaluate(vm.assignment(A=False, B=True, C=False))


def test_not_binds_tightest():
    vm = VarMap()
    f = parse("~A & B", vm)
    assert f.evaluate(vm.assignment(A=False, B=True))
    assert not f.evaluate(vm.assignment(A=True, B=True))


def test_implication_right_associative():
    vm = VarMap()
    f = parse("A -> B -> C", vm)  # A -> (B -> C)
    assert f.evaluate(vm.assignment(A=True, B=False, C=False))
    assert not f.evaluate(vm.assignment(A=True, B=True, C=False))


def test_iff():
    vm = VarMap()
    f = parse("A <-> B", vm)
    assert f.evaluate(vm.assignment(A=True, B=True))
    assert not f.evaluate(vm.assignment(A=True, B=False))


def test_parentheses():
    vm = VarMap()
    f = parse("(A | B) & C", vm)
    assert not f.evaluate(vm.assignment(A=True, B=False, C=False))
    assert f.evaluate(vm.assignment(A=True, B=False, C=True))


def test_word_operators_and_unicode():
    vm = VarMap()
    f = parse("A and not B or C", vm)
    g = parse("A ∧ ¬B ∨ C", vm)
    for assignment in [vm.assignment(A=a, B=b, C=c)
                       for a in (0, 1) for b in (0, 1) for c in (0, 1)]:
        assert f.evaluate(assignment) == g.evaluate(assignment)


def test_constants():
    assert parse("true") == TRUE
    assert parse("False") == FALSE


def test_paper_enrollment_constraint():
    """The Fig 15 constraint parses and has the right number of models."""
    vm = VarMap()
    f = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    assert f.model_count(sorted(vm.assignment(P=1, L=1, A=1, K=1))) == 9


@pytest.mark.parametrize("bad", ["", "A &", "(A", "A B", "& A", "A ) B",
                                 "A -> ", "A @ B"])
def test_parse_errors(bad):
    with pytest.raises(ParseError):
        parse(bad)
