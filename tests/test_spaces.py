"""Tests for structured spaces: route and ranking encodings, Mallows."""

import math
import random

import pytest

from repro.psdd import marginal, support_size
from repro.sat import count_models
from repro.sdd import enumerate_models, model_count
from repro.spaces import (MallowsModel, RankingSpace, RouteModel,
                          borda_ranking, degree_relaxation_cnf,
                          enumerate_routes, fit_mallows, grid_map,
                          kendall_tau, route_space_sdd)


# -- road maps -----------------------------------------------------------------

def test_grid_map_structure():
    gm = grid_map(2, 3)
    assert gm.num_edges == 7  # 2*2 vertical + 3... (2 rows x 3 cols)
    assert len(gm.nodes) == 6
    assert sorted(gm.variables()) == list(range(1, 8))


def test_grid_map_rejects_bad_dims():
    with pytest.raises(ValueError):
        grid_map(0, 3)


def test_route_assignment_roundtrip():
    gm = grid_map(2, 2)
    path = [(0, 0), (0, 1), (1, 1)]
    assignment = gm.route_assignment(path)
    assert sum(assignment.values()) == 2
    assert gm.is_route(assignment, (0, 0), (1, 1))
    edges = gm.assignment_route_edges(assignment)
    assert len(edges) == 2


def test_route_assignment_rejects_nonedges():
    gm = grid_map(2, 2)
    with pytest.raises(ValueError):
        gm.route_assignment([(0, 0), (1, 1)])  # diagonal


def test_disconnected_assignment_is_not_route():
    """The orange assignment of Fig 16: disconnected edges."""
    gm = grid_map(2, 2)
    assignment = {v: False for v in gm.variables()}
    assignment[gm.edge_variable((0, 0), (0, 1))] = True
    assignment[gm.edge_variable((1, 0), (1, 1))] = True
    assert not gm.is_route(assignment, (0, 0), (1, 1))


def test_route_enumeration_counts():
    # corner-to-corner simple paths: 2x2 grid -> 2, 3x3 grid -> 12
    assert len(enumerate_routes(grid_map(2, 2), (0, 0), (1, 1))) == 2
    assert len(enumerate_routes(grid_map(3, 3), (0, 0), (2, 2))) == 12


def test_route_space_sdd_models_are_routes():
    gm = grid_map(2, 2)
    sdd, manager, routes = route_space_sdd(gm, (0, 0), (1, 1))
    assert model_count(sdd) == len(routes) == 2
    for model in enumerate_models(sdd):
        assert gm.is_route(model, (0, 0), (1, 1))


def test_route_space_no_route():
    import networkx as nx
    from repro.spaces.gridmap import RoadMap
    graph = nx.Graph()
    graph.add_edge("a", "b")
    graph.add_edge("c", "d")
    road_map = RoadMap(graph)
    with pytest.raises(ValueError):
        route_space_sdd(road_map, "a", "c")


def test_degree_relaxation_is_a_superset():
    """Every valid route satisfies the degree CNF; the CNF may admit
    extra models (route + disjoint cycles) — the paper's reason for
    dedicated compilation of graph substructures."""
    gm = grid_map(3, 3)
    cnf = degree_relaxation_cnf(gm, (0, 0), (2, 2))
    routes = enumerate_routes(gm, (0, 0), (2, 2))
    for route in routes:
        assert cnf.evaluate(gm.route_assignment(route))
    assert count_models(cnf) >= len(routes)
    # on the 3x3 grid the gap is real: 14 models vs 12 routes
    assert count_models(cnf) == 14


def test_route_model_learns_frequencies():
    gm = grid_map(2, 2)
    model = RouteModel(gm, (0, 0), (1, 1))
    upper = [(0, 0), (0, 1), (1, 1)]
    lower = [(0, 0), (1, 0), (1, 1)]
    model.fit([upper] * 3 + [lower] * 1)
    assert model.route_probability(upper) == pytest.approx(0.75)
    assert model.route_probability(lower) == pytest.approx(0.25)
    best, p = model.most_probable_route()
    assert best == upper
    assert p == pytest.approx(0.75)
    # edge marginal of the shared first edge of `upper`
    assert model.edge_marginal((0, 0), (0, 1)) == pytest.approx(0.75)


def test_route_model_sampling():
    gm = grid_map(2, 2)
    model = RouteModel(gm, (0, 0), (1, 1))
    upper = [(0, 0), (0, 1), (1, 1)]
    lower = [(0, 0), (1, 0), (1, 1)]
    model.fit([upper] * 9 + [lower])
    rng = random.Random(0)
    samples = model.sample_routes(200, rng)
    share = sum(1 for s in samples if s == upper) / len(samples)
    assert 0.8 < share <= 1.0


def test_route_model_psdd_support():
    gm = grid_map(3, 3)
    model = RouteModel(gm, (0, 0), (2, 2))
    assert support_size(model.psdd) == 12


# -- rankings -------------------------------------------------------------------

def test_ranking_variables_unique():
    rs = RankingSpace(3)
    seen = {rs.variable(i, j) for i in range(3) for j in range(3)}
    assert len(seen) == 9
    with pytest.raises(ValueError):
        rs.variable(3, 0)


def test_ranking_space_model_count_is_factorial():
    for n in (2, 3, 4):
        rs = RankingSpace(n)
        sdd, _manager = rs.compile()
        assert model_count(sdd) == math.factorial(n)


def test_ranking_assignment_roundtrip():
    rs = RankingSpace(4)
    ranking = [2, 0, 3, 1]
    assignment = rs.ranking_assignment(ranking)
    assert rs.assignment_ranking(assignment) == ranking
    assert rs.is_valid(assignment)


def test_invalid_ranking_assignment():
    """Fig 17's orange example: item in two positions is invalid."""
    rs = RankingSpace(2)
    assignment = {v: False for v in rs.variables()}
    assignment[rs.variable(0, 0)] = True
    assignment[rs.variable(0, 1)] = True
    assert not rs.is_valid(assignment)
    with pytest.raises(ValueError):
        rs.ranking_assignment([0, 0])


def test_ranking_cnf_models_decode():
    rs = RankingSpace(3)
    cnf = rs.constraint_cnf()
    rankings = set()
    for model in cnf.models():
        rankings.add(tuple(rs.assignment_ranking(model)))
    assert len(rankings) == 6


# -- Mallows --------------------------------------------------------------------

def test_kendall_tau():
    assert kendall_tau([0, 1, 2], [0, 1, 2]) == 0
    assert kendall_tau([2, 1, 0], [0, 1, 2]) == 3
    assert kendall_tau([1, 0, 2], [0, 1, 2]) == 1
    with pytest.raises(ValueError):
        kendall_tau([0, 1], [0, 2])


def test_mallows_normalizes():
    import itertools
    model = MallowsModel([0, 1, 2, 3], 0.6)
    total = sum(model.probability(list(p))
                for p in itertools.permutations(range(4)))
    assert total == pytest.approx(1.0)


def test_mallows_phi_one_is_uniform():
    model = MallowsModel([0, 1, 2], 1.0)
    assert model.probability([2, 1, 0]) == pytest.approx(1 / 6)


def test_mallows_center_is_mode():
    model = MallowsModel([0, 1, 2, 3], 0.3)
    import itertools
    probs = {p: model.probability(list(p))
             for p in itertools.permutations(range(4))}
    assert max(probs, key=probs.get) == (0, 1, 2, 3)


def test_mallows_invalid_phi():
    with pytest.raises(ValueError):
        MallowsModel([0, 1], 0.0)
    with pytest.raises(ValueError):
        MallowsModel([0, 1], 1.5)


def test_mallows_sampling_statistics():
    rng = random.Random(11)
    model = MallowsModel([0, 1, 2, 3], 0.4)
    samples = [model.sample(rng) for _ in range(3000)]
    center_share = sum(1 for s in samples if s == [0, 1, 2, 3]) / 3000
    assert abs(center_share - model.probability([0, 1, 2, 3])) < 0.05


def test_borda_ranking():
    data = [([0, 1, 2], 5), ([1, 0, 2], 1)]
    assert borda_ranking(data) == [0, 1, 2]


def test_fit_mallows_recovers_parameters():
    rng = random.Random(23)
    truth = MallowsModel([3, 1, 0, 2], 0.45)
    data = {}
    for _ in range(2000):
        s = tuple(truth.sample(rng))
        data[s] = data.get(s, 0) + 1
    fitted = fit_mallows([(list(r), c) for r, c in data.items()])
    assert fitted.center == [3, 1, 0, 2]
    assert abs(fitted.phi - 0.45) < 0.08
