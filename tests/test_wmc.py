"""Tests for the BN → WMC reduction (Section 2.2) and arithmetic circuits."""

import random

import pytest

from repro.bayesnet import (chain_network, mar, medical_network, mpe,
                            random_network)
from repro.compile import compile_cnf
from repro.nnf import weighted_model_count
from repro.sat import count_models
from repro.wmc import (ArithmeticCircuit, WmcPipeline, encode_binary,
                       encode_multistate)


def test_binary_encoding_model_count_is_instantiation_count():
    """The encoding has exactly one model per network instantiation."""
    net = chain_network()
    enc = encode_binary(net)
    assert count_models(enc.cnf) == 8


def test_multistate_encoding_model_count():
    net = chain_network()
    enc = encode_multistate(net)
    assert count_models(enc.cnf) == 8


def test_binary_encoding_rejects_multistate():
    from repro.bayesnet import BayesianNetwork
    net = BayesianNetwork()
    net.add_variable("X", (), [0.2, 0.3, 0.5])
    with pytest.raises(ValueError):
        encode_binary(net)
    enc = encode_multistate(net)
    assert count_models(enc.cnf) == 3


def test_model_weight_is_instantiation_probability():
    """Expression (1) of the paper: the model for A,B,~C weighs
    θ_A · θ_B|A · θ_~C|A."""
    net = chain_network(theta_a=0.6, theta_b_given_a=(0.2, 0.9),
                        theta_c_given_a=(0.7, 0.3))
    enc = encode_binary(net)
    from repro.sat import enumerate_models
    for model in enumerate_models(enc.cnf):
        weight = 1.0
        for var, value in model.items():
            weight *= enc.weights[var if value else -var]
        state = enc.state_of_model(model)
        assert weight == pytest.approx(net.probability(state))


def test_total_wmc_is_one():
    for encoding in (encode_binary, encode_multistate):
        net = medical_network()
        enc = encoding(net)
        root = compile_cnf(enc.cnf)
        total = weighted_model_count(
            root, enc.weights, range(1, enc.cnf.num_vars + 1))
        assert total == pytest.approx(1.0)


@pytest.mark.parametrize("encoding", ["binary", "multistate"])
def test_pipeline_mar_agrees_with_ve(encoding):
    net = medical_network()
    pipe = WmcPipeline(net, encoding=encoding)
    for name in net.variables:
        for state in (0, 1):
            assert pipe.mar({name: state}) == pytest.approx(
                mar(net, {name: state}))


@pytest.mark.parametrize("encoding", ["binary", "multistate"])
def test_pipeline_conditional_mar(encoding):
    net = medical_network()
    pipe = WmcPipeline(net, encoding=encoding)
    assert pipe.mar({"c": 1}, {"T1": 1, "T2": 1}) == pytest.approx(
        mar(net, {"c": 1}, {"T1": 1, "T2": 1}))


def test_pipeline_zero_probability_evidence():
    net = medical_network()
    pipe = WmcPipeline(net)
    # AGREE=0 with T1==T2 is impossible
    with pytest.raises(ZeroDivisionError):
        pipe.mar({"c": 1}, {"T1": 1, "T2": 1, "AGREE": 0})


def test_pipeline_marginals_one_pass():
    net = medical_network()
    pipe = WmcPipeline(net)
    marginals = pipe.marginals({"T1": 1})
    for name in net.variables:
        for state in (0, 1):
            assert marginals[name][state] == pytest.approx(
                mar(net, {name: state}, {"T1": 1}))
        assert sum(marginals[name].values()) == pytest.approx(1.0)


def test_pipeline_mpe_agrees_with_ve():
    net = medical_network()
    pipe = WmcPipeline(net)
    inst, p = pipe.mpe()
    _vinst, vp = mpe(net)
    assert p == pytest.approx(vp)
    assert net.probability(inst) == pytest.approx(vp)


def test_pipeline_mpe_with_evidence():
    net = medical_network()
    pipe = WmcPipeline(net)
    inst, p = pipe.mpe({"T2": 1})
    _vinst, vp = mpe(net, {"T2": 1})
    assert p == pytest.approx(vp)
    assert inst["T2"] == 1


def test_pipeline_on_random_networks():
    rng = random.Random(42)
    for trial in range(5):
        net = random_network(5, rng=rng,
                             zero_fraction=0.4 if trial % 2 else 0.0)
        pipe = WmcPipeline(net)
        name = net.variables[rng.randrange(len(net.variables))]
        assert pipe.mar({name: 1}) == pytest.approx(mar(net, {name: 1}))
        marginals = pipe.marginals()
        for v in net.variables:
            assert marginals[v][1] == pytest.approx(mar(net, {v: 1}))


def test_pipeline_unknown_encoding():
    with pytest.raises(ValueError):
        WmcPipeline(chain_network(), encoding="spicy")


def test_arithmetic_circuit_derivatives():
    """dWMC/dW(l) equals the weighted count of models containing l,
    with W(l) factored out — checked by brute force."""
    from repro.logic import Cnf, iter_assignments
    cnf = Cnf([(1, 2), (-2, 3)], num_vars=3)
    root = compile_cnf(cnf)
    ac = ArithmeticCircuit(root, [1, 2, 3])
    weights = {1: 0.3, -1: 0.7, 2: 0.8, -2: 0.2, 3: 0.5, -3: 0.5}
    marginals = ac.literal_marginals(weights)
    for lit in marginals:
        brute = 0.0
        for a in iter_assignments([1, 2, 3]):
            if cnf.evaluate(a) and a[abs(lit)] == (lit > 0):
                w = 1.0
                for v, val in a.items():
                    w *= weights[v if val else -v]
                brute += w
        assert marginals[lit] == pytest.approx(brute), lit


def test_arithmetic_circuit_free_variables():
    from repro.logic import Cnf
    cnf = Cnf([(1,)], num_vars=3)  # vars 2, 3 unconstrained
    root = compile_cnf(cnf)
    ac = ArithmeticCircuit(root, [1, 2, 3])
    weights = {1: 0.5, -1: 0.5, 2: 0.25, -2: 0.75, 3: 0.5, -3: 0.5}
    assert ac.evaluate(weights) == pytest.approx(0.5)
    marginals = ac.literal_marginals(weights)
    assert marginals[2] == pytest.approx(0.5 * 0.25)
    assert marginals[-2] == pytest.approx(0.5 * 0.75)


def test_arithmetic_circuit_rejects_unlisted_vars():
    from repro.logic import Cnf
    root = compile_cnf(Cnf([(1, 2)]))
    with pytest.raises(ValueError):
        ArithmeticCircuit(root, [1])
