"""Tests for vtrees and their constructors."""

import random

import pytest

from repro.vtree import (Vtree, balanced_vtree, constrained_vtree,
                         left_linear_vtree, random_vtree,
                         right_linear_vtree, vtree_from_order)


def test_leaf():
    leaf = Vtree.leaf(3)
    assert leaf.is_leaf()
    assert leaf.variables == frozenset({3})
    with pytest.raises(ValueError):
        Vtree.leaf(0)


def test_internal_disjointness():
    a, b = Vtree.leaf(1), Vtree.leaf(2)
    v = Vtree.internal(a, b)
    assert v.variables == frozenset({1, 2})
    with pytest.raises(ValueError):
        Vtree.internal(Vtree.leaf(1), Vtree.leaf(1))


def test_no_node_reuse():
    a = Vtree.leaf(1)
    Vtree.internal(a, Vtree.leaf(2))
    with pytest.raises(ValueError):
        Vtree.internal(a, Vtree.leaf(3))


def test_balanced_structure():
    v = balanced_vtree([1, 2, 3, 4])
    assert v.variable_order() == [1, 2, 3, 4]
    assert v.node_count() == 7
    assert max(n.depth for n in v.nodes()) == 2


def test_right_linear():
    v = right_linear_vtree([1, 2, 3, 4])
    assert v.is_right_linear()
    assert v.variable_order() == [1, 2, 3, 4]
    assert not balanced_vtree([1, 2, 3, 4]).is_right_linear()


def test_left_linear():
    v = left_linear_vtree([1, 2, 3])
    assert v.variable_order() == [1, 2, 3]
    assert not v.is_right_linear()


def test_random_vtree_deterministic_with_seed():
    v1 = random_vtree([1, 2, 3, 4, 5], rng=random.Random(7))
    v2 = random_vtree([1, 2, 3, 4, 5], rng=random.Random(7))
    assert v1.variable_order() == v2.variable_order()


def test_constrained_vtree_shape():
    """Fig 10b: node u reachable by right children only, vars(u) = block."""
    v = constrained_vtree(spine_vars=[5, 6], block_vars=[1, 2, 3, 4])
    node = v
    while not node.is_leaf():
        if node.variables == frozenset({1, 2, 3, 4}):
            break
        node = node.right
    assert node.variables == frozenset({1, 2, 3, 4})
    # spine vars are left leaves along the way
    assert v.left.is_leaf() and v.left.var == 5
    assert v.right.left.is_leaf() and v.right.left.var == 6


def test_constrained_needs_spine():
    with pytest.raises(ValueError):
        constrained_vtree([], [1, 2])


def test_lca_and_ancestor():
    v = balanced_vtree([1, 2, 3, 4])
    l1 = v.find_leaf(1)
    l2 = v.find_leaf(2)
    l4 = v.find_leaf(4)
    assert l1.lca(l2) is v.left
    assert l1.lca(l4) is v
    assert v.is_ancestor_of(l1)
    assert not l1.is_ancestor_of(v)
    assert v.is_ancestor_of(v)


def test_positions_are_inorder():
    v = balanced_vtree([1, 2, 3, 4])
    positions = [n.position for n in v.nodes()]
    assert positions == sorted(positions)
    # leaves alternate with internals in a full binary tree in-order
    leaf_positions = [n.position for n in v.leaves()]
    assert leaf_positions == [0, 2, 4, 6]


def test_smallest_containing():
    v = balanced_vtree([1, 2, 3, 4])
    assert v.smallest_containing(frozenset({1})).var == 1
    assert v.smallest_containing(frozenset({1, 2})) is v.left
    assert v.smallest_containing(frozenset({2, 3})) is v
    with pytest.raises(ValueError):
        v.smallest_containing(frozenset({9}))


def test_find_leaf_missing():
    v = balanced_vtree([1, 2])
    with pytest.raises(KeyError):
        v.find_leaf(5)


def test_vtree_from_order_dispatch():
    assert vtree_from_order([1, 2, 3], "right-linear").is_right_linear()
    assert vtree_from_order([1, 2, 3], "balanced").variable_order() == \
        [1, 2, 3]
    with pytest.raises(ValueError):
        vtree_from_order([1], "spiral")


def test_duplicate_variables_rejected():
    with pytest.raises(ValueError):
        balanced_vtree([1, 1, 2])


def test_pretty_rendering():
    v = balanced_vtree([1, 2])
    text = v.pretty(lambda i: f"X{i}")
    assert "X1" in text and "X2" in text and "*" in text
