"""Unit tests for CNF, DIMACS i/o and cardinality helpers."""

import pytest

from repro.logic import (Cnf, at_least_one, at_most_one, exactly_one,
                         iter_assignments)


def test_basic_construction():
    cnf = Cnf([(1, -2), (2, 3)])
    assert cnf.num_vars == 3
    assert len(cnf) == 2
    assert cnf.variables() == frozenset({1, 2, 3})


def test_explicit_num_vars():
    cnf = Cnf([(1,)], num_vars=4)
    assert cnf.num_vars == 4
    assert cnf.model_count() == 8  # 2^3 free variables


def test_num_vars_too_small_rejected():
    with pytest.raises(ValueError):
        Cnf([(5,)], num_vars=2)


def test_bad_literal_rejected():
    with pytest.raises(ValueError):
        Cnf([(0,)])


def test_evaluate():
    cnf = Cnf([(1, 2), (-1, 2)])
    assert cnf.evaluate({1: True, 2: True})
    assert cnf.evaluate({1: False, 2: True})
    assert not cnf.evaluate({1: True, 2: False})


def test_empty_cnf_is_valid():
    cnf = Cnf([], num_vars=2)
    assert all(cnf.evaluate(a) for a in iter_assignments([1, 2]))
    assert cnf.model_count() == 4


def test_empty_clause_is_unsat():
    cnf = Cnf([()], num_vars=2)
    assert cnf.model_count() == 0


def test_condition():
    cnf = Cnf([(1, 2), (-2, 3)])
    conditioned = cnf.condition({2: True})
    # first clause satisfied; second reduces to (3)
    assert conditioned.clauses == ((3,),)
    conditioned = cnf.condition({1: False, 2: False})
    assert conditioned.clauses == ((),)  # empty clause: unsat


def test_extend():
    cnf = Cnf([(1,)])
    bigger = cnf.extend([(2, 3)])
    assert len(bigger) == 2
    assert bigger.num_vars == 3


def test_to_formula_equivalence():
    cnf = Cnf([(1, -2), (2, 3), (-1, -3)])
    formula = cnf.to_formula()
    for assignment in iter_assignments([1, 2, 3]):
        assert cnf.evaluate(assignment) == formula.evaluate(assignment)


def test_dimacs_roundtrip():
    cnf = Cnf([(1, -2), (2, 3)], num_vars=4)
    text = cnf.to_dimacs()
    back = Cnf.from_dimacs(text)
    assert back == cnf


def test_dimacs_parse_with_comments():
    text = "c a comment\np cnf 3 2\n1 -2 0\nc another\n2 3 0\n"
    cnf = Cnf.from_dimacs(text)
    assert cnf.clauses == ((1, -2), (2, 3))
    assert cnf.num_vars == 3


def test_dimacs_missing_header_rejected():
    with pytest.raises(ValueError):
        Cnf.from_dimacs("1 2 0\n")


def test_cardinality_exactly_one():
    cnf = Cnf(exactly_one([1, 2, 3]), num_vars=3)
    models = list(cnf.models())
    assert len(models) == 3
    for model in models:
        assert sum(model.values()) == 1


def test_cardinality_at_most_one():
    cnf = Cnf(at_most_one([1, 2, 3]), num_vars=3)
    assert cnf.model_count() == 4  # none or exactly one


def test_cardinality_at_least_one():
    cnf = Cnf(at_least_one([1, 2]), num_vars=2)
    assert cnf.model_count() == 3


def test_immutability():
    cnf = Cnf([(1,)])
    with pytest.raises(AttributeError):
        cnf.clauses = ()
