"""Tests for arbitrary-depth hierarchical maps (the Fig 18 shape)."""

import random

import pytest

from repro.condpsdd import NestedHierarchicalMap
from repro.spaces import grid_map


def westside_map():
    """A 3-level toy Westside: west = {northwest, southwest}, east."""
    gm = grid_map(3, 6)
    regions = {
        "west": {
            "northwest": [(r, c) for r in range(2) for c in range(3)],
            "southwest": [(2, c) for c in range(3)],
        },
        "east": [(r, c) for r in range(3) for c in range(3, 6)],
    }
    return gm, regions


def test_nested_construction_and_clusters():
    gm, regions = westside_map()
    hm = NestedHierarchicalMap(gm, regions, (0, 0), (2, 5))
    clusters = hm.network.dag.clusters
    assert "crossings:root" in clusters
    assert "crossings:west" in clusters
    assert any(name.startswith("inner:") for name in clusters)
    # nested crossings are conditioned on the root crossings
    assert "crossings:root" in hm.network.dag.parents("crossings:west")
    # leaf clusters inside west see both crossing levels
    leaf = next(c for c in clusters if c.startswith("inner:west/"))
    parents = hm.network.dag.parents(leaf)
    assert "crossings:root" in parents and "crossings:west" in parents


def test_nested_route_filter_is_stricter():
    gm, regions = westside_map()
    hm = NestedHierarchicalMap(gm, regions, (0, 0), (2, 5))
    assert 0 < len(hm.routes) < len(hm.all_routes)
    for route in hm.routes:
        assert hm.is_hierarchical_route(route)


def test_nested_distribution_is_exact():
    gm, regions = westside_map()
    hm = NestedHierarchicalMap(gm, regions, (0, 0), (2, 5))
    rng = random.Random(7)
    trajectories = [hm.routes[rng.randrange(len(hm.routes))]
                    for _ in range(300)]
    hm.fit(trajectories, alpha=0.05)
    total = sum(hm.route_probability(route) for route in hm.routes)
    assert total == pytest.approx(1.0)


def test_nested_samples_are_valid_routes():
    gm, regions = westside_map()
    hm = NestedHierarchicalMap(gm, regions, (0, 0), (2, 5))
    rng = random.Random(8)
    trajectories = [hm.routes[rng.randrange(len(hm.routes))]
                    for _ in range(150)]
    hm.fit(trajectories, alpha=0.05)
    for _ in range(100):
        assignment = hm.sample_route_assignment(rng)
        assert gm.is_route(assignment, (0, 0), (2, 5))


def test_nested_learns_frequencies():
    gm, regions = westside_map()
    hm = NestedHierarchicalMap(gm, regions, (0, 0), (2, 5))
    favourite, other = hm.routes[0], hm.routes[1]
    hm.fit([favourite] * 9 + [other])
    assert hm.route_probability(favourite) > hm.route_probability(other)


def test_nested_flat_spec_matches_two_level():
    """A nesting-free spec behaves like the two-level model."""
    from repro.condpsdd import HierarchicalMap
    gm = grid_map(3, 4)
    flat_regions = {"west": [(r, c) for r in range(3) for c in range(2)],
                    "east": [(r, c) for r in range(3)
                             for c in range(2, 4)]}
    nested = NestedHierarchicalMap(gm, flat_regions, (0, 0), (2, 3))
    two_level = HierarchicalMap(gm, flat_regions, (0, 0), (2, 3))
    assert sorted(map(tuple, nested.routes)) == \
        sorted(map(tuple, two_level.routes))
    rng = random.Random(3)
    trajectories = [nested.routes[rng.randrange(len(nested.routes))]
                    for _ in range(200)]
    nested.fit(trajectories, alpha=0.1)
    two_level.fit(trajectories, alpha=0.1)
    for route in nested.routes[:10]:
        assert nested.route_probability(route) == pytest.approx(
            two_level.route_probability(route))


def test_nested_validation():
    gm, regions = westside_map()
    with pytest.raises(ValueError):  # same leaf region endpoints
        NestedHierarchicalMap(gm, regions, (0, 0), (1, 2))
    with pytest.raises(ValueError):  # missing nodes
        NestedHierarchicalMap(gm, {"west": [(0, 0)]}, (0, 0), (2, 5))
    overlapping = {
        "west": {"a": [(r, c) for r in range(3) for c in range(3)],
                 "b": [(0, 0)]},
        "east": [(r, c) for r in range(3) for c in range(3, 6)]}
    with pytest.raises(ValueError):
        NestedHierarchicalMap(gm, overlapping, (0, 0), (2, 5))
