"""Tests for the certified circuit-optimization pass manager.

The heart of the suite is randomized certification: hundreds of small
(≤12-variable) circuits pushed through every pass and through random
pipelines, with the optimized circuit's counts and weighted counts
checked against brute-force truth tables (``Cnf.model_count``) and the
seed's legacy walkers — including the 2^k Tseitin correction, where
forgetting k functionally-determined auxiliaries divides the widened
count by exactly 2^k.
"""

import random

import pytest

from repro.compile.dnnf_compiler import DnnfCompiler
from repro.ir import facade
from repro.ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC, FLAG_SMOOTH
from repro.ir.kernel import ir_kernel
from repro.ir.lower import ir_to_nnf, nnf_to_ir
from repro.ir.passes import (COUNT_ONLY_PASSES, DEFAULT_PASSES,
                             PASS_NAMES, PassManager, certified_equivalent,
                             desmooth_ir, forget_vars, optimize_ir,
                             parse_passes, pipeline_signature, smooth_ir)
from repro.ir.store import ArtifactStore
from repro.logic.cnf import Cnf
from repro.logic.formula import And, Iff, Lit, Not, Or
from repro.logic.tseitin import tseitin
from repro.nnf import queries
from repro.analyze.gate import gate_scope


def random_cnf(rng, max_vars=8):
    n = rng.randint(3, max_vars)
    m = rng.randint(n, 3 * n)
    clauses = []
    for _ in range(m):
        width = rng.randint(1, 3)
        vs = rng.sample(range(1, n + 1), width)
        clauses.append(tuple(v if rng.random() < 0.5 else -v
                             for v in vs))
    return Cnf(clauses, num_vars=n)


def random_formula(rng, num_vars, depth=3):
    if depth == 0 or rng.random() < 0.3:
        lit = Lit(rng.randint(1, num_vars))
        return Not(lit) if rng.random() < 0.5 else lit
    op = rng.choice([And, Or, Iff])
    if op is Iff:
        return Iff(random_formula(rng, num_vars, depth - 1),
                   random_formula(rng, num_vars, depth - 1))
    children = [random_formula(rng, num_vars, depth - 1)
                for _ in range(rng.randint(2, 3))]
    return op(*children)


def random_weights(rng, variables):
    weights = {}
    for v in variables:
        weights[v] = rng.uniform(0.1, 1.0)
        weights[-v] = rng.uniform(0.1, 1.0)
    return weights


def pruned_formula():
    """A formula whose Tseitin encoding is known to shrink under the
    default pipeline (31 -> 19 nodes, auxiliaries 5..8 forgotten)."""
    return Or(And(Lit(1), Lit(2)), And(Lit(3), Not(Lit(1))),
              And(Lit(2), Lit(4)))


def compile_ir(cnf):
    root = DnnfCompiler().compile(cnf)
    return nnf_to_ir(root,
                     flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)


def formula_count(formula, num_vars):
    """Brute-force model count of ``formula`` over vars 1..num_vars.

    Equal to the Tseitin CNF's model count over *all* its variables
    (auxiliaries are functionally determined), but 2^|aux| cheaper to
    enumerate.
    """
    from repro.logic.formula import iter_assignments
    return sum(1 for asg in iter_assignments(range(1, num_vars + 1))
               if formula.evaluate(asg))


def corrected_count(ir, num_vars, forgotten):
    """The optimized circuit's count widened to ``num_vars`` with the
    forgotten auxiliaries excluded (the production 2^k correction)."""
    with gate_scope("trust"):
        raw = ir_kernel(ir).model_count()
    absent = (set(range(1, num_vars + 1)) - set(ir.variables())
              - set(forgotten))
    return raw << len(absent)


# -- randomized certification: every pass, plain CNFs ------------------------

def test_every_pass_preserves_counts_on_random_cnfs():
    """200 random CNF circuits x every registered pass: the corrected
    model count equals brute-force enumeration."""
    rng = random.Random(2024)
    for trial in range(200):
        cnf = random_cnf(rng)
        ir = compile_ir(cnf)
        truth = cnf.model_count()
        name = PASS_NAMES[trial % len(PASS_NAMES)]
        result = optimize_ir(ir, (name,), seed=trial)
        assert corrected_count(result.ir, cnf.num_vars,
                               result.forgotten) == truth
        assert result.after_nodes <= result.before_nodes or \
            name == "smooth"


def test_random_pipelines_match_truth_and_legacy_walkers():
    """150 random CNFs x random pipelines: count vs brute force and
    WMC vs the legacy recursive walker."""
    rng = random.Random(77)
    for trial in range(150):
        cnf = random_cnf(rng)
        root = DnnfCompiler().compile(cnf)
        ir = nnf_to_ir(root,
                       flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
        k = rng.randint(1, len(PASS_NAMES))
        passes = tuple(rng.sample(list(PASS_NAMES), k))
        result = optimize_ir(ir, passes, seed=trial)
        assert corrected_count(result.ir, cnf.num_vars,
                               result.forgotten) == cnf.model_count()
        variables = range(1, cnf.num_vars + 1)
        weights = random_weights(rng, variables)
        legacy = queries.weighted_model_count(root, weights, variables)
        out = facade.query_ir(result.ir, "wmc",
                              num_vars=cnf.num_vars, weights=weights,
                              forgotten=result.forgotten)
        assert out["result"] == pytest.approx(legacy)


# -- Tseitin pruning and the 2^k correction ----------------------------------

def test_tseitin_prune_2k_correction():
    """150 random Tseitin encodings: pruning forgets exactly the k
    recorded auxiliaries, the corrected count equals the formula's
    model count, and the *naive* widened count is 2^k times it."""
    rng = random.Random(4242)
    pruned_hits = 0
    for trial in range(150):
        num_vars = rng.randint(3, 6)
        formula = random_formula(rng, num_vars)
        cnf, _ = tseitin(formula, num_vars=num_vars)
        truth = formula_count(formula, num_vars)
        ir = compile_ir(cnf)
        result = optimize_ir(ir, DEFAULT_PASSES, aux_vars=cnf.aux_vars,
                             seed=trial)
        assert result.forgotten <= cnf.aux_vars
        assert corrected_count(result.ir, cnf.num_vars,
                               result.forgotten) == truth
        if result.forgotten:
            pruned_hits += 1
            k = len(result.forgotten)
            with gate_scope("trust"):
                raw = ir_kernel(result.ir).model_count()
            naive_absent = (set(range(1, cnf.num_vars + 1))
                            - set(result.ir.variables()))
            naive = raw << len(naive_absent)
            assert naive == truth << k
    assert pruned_hits > 50  # pruning actually fires


def test_tseitin_prune_shrinks_circuits():
    rng = random.Random(99)
    total_before = total_after = 0
    for trial in range(20):
        formula = random_formula(rng, 5, depth=4)
        cnf, _ = tseitin(formula, num_vars=5)
        ir = compile_ir(cnf)
        result = optimize_ir(ir, aux_vars=cnf.aux_vars, seed=trial)
        total_before += result.before_nodes
        total_after += result.after_nodes
    assert total_after < total_before


# -- smoothing round-trips ---------------------------------------------------

def test_desmooth_smooth_roundtrip():
    rng = random.Random(5)
    for trial in range(50):
        cnf = random_cnf(rng, max_vars=6)
        ir = compile_ir(cnf)
        smoothed = smooth_ir(ir)
        assert smoothed.has_flag(FLAG_SMOOTH)
        r1 = optimize_ir(smoothed, ("desmooth",), seed=trial)
        r2 = optimize_ir(r1.ir, ("smooth",), seed=trial)
        truth = cnf.model_count()
        for candidate in (smoothed, r1.ir, r2.ir):
            assert corrected_count(candidate, cnf.num_vars,
                                   frozenset()) == truth
        assert r2.ir.has_flag(FLAG_SMOOTH) or not r1.changed


def test_count_only_pipeline_desmooths():
    f = Or(And(Lit(1), Lit(2)), And(Lit(3), Not(Lit(1))))
    cnf, _ = tseitin(f, num_vars=3)
    ir = smooth_ir(compile_ir(cnf))
    result = optimize_ir(ir, COUNT_ONLY_PASSES, aux_vars=cnf.aux_vars)
    assert corrected_count(result.ir, cnf.num_vars,
                           result.forgotten) == formula_count(f, 3)
    assert result.after_nodes <= ir.n


# -- the certification gate itself -------------------------------------------

def test_gate_rejects_unsound_forgetting():
    """Forgetting a non-auxiliary variable changes the count; the
    certification gate must say so."""
    cnf = Cnf([(1, 2), (-1, 3)], num_vars=3)
    ir = compile_ir(cnf)
    candidate, dropped = forget_vars(ir, frozenset([1]))
    reason = certified_equivalent(ir, candidate)
    assert reason is not None


def test_gate_accepts_identity():
    cnf = Cnf([(1, 2), (2, 3)], num_vars=3)
    ir = compile_ir(cnf)
    assert certified_equivalent(ir, ir) is None


def test_pass_manager_rejections_keep_original():
    """A rewrite the gate rejects (here: a forced bogus forget via the
    raw pass function) never replaces the circuit inside the manager;
    statuses record what happened."""
    cnf = Cnf([(1, 2), (-2, 3), (3, 1)], num_vars=3)
    ir = compile_ir(cnf)
    manager = PassManager(DEFAULT_PASSES, aux_vars=())
    result = manager.run(ir)
    # no aux declared: tseitin-prune must not forget anything
    assert result.forgotten == frozenset()
    assert corrected_count(result.ir, cnf.num_vars,
                           frozenset()) == cnf.model_count()
    assert {r.status for r in result.reports} <= {
        "applied", "no-change", "not-smaller", "rejected", "budget"}


def test_parse_passes_and_signature():
    assert parse_passes(None) == DEFAULT_PASSES
    assert parse_passes("cse, const-fold") == ("cse", "const-fold")
    with pytest.raises(ValueError):
        parse_passes("not-a-pass")
    sig = pipeline_signature(DEFAULT_PASSES)
    assert sig == pipeline_signature(list(DEFAULT_PASSES))
    assert sig != pipeline_signature(("cse",))


def test_param_circuits_are_not_optimized():
    from repro.ir.core import IrBuilder
    builder = IrBuilder()
    p = builder.param(0)
    lit = builder.literal(1)
    root = builder.raw_and((p, lit))
    ir = builder.finish(root)
    result = PassManager().run(ir)
    assert result.ir is ir
    assert not result.changed


# -- budget degradation ------------------------------------------------------

def test_budget_exhaustion_degrades_not_errors():
    from repro.limits.budget import Budget
    formula = pruned_formula()
    cnf, _ = tseitin(formula, num_vars=4)
    ir = compile_ir(cnf)
    budget = Budget(max_nodes=1)  # expires on the first pass
    result = PassManager(aux_vars=cnf.aux_vars).run(ir, budget=budget)
    assert result.budget_hit
    assert corrected_count(result.ir, cnf.num_vars,
                           result.forgotten) == formula_count(formula, 4)


# -- store variants and gc ---------------------------------------------------

def test_store_variant_roundtrip_and_smallest(tmp_path):
    formula = pruned_formula()
    cnf, _ = tseitin(formula, num_vars=4)
    store = ArtifactStore(str(tmp_path))
    ticket = facade.compile_ticket(cnf.to_dimacs())
    facade.compile_to_store(ticket, store)
    report = facade.optimize_artifact(store, ticket.key,
                                      aux_vars=cnf.aux_vars)
    assert report is not None and not report["cached"]
    again = facade.optimize_artifact(store, ticket.key,
                                     aux_vars=cnf.aux_vars)
    assert again["cached"]
    assert again["after_nodes"] == report["after_nodes"]
    smallest = store.load_smallest(ticket.key)
    assert smallest is not None
    ir, info = smallest
    if report["after_nodes"] < report["before_nodes"]:
        assert ir.n == report["after_nodes"]
        assert info["signature"] == report["signature"]
    # the served answers agree between base and optimized variant
    base = facade.query_artifact(store, ticket.key, "count",
                                 num_vars=ticket.num_vars)
    opt = facade.query_artifact(store, ticket.key, "count",
                                num_vars=ticket.num_vars,
                                optimize=True)
    assert base["result"] == opt["result"] == formula_count(formula, 4)


def test_store_gc_reaps_orphans_and_spares_live_files(tmp_path):
    cnf = Cnf([(1, 2), (-1, 3)], num_vars=3)
    store = ArtifactStore(str(tmp_path))
    ticket = facade.compile_ticket(cnf.to_dimacs())
    facade.compile_to_store(ticket, store)
    facade.optimize_artifact(store, ticket.key)
    # plant orphans in a sharded location the scanner visits
    orphan_csr = store.path_for("f" * 64, "csr")
    orphan_csr.parent.mkdir(parents=True, exist_ok=True)
    orphan_csr.write_bytes(b"junk")
    tmp_file = store.path_for("a" * 64, "nnf.tmp")
    tmp_file.parent.mkdir(parents=True, exist_ok=True)
    tmp_file.write_text("partial")
    now = 2_000_000_000.0
    dry = store.gc(now=now, dry_run=True)
    real = store.gc(now=now)
    assert dry["removed"] == real["removed"] >= 2
    assert dry["reclaimed_bytes"] == real["reclaimed_bytes"] > 0
    assert not orphan_csr.exists() and not tmp_file.exists()
    # live base + variant survive and still answer
    assert store.load_nnf(ticket.key) is not None
    assert facade.query_artifact(store, ticket.key, "count",
                                 num_vars=ticket.num_vars,
                                 optimize=True) is not None


# -- aux-variable metadata ---------------------------------------------------

def test_tseitin_records_aux_vars():
    f = Or(And(Lit(1), Lit(2)), Lit(3))
    cnf, root = tseitin(f, num_vars=3)
    assert cnf.aux_vars == frozenset(range(4, cnf.num_vars + 1))
    assert cnf.original_vars() == frozenset([1, 2, 3])
    assert abs(root) in cnf.aux_vars


def test_aux_vars_roundtrip_dimacs():
    cnf = Cnf([(1, 4), (-4, 2)], num_vars=4, aux_vars=[4])
    text = cnf.to_dimacs()
    assert "c p show 1 2 3 0" in text
    back = Cnf.from_dimacs(text)
    assert back.aux_vars == frozenset([4])
    assert back == cnf and hash(back) == hash(cnf)
    plain = Cnf([(1, 4), (-4, 2)], num_vars=4)
    assert plain != cnf  # metadata forks equality (and content keys)
    assert "show" not in plain.to_dimacs()


def test_aux_vars_survive_condition_and_extend():
    cnf = Cnf([(1, 4), (-4, 2)], num_vars=4, aux_vars=[4])
    assert cnf.condition({1: True}).aux_vars == frozenset([4])
    assert cnf.extend([(3,)]).aux_vars == frozenset([4])
    with pytest.raises(ValueError):
        Cnf([(1,)], num_vars=1, aux_vars=[5])  # aux outside 1..n


# -- compile-layer integration -----------------------------------------------

def test_dnnf_compiler_optimize_hook(tmp_path):
    formula = pruned_formula()
    cnf, _ = tseitin(formula, num_vars=4)
    store = ArtifactStore(str(tmp_path))
    cold = DnnfCompiler(store=store, optimize=True)
    root_cold = cold.compile(cnf)
    assert cold.optimize_report is not None
    warm = DnnfCompiler(store=store, optimize=True)
    root_warm = warm.compile(cnf)
    assert warm.optimize_report.get("cached") is True
    assert root_cold.node_count() == root_warm.node_count()
    ir = nnf_to_ir(root_warm,
                   flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
    assert corrected_count(ir, cnf.num_vars, warm.forgotten_vars) == \
        formula_count(formula, 4)


def test_restarts_minimize():
    from repro.limits.restarts import compile_with_restarts
    formula = pruned_formula()
    cnf, _ = tseitin(formula, num_vars=4)
    plain = compile_with_restarts(cnf, attempts=3, keep_smallest=True)
    result = compile_with_restarts(cnf, attempts=3, minimize=True)
    assert result.optimize is not None
    assert result.size <= plain.size
    ir = nnf_to_ir(result.root,
                   flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
    assert corrected_count(ir, cnf.num_vars, result.forgotten_vars) \
        == formula_count(formula, 4)


def test_sdd_minimize_cross_checks():
    from repro.ir.lower import sdd_to_ir
    from repro.sdd.compiler import compile_cnf_sdd
    rng = random.Random(31)
    cnf = random_cnf(rng, max_vars=6)
    base, _ = compile_cnf_sdd(cnf, store=None)
    mini, _ = compile_cnf_sdd(cnf, store=None, minimize=True)
    with gate_scope("trust"):
        assert ir_kernel(sdd_to_ir(mini)).model_count() == \
            ir_kernel(sdd_to_ir(base)).model_count()
    assert sdd_to_ir(mini).n <= sdd_to_ir(base).n


# -- serve-layer threading ---------------------------------------------------

def test_protocol_optimize_flag():
    from repro.serve.protocol import (ProtocolError,
                                      parse_compile_request,
                                      parse_query_request)
    req = parse_compile_request(
        b'{"dimacs": "p cnf 1 1\\n1 0\\n", "optimize": true}')
    assert req.optimize is True
    req = parse_query_request(b'{"key": "k", "optimize": true}')
    assert req.optimize is True
    assert parse_query_request(b'{"key": "k"}').optimize is False
    with pytest.raises(ProtocolError):
        parse_compile_request(
            b'{"dimacs": "p cnf 1 1\\n1 0\\n", "optimize": "yes"}')
    with pytest.raises(ProtocolError):
        parse_query_request(b'{"key": "k", "optimize": 1}')


def test_worker_pool_optimized_query(tmp_path):
    from repro.serve.pool import init_worker, run_compile, run_query
    formula = pruned_formula()
    cnf, _ = tseitin(formula, num_vars=4)
    init_worker(str(tmp_path))
    ticket = facade.compile_ticket(cnf.to_dimacs())
    payload = ticket.as_wire()
    payload["optimize"] = True
    payload["deadline_s"] = 30.0
    reply = run_compile(payload)
    assert reply["status"] == "ok"
    base = run_query({"key": ticket.key, "query": "count",
                      "num_vars": ticket.num_vars})
    opt = run_query({"key": ticket.key, "query": "count",
                     "num_vars": ticket.num_vars, "optimize": True})
    assert base["status"] == opt["status"] == "ok"
    assert base["result"] == opt["result"] == str(formula_count(formula, 4))


# -- CLI ---------------------------------------------------------------------

@pytest.fixture
def tseitin_cnf_file(tmp_path):
    formula = pruned_formula()
    cnf, _ = tseitin(formula, num_vars=4)
    path = tmp_path / "tseitin.cnf"
    path.write_text(cnf.to_dimacs())
    return str(path), formula_count(formula, 4)


def test_cli_optimize_command(tseitin_cnf_file, tmp_path, capsys):
    from repro.cli import main
    path, _ = tseitin_cnf_file
    out_path = tmp_path / "out.nnf"
    assert main(["optimize", path, "-o", str(out_path),
                 "--cache-dir", str(tmp_path / "store")]) == 0
    out = capsys.readouterr().out
    assert "c optimize passes" in out
    assert out_path.exists()
    from repro.ir.serialize import ir_from_nnf_text
    ir_from_nnf_text(out_path.read_text())  # parses back


def test_cli_query_optimize_matches_baseline(tseitin_cnf_file,
                                             tmp_path, capsys):
    from repro.cli import main
    path, expected = tseitin_cnf_file
    store = str(tmp_path / "store")
    assert main(["query", path, "--query", "count",
                 "--cache-dir", store]) == 0
    baseline = capsys.readouterr().out
    assert main(["query", path, "--query", "count", "--optimize",
                 "--cache-dir", store]) == 0
    optimized = capsys.readouterr().out
    base_mc = [l for l in baseline.splitlines()
               if l.startswith("s mc")]
    opt_mc = [l for l in optimized.splitlines()
              if l.startswith("s mc")]
    assert base_mc == opt_mc
    assert f"s mc {expected}" in optimized


def test_cli_compile_optimize(tseitin_cnf_file, tmp_path, capsys):
    from repro.cli import main
    path, _ = tseitin_cnf_file
    out_path = tmp_path / "opt.nnf"
    assert main(["compile", path, "--optimize", "-o", str(out_path),
                 "--cache-dir", str(tmp_path / "store")]) == 0
    out = capsys.readouterr().out
    assert "c optimize nodes" in out


def test_cli_cache_gc(tmp_path, capsys):
    from repro.cli import main
    store_dir = tmp_path / "store"
    store = ArtifactStore(str(store_dir))
    orphan = store.path_for("b" * 64, "csr")
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_bytes(b"junk")
    assert main(["cache", "gc", "--cache-dir", str(store_dir),
                 "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "c gc removed 1 (dry-run)" in out
    assert orphan.exists()
    assert main(["cache", "gc", "--cache-dir", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "c gc removed 1" in out
    assert not orphan.exists()
