"""The circuit sanitizer (`repro.analyze`): verifiers, certificates,
the query gate, store certification, and the `repro check` CLI.

* every verifier is cross-checked against brute-force truth-table
  semantics on hundreds of random circuits (≤12 variables);
* the legacy `is_*` checkers and the certified verifiers agree on 500
  random circuits (the Fig 12 taxonomy routes through the verifiers);
* witnesses are minimal — the *first* offending node in topological
  order, with a concrete overlapping model for determinism;
* the gate's trust / strict / repair modes, including the exactness
  of the smoothing repair;
* serve-time certification in the artifact store: warm cert hits,
  re-verification, and quarantine of parseable-but-wrong artifacts
  produced by `mutate_artifact`;
* `repro check` exit codes (0 certified / 4 violation).
"""

import random
from itertools import product

import pytest

from repro.analyze import (FALSIFIED, VERIFIED, PropertyViolation,
                           certify, check_kernel, evaluate_node, gate_scope,
                           implied_literals, set_gate_mode, smooth_ir,
                           verify_decomposable, verify_deterministic,
                           verify_obdd, verify_obdd_ir, verify_smooth,
                           verify_wellformed)
from repro.cli import main
from repro.ir import (FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC, FLAG_SMOOTH,
                      ArtifactStore, IrBuilder, ir_kernel, nnf_to_ir)
from repro.ir.serialize import ir_to_nnf_text
from repro.limits.faults import mutate_artifact
from repro.nnf.node import NnfManager
from repro.nnf.properties import (check_properties, is_decomposable,
                                  is_deterministic, is_smooth)
from repro.obdd.manager import ObddManager


# -- random circuits ---------------------------------------------------------

def random_nnf(rng, num_vars):
    """A random NNF DAG mixing and/or gates over literal leaves."""
    man = NnfManager()
    pool = [man.literal(v * s)
            for v in range(1, num_vars + 1) for s in (1, -1)]
    for _ in range(rng.randint(2, 8)):
        kids = rng.sample(pool, rng.randint(2, 3))
        node = (man.conjoin(*kids) if rng.random() < 0.5
                else man.disjoin(*kids))
        pool.append(node)
    return pool[-1]


def brute_force_properties(ir):
    """Truth-table re-derivation of the three properties, straight
    from their definitions — no shared code with the verifiers."""
    varsets = ir.varsets()
    children = ir.child_lists()
    decomposable = smooth = deterministic = True
    variables = sorted(ir.variables())
    for i in range(ir.n):
        kids = children[i]
        if ir.kinds[i] == 3:  # and
            for a in range(len(kids)):
                for b in range(a + 1, len(kids)):
                    if varsets[kids[a]] & varsets[kids[b]]:
                        decomposable = False
        elif ir.kinds[i] == 4:  # or
            for c in kids:
                if varsets[c] != varsets[i]:
                    smooth = False
            for bits in product((False, True), repeat=len(variables)):
                assignment = dict(zip(variables, bits))
                high = sum(evaluate_node(ir, c, assignment) for c in kids)
                if high > 1:
                    deterministic = False
                    break
    return decomposable, deterministic, smooth


# -- verifiers vs brute force ------------------------------------------------

def test_verifiers_vs_bruteforce_random():
    rng = random.Random(7)
    for trial in range(60):
        root = random_nnf(rng, rng.randint(3, 6))
        ir = nnf_to_ir(root, flags=0)
        assert verify_wellformed(ir).ok
        dec, det, smo = brute_force_properties(ir)
        assert (verify_decomposable(ir).status == VERIFIED) == dec
        assert (verify_smooth(ir).status == VERIFIED) == smo
        report = verify_deterministic(ir)
        assert report.status in (VERIFIED, FALSIFIED)
        assert (report.status == VERIFIED) == det
        if report.status == FALSIFIED and report.witness.prop == "deterministic":
            # the witness model really does satisfy two children at once
            detail = dict(report.witness.detail)
            model = {abs(l): l > 0 for l in detail["model"]}
            a, b = detail["children"]
            assert evaluate_node(ir, a, model)
            assert evaluate_node(ir, b, model)


def test_verifiers_vs_bruteforce_wider_circuits():
    rng = random.Random(23)
    for trial in range(10):
        root = random_nnf(rng, 12)
        ir = nnf_to_ir(root, flags=0)
        dec, det, smo = brute_force_properties(ir)
        assert (verify_decomposable(ir).status == VERIFIED) == dec
        assert (verify_smooth(ir).status == VERIFIED) == smo
        report = verify_deterministic(ir, max_vars=12)
        assert (report.status == VERIFIED) == det


def test_legacy_checkers_agree_on_500_random_circuits():
    rng = random.Random(2020)
    checked = 0
    for trial in range(500):
        root = random_nnf(rng, rng.randint(3, 7))
        ir = nnf_to_ir(root, flags=0)
        assert (verify_decomposable(ir).status == VERIFIED) == \
            is_decomposable(root)
        assert (verify_smooth(ir).status == VERIFIED) == is_smooth(root)
        report = verify_deterministic(ir)
        assert (report.status == VERIFIED) == is_deterministic(root)
        checked += 1
    assert checked == 500


def test_check_properties_routes_through_verifiers():
    rng = random.Random(11)
    for trial in range(30):
        root = random_nnf(rng, 5)
        props = check_properties(root)
        assert props["decomposable"] == is_decomposable(root)
        assert props["smooth"] == is_smooth(root)
        assert props["deterministic"] == is_deterministic(root)


def test_determinism_beyond_legacy_enumeration_bound():
    """The seed's global-enumeration check refuses wide circuits; the
    mutual-exclusivity certificate settles them in linear time."""
    man = NnfManager()
    cur = man.literal(1)
    for v in range(2, 31):  # 30 variables, far over the seed's 22
        cur = man.disjoin(man.conjoin(man.literal(v), cur),
                          man.conjoin(man.literal(-v), cur))
    with pytest.raises(ValueError):
        is_deterministic(cur)
    ir = nnf_to_ir(cur, flags=0)
    report = verify_deterministic(ir)
    assert report.status == VERIFIED
    assert report.method == "certificate"
    assert check_properties(cur)["deterministic"] is True


def test_mutual_exclusion_certificate_contents():
    b = IrBuilder()
    a = b.raw_and((b.literal(1), b.literal(2)))
    ir = b.finish(b.raw_or((a, b.literal(-1))))
    implied = implied_literals(ir)
    root = ir.root
    # and-gate implies both its literals; the or-root implies nothing
    assert implied[a] == frozenset({1, 2})
    assert implied[root] == frozenset()


# -- witnesses ---------------------------------------------------------------

def nonsmooth_ddnnf():
    """(x1 ∧ x2) ∨ ¬x1 — decomposable, deterministic, NOT smooth."""
    b = IrBuilder()
    a = b.raw_and((b.literal(1), b.literal(2)))
    return b.finish(b.raw_or((a, b.literal(-1))))


def test_smooth_witness_names_first_offending_gate():
    b = IrBuilder()
    a = b.raw_and((b.literal(1), b.literal(2)))
    or1 = b.raw_or((a, b.literal(-1)))            # non-smooth (misses 2)
    a2 = b.raw_and((or1, b.literal(3)))
    or2 = b.raw_or((a2, b.literal(4)))            # non-smooth too
    ir = b.finish(or2)
    report = verify_smooth(ir)
    assert report.status == FALSIFIED
    assert report.witness.node == or1              # lowest in topo order
    detail = dict(report.witness.detail)
    assert set(detail["missing_vars"]) == {2}


def test_determinism_witness_is_a_real_overlap():
    b = IrBuilder()
    l1 = b.literal(1)
    ir = b.finish(b.raw_or((l1, b.raw_and((l1, b.literal(2))))))
    report = verify_deterministic(ir)
    assert report.status == FALSIFIED
    model = {abs(l): l > 0
             for l in dict(report.witness.detail)["model"]}
    a, c = dict(report.witness.detail)["children"]
    assert evaluate_node(ir, a, model) and evaluate_node(ir, c, model)


def test_decomposability_witness_names_shared_vars():
    b = IrBuilder()
    ir = b.finish(b.raw_and((b.literal(1), b.literal(-1))))
    report = verify_decomposable(ir)
    assert report.status == FALSIFIED
    assert set(dict(report.witness.detail)["shared_vars"]) == {1}


# -- the query gate ----------------------------------------------------------

def test_gate_trust_is_seed_behavior():
    kernel = ir_kernel(nonsmooth_ddnnf())
    assert kernel.model_count() == 3  # gap-scaled, exact in trust mode


def test_gate_strict_raises_before_any_count():
    kernel = ir_kernel(nonsmooth_ddnnf())
    with gate_scope("strict"):
        with pytest.raises(PropertyViolation) as exc:
            kernel.model_count()
    assert exc.value.query == "count"
    assert any(w.prop == "smooth" for w in exc.value.witnesses)
    # scope restored: trust again
    assert kernel.model_count() == 3


def test_gate_repair_smooths_and_matches_exact_results():
    ir = nonsmooth_ddnnf()
    kernel = ir_kernel(ir)
    with gate_scope("repair"):
        assert kernel.model_count() == 3
        assert kernel.marginals() == {1: 1, 2: 2, -1: 2, -2: 1}
        assert kernel.wmc({1: 0.5, -1: 0.5, 2: 0.5, -2: 0.5}) == \
            pytest.approx(0.75)
    twin = smooth_ir(ir)
    assert certify(twin, flags=FLAG_SMOOTH).status("smooth") == VERIFIED
    assert ir_kernel(twin).model_count() == 3


def test_gate_repair_cannot_fix_nondeterminism():
    b = IrBuilder()
    l1 = b.literal(1)
    ir = b.finish(b.raw_or((l1, b.raw_and((l1, b.literal(2))))))
    with gate_scope("repair"):
        with pytest.raises(PropertyViolation):
            ir_kernel(ir).model_count()


def test_gate_derivatives_not_repairable():
    kernel = ir_kernel(nonsmooth_ddnnf())
    with gate_scope("repair"):
        with pytest.raises(PropertyViolation):
            kernel.derivatives()


def test_gate_mode_setter_restores():
    previous = set_gate_mode("strict")
    try:
        with pytest.raises(PropertyViolation):
            ir_kernel(nonsmooth_ddnnf()).model_count()
    finally:
        set_gate_mode(previous)


def test_check_kernel_passthrough_when_certified():
    b = IrBuilder()
    a1 = b.raw_and((b.literal(1), b.literal(2)))
    a2 = b.raw_and((b.literal(-1), b.raw_or((b.literal(2), b.literal(-2)))))
    ir = b.finish(b.raw_or((a1, a2)))
    kernel = ir_kernel(ir)
    with gate_scope("strict"):
        assert check_kernel(kernel, "count") is kernel
        assert kernel.model_count() == 3


# -- store certification -----------------------------------------------------

def smooth_claimed_ir():
    b = IrBuilder()
    a1 = b.raw_and((b.literal(1), b.literal(2)))
    a2 = b.raw_and((b.literal(-1), b.raw_or((b.literal(2), b.literal(-2)))))
    root = b.raw_or((a1, a2))
    return b.finish(root, flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC |
                    FLAG_SMOOTH)


def test_store_warm_load_is_a_cert_hit(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    store.save_nnf("k", smooth_claimed_ir())
    warm = ArtifactStore(tmp_path / "cache")
    loaded = warm.load_nnf("k")
    assert loaded is not None
    assert warm.stats["artifact_cert_hits"] == 1
    assert warm.stats["artifact_verified"] == 0


def test_store_recertifies_when_cert_missing(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    store.save_nnf("k", smooth_claimed_ir())
    store.path_for("k", "cert").unlink()
    warm = ArtifactStore(tmp_path / "cache")
    assert warm.load_nnf("k") is not None
    assert warm.stats["artifact_verified"] == 1
    # the re-verification wrote a fresh cert: next load is a hit
    warm2 = ArtifactStore(tmp_path / "cache")
    assert warm2.load_nnf("k") is not None
    assert warm2.stats["artifact_cert_hits"] == 1


def test_mutate_flip_literal_is_quarantined(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    b = IrBuilder()
    a1 = b.raw_and((b.literal(1), b.literal(2)))
    a2 = b.raw_and((b.literal(-1), b.literal(3)))
    ir = b.finish(b.raw_or((a1, a2)),
                  flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
    store.save_nnf("k", ir)
    # negating the third literal line (-1 → 1) makes the or-arms overlap
    mutate_artifact(store, "k", mode="flip-literal", index=2)
    victim = ArtifactStore(tmp_path / "cache")
    claimed = FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC
    assert victim.load_nnf("k", flags=claimed) is None
    assert victim.stats["artifact_cert_fail"] == 1
    assert list((tmp_path / "cache").rglob("*.corrupt"))


def test_mutate_drop_smooth_is_quarantined(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    store.save_nnf("k", smooth_claimed_ir())
    mutate_artifact(store, "k", mode="drop-smooth")
    victim = ArtifactStore(tmp_path / "cache")
    claimed = FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH
    assert victim.load_nnf("k", flags=claimed) is None
    assert victim.stats["artifact_cert_fail"] == 1


def test_store_verify_opt_out(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    store.save_nnf("k", smooth_claimed_ir())
    mutate_artifact(store, "k", mode="drop-smooth")
    trusting = ArtifactStore(tmp_path / "cache", verify=False)
    claimed = FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH
    assert trusting.load_nnf("k", flags=claimed) is not None  # seed behavior


# -- OBDD verification -------------------------------------------------------

def test_verify_obdd_live_dag():
    man = ObddManager([1, 2, 3])
    t, f = man.terminal(True), man.terminal(False)
    good = man.make(1, man.make(2, f, t), t)
    assert verify_obdd(good).status == VERIFIED

    redundant = man._fresh(2, t, t)  # low is high: unreduced
    report = verify_obdd(redundant)
    assert report.status == FALSIFIED
    assert "redundant" in report.witness.message

    inner = man.make(1, f, t)
    disordered = man._fresh(2, inner, t)  # var 1 tested below var 2
    report = verify_obdd(disordered)
    assert report.status == FALSIFIED
    assert dict(report.witness.detail)["child_var"] == 1

    twin_a = man._fresh(2, f, t)
    twin_b = man._fresh(2, f, t)
    duplicated = man._fresh(1, twin_a, twin_b)
    assert verify_obdd(duplicated).status == FALSIFIED


def test_verify_obdd_ir_order():
    b = IrBuilder()
    arm_lo = b.literal(3)
    arm_hi = b.literal(-3)
    d1 = b.raw_or((b.raw_and((b.literal(-1), arm_lo)),
                   b.raw_and((b.literal(1), arm_hi))))
    d2 = b.raw_or((b.raw_and((b.literal(-2), d1)),
                   b.raw_and((b.literal(2), arm_lo))))
    ir = b.finish(d2)
    # no explicit order: the observed above/below constraints (2 above
    # 1 above 3) are acyclic, so some order exists
    assert verify_obdd_ir(ir).status == VERIFIED
    # the natural order is violated: var 2 is decided above var 1
    report = verify_obdd_ir(ir, order=[1, 2, 3])
    assert report.status == FALSIFIED
    detail = dict(report.witness.detail)
    assert detail["var"] == 2 and detail["deeper_var"] == 1


# -- repro check / repro query CLI -------------------------------------------

def test_cli_check_certified_exit_0(tmp_path, capsys):
    path = tmp_path / "good.nnf"
    path.write_text(ir_to_nnf_text(smooth_claimed_ir()))
    assert main(["check", str(path)]) == 0
    out = capsys.readouterr().out
    assert "s CERTIFIED" in out


def test_cli_check_nonsmooth_exit_4_with_witness(tmp_path, capsys):
    path = tmp_path / "nonsmooth.nnf"
    path.write_text(ir_to_nnf_text(nonsmooth_ddnnf()))
    assert main(["check", str(path)]) == 4
    out = capsys.readouterr().out
    assert "c witness smooth" in out
    assert "s VIOLATION" in out
    # restricting the expectation to what holds passes
    assert main(["check", str(path),
                 "--expect", "decomposable,deterministic"]) == 0


def test_cli_check_nondeterministic_exit_4(tmp_path, capsys):
    b = IrBuilder()
    l1 = b.literal(1)
    ir = b.finish(b.raw_or((l1, b.raw_and((l1, b.literal(2))))))
    path = tmp_path / "nondet.nnf"
    path.write_text(ir_to_nnf_text(ir))
    assert main(["check", str(path), "--expect", "deterministic"]) == 4
    assert "c witness deterministic" in capsys.readouterr().out


def test_cli_check_obdd_order_exit_4(tmp_path, capsys):
    b = IrBuilder()
    d1 = b.raw_or((b.raw_and((b.literal(-1), b.literal(3))),
                   b.raw_and((b.literal(1), b.literal(-3)))))
    d2 = b.raw_or((b.raw_and((b.literal(-2), d1)),
                   b.raw_and((b.literal(2), b.literal(3)))))
    path = tmp_path / "badorder.nnf"
    path.write_text(ir_to_nnf_text(b.finish(d2)))
    assert main(["check", str(path), "--format", "obdd",
                 "--var-order", "1,2,3"]) == 4
    assert main(["check", str(path), "--format", "obdd",
                 "--var-order", "2,1,3"]) == 0


def test_cli_check_missing_file_exit_2(tmp_path):
    assert main(["check", str(tmp_path / "absent.nnf")]) == 2


def test_cli_query_gate_strict_and_repair(tmp_path, capsys):
    cnf = tmp_path / "t.cnf"
    cnf.write_text("p cnf 3 2\n1 2 0\n2 3 0\n")
    # the compiler's Decision-DNNF for this formula is not smooth:
    # strict refuses to count, repair returns the exact count
    assert main(["query", str(cnf), "--query", "count",
                 "--gate", "strict"]) == 4
    capsys.readouterr()
    assert main(["query", str(cnf), "--query", "count",
                 "--gate", "repair"]) == 0
    assert "s mc 5" in capsys.readouterr().out
    assert main(["query", str(cnf), "--query", "count",
                 "--gate", "trust"]) == 0
