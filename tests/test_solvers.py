"""Tests for the prototypical-problem solvers (Fig 3 / Section 2.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Cnf, iter_assignments
from repro.solvers import (count_brute, emajsat_brute, emajsat_value,
                           majmajsat_brute, majmajsat_histogram,
                           majsat_brute, sat_brute, solve_count,
                           solve_emajsat, solve_majmajsat, solve_majsat,
                           solve_sat, solve_wmc, wmc_brute)


def cnfs(max_var=5, max_clauses=7):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


def y_splits(max_var=5):
    return st.sets(st.integers(1, max_var), min_size=1,
                   max_size=max_var - 1).map(sorted)


def test_simple_sat_and_majsat():
    cnf = Cnf([(1, 2)], num_vars=2)
    assert solve_sat(cnf)
    assert solve_count(cnf) == 3
    assert solve_majsat(cnf)  # 3 of 4
    assert not solve_majsat(Cnf([(1,), (2,)], num_vars=2))  # 1 of 4
    # exactly half is not a (strict) majority
    assert not solve_majsat(Cnf([(1,)], num_vars=1))


def test_unsat_everything():
    cnf = Cnf([(1,), (-1,)], num_vars=2)
    assert not solve_sat(cnf)
    assert solve_count(cnf) == 0
    assert not solve_majsat(cnf)
    count, _w = emajsat_value(cnf, [1])
    assert count == 0
    assert majmajsat_histogram(cnf, [1]) == {}


def test_emajsat_basic():
    # Δ = y <-> z: for any y, exactly 1 of 2 z values works
    cnf = Cnf([(-1, 2), (1, -2)], num_vars=2)
    count, witness = emajsat_value(cnf, [1])
    assert count == 1
    assert not solve_emajsat(cnf, [1])  # 1 of 2 is not a strict majority
    # Δ = y | z: choosing y=1 makes all z work
    cnf2 = Cnf([(1, 2)], num_vars=2)
    count2, witness2 = emajsat_value(cnf2, [1])
    assert count2 == 2
    assert witness2.get(1, False) is True
    assert solve_emajsat(cnf2, [1])


def test_majmajsat_basic():
    # Δ = y | z over y={1}, z={2}: y=1 -> 2 z's; y=0 -> 1 z
    cnf = Cnf([(1, 2)], num_vars=2)
    hist = majmajsat_histogram(cnf, [1])
    assert hist == {2: 1, 1: 1}
    # y=1 has z-majority (2>1), y=0 does not (1 = half) -> 1 of 2 y's,
    # not a strict majority
    assert not solve_majmajsat(cnf, [1])


def test_majmajsat_true_formula():
    cnf = Cnf([], num_vars=3)
    hist = majmajsat_histogram(cnf, [1])
    assert hist == {4: 2}
    assert solve_majmajsat(cnf, [1])


@settings(max_examples=100, deadline=None)
@given(cnfs())
def test_sat_count_majsat_vs_brute(cnf):
    assert solve_sat(cnf) == sat_brute(cnf)
    assert solve_count(cnf) == count_brute(cnf)
    assert solve_majsat(cnf) == majsat_brute(cnf)


@settings(max_examples=60, deadline=None)
@given(cnfs())
def test_wmc_vs_brute(cnf):
    weights = {}
    for v in range(1, cnf.num_vars + 1):
        weights[v] = 0.1 + 0.13 * v
        weights[-v] = 1.0 - weights[v]
    assert solve_wmc(cnf, weights) == pytest.approx(
        wmc_brute(cnf, weights))


@settings(max_examples=80, deadline=None)
@given(cnfs(), y_splits())
def test_emajsat_vs_brute(cnf, y_vars):
    value, witness = emajsat_value(cnf, y_vars)
    brute_value, _brute_witness = emajsat_brute(cnf, y_vars)
    assert value == brute_value
    # witness must achieve the claimed count
    z_vars = [v for v in range(1, cnf.num_vars + 1)
              if v not in set(y_vars)]
    full_witness = {**{v: False for v in y_vars}, **witness}
    achieved = sum(
        1 for z in iter_assignments(z_vars)
        if cnf.evaluate({**full_witness, **z}))
    assert achieved == value
    assert solve_emajsat(cnf, y_vars) == (2 * brute_value > 2 ** len(z_vars))


@settings(max_examples=80, deadline=None)
@given(cnfs(), y_splits())
def test_majmajsat_vs_brute(cnf, y_vars):
    hist = majmajsat_histogram(cnf, y_vars)
    brute = {c: m for c, m in majmajsat_brute(cnf, y_vars).items() if c}
    assert hist == brute
    z_count = cnf.num_vars - len(set(y_vars))
    winners = sum(m for c, m in brute.items() if 2 * c > 2 ** z_count)
    assert solve_majmajsat(cnf, y_vars) == \
        (2 * winners > 2 ** len(set(y_vars)))


def test_histogram_total_mass_bounded():
    cnf = Cnf([(1, 2), (-2, 3)], num_vars=4)
    hist = majmajsat_histogram(cnf, [1, 2])
    assert sum(hist.values()) <= 2 ** 2
