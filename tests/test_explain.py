"""Tests for explanations: sufficient reasons, reason circuits, bias,
counterfactuals (Figs 26–27)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Cnf
from repro.obdd import ObddManager, compile_cnf_obdd
from repro.explain import (all_sufficient_reasons, bias_from_reasons,
                           classifier_is_biased, decision_and_function,
                           decision_is_biased, decision_sticks,
                           is_sufficient_reason,
                           minimal_sufficient_reason, reason_circuit,
                           reason_implies, reason_prime_implicants,
                           smallest_sufficient_reason,
                           verify_even_if_because)


def fig26_function():
    """f = (A + ¬C)(B + C)(A + B) with A=1, B=2, C=3."""
    manager = ObddManager([1, 2, 3])
    f = (manager.literal(1) | manager.literal(-3)) & \
        (manager.literal(2) | manager.literal(3)) & \
        (manager.literal(1) | manager.literal(2))
    return manager, f


def admissions_classifier():
    """A Fig 27-style admissions OBDD over five features.

    Features: 1=passed entrance exam (E), 2=first-time applicant (F),
    3=good GPA (G), 4=work experience (W), 5=rich hometown (R,
    protected).  Admit iff  (E ∧ (G ∨ W)) ∨ (R ∧ (E ∨ G)).
    """
    m = ObddManager([1, 2, 3, 4, 5])
    e, g, w, r = m.literal(1), m.literal(3), m.literal(4), m.literal(5)
    f = (e & (g | w)) | (r & (e | g))
    return m, f


# -- sufficient reasons (Fig 26) ------------------------------------------------

def test_fig26_positive_instance_reasons():
    _m, f = fig26_function()
    instance = {1: True, 2: True, 3: False}  # A, B, ¬C -> decision 1
    assert f.evaluate(instance)
    reasons = all_sufficient_reasons(f, instance)
    assert set(reasons) == {frozenset({1, 2}), frozenset({2, -3})}


def test_fig26_negative_instance_single_reason():
    _m, f = fig26_function()
    instance = {1: False, 2: True, 3: True}  # ¬A, B, C -> decision 0
    assert not f.evaluate(instance)
    reasons = all_sufficient_reasons(f, instance)
    assert reasons == [frozenset({-1, 3})]


def test_decision_and_function():
    m, f = fig26_function()
    _d, trigger = decision_and_function(f, {1: True, 2: True, 3: False})
    assert trigger is f
    _d, trigger = decision_and_function(f, {1: False, 2: True, 3: True})
    assert trigger is m.negate(f)


def test_is_sufficient_reason():
    _m, f = fig26_function()
    instance = {1: True, 2: True, 3: False}
    assert is_sufficient_reason(f, instance, [1, 2])
    assert is_sufficient_reason(f, instance, [2, -3])
    assert not is_sufficient_reason(f, instance, [2])  # not sufficient
    assert not is_sufficient_reason(f, instance, [1, 2, -3])  # not minimal
    assert is_sufficient_reason(f, instance, [1, 2, -3],
                                check_minimal=False)
    assert not is_sufficient_reason(f, instance, [-1, 2])  # not in inst


def test_minimal_reason_is_minimal_and_sufficient():
    _m, f = fig26_function()
    instance = {1: True, 2: True, 3: False}
    reason = minimal_sufficient_reason(f, instance)
    assert is_sufficient_reason(f, instance, reason)


def test_smallest_reason():
    _m, f = fig26_function()
    instance = {1: True, 2: True, 3: False}
    smallest = smallest_sufficient_reason(f, instance)
    assert len(smallest) == 2
    assert is_sufficient_reason(f, instance, smallest)


def test_smallest_reason_max_size():
    _m, f = fig26_function()
    instance = {1: True, 2: True, 3: False}
    assert smallest_sufficient_reason(f, instance, max_size=1) is None


def test_all_reasons_refuses_huge():
    manager = ObddManager(list(range(1, 31)))
    cube = manager.cube(list(range(1, 31)))
    instance = {v: True for v in range(1, 31)}
    with pytest.raises(ValueError):
        all_sufficient_reasons(cube, instance)


# -- reason circuits --------------------------------------------------------------

def test_reason_circuit_prime_implicants_are_reasons():
    _m, f = fig26_function()
    for instance in ({1: True, 2: True, 3: False},
                     {1: False, 2: True, 3: True},
                     {1: True, 2: False, 3: False}):
        circuit = reason_circuit(f, instance)
        assert set(reason_prime_implicants(circuit)) == \
            set(all_sufficient_reasons(f, instance))


def test_reason_circuit_semantics():
    """A term implies the reason circuit iff it contains a sufficient
    reason (the complete reason = disjunction of sufficient reasons)."""
    _m, f = fig26_function()
    instance = {1: True, 2: True, 3: False}
    circuit = reason_circuit(f, instance)
    reasons = all_sufficient_reasons(f, instance)
    literals = [1, 2, -3]
    for r in range(len(literals) + 1):
        for combo in itertools.combinations(literals, r):
            expected = any(t <= set(combo) for t in reasons)
            assert reason_implies(circuit, combo) == expected


def test_reason_circuit_is_monotone():
    """Adding literals to a term can only turn the reason on."""
    _m, f = fig26_function()
    instance = {1: True, 2: True, 3: False}
    circuit = reason_circuit(f, instance)
    literals = [1, 2, -3]
    for r in range(len(literals)):
        for combo in itertools.combinations(literals, r):
            if reason_implies(circuit, combo):
                for lit in literals:
                    assert reason_implies(circuit, list(combo) + [lit])


def cnfs(max_var=4, max_clauses=6):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=1, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


@settings(max_examples=60, deadline=None)
@given(cnfs(), st.integers(0, 15))
def test_reason_circuit_matches_enumeration(cnf, bits):
    node, manager = compile_cnf_obdd(cnf)
    instance = {v: bool((bits >> (v - 1)) & 1)
                for v in range(1, cnf.num_vars + 1)}
    if node.is_terminal:
        return
    circuit = reason_circuit(node, instance)
    assert set(reason_prime_implicants(circuit)) == \
        set(all_sufficient_reasons(node, instance))


# -- bias (Fig 27) ---------------------------------------------------------------

def test_admissions_biased_decision():
    """A Scott-style instance: admitted only thanks to the protected
    feature."""
    _m, f = admissions_classifier()
    scott = {1: False, 2: True, 3: True, 4: False, 5: True}
    assert f.evaluate(scott)  # admitted via (R ∧ G)
    assert decision_is_biased(f, scott, protected=[5])
    analysis = bias_from_reasons(f, scott, protected=[5])
    assert analysis["decision_biased"]
    assert analysis["classifier_biased_witness"]


def test_admissions_unbiased_decision_biased_classifier():
    """A Robin-style instance: admitted on merit, but the classifier is
    still biased (some reasons mention the protected feature)."""
    _m, f = admissions_classifier()
    robin = {1: True, 2: True, 3: True, 4: True, 5: True}
    assert f.evaluate(robin)
    assert not decision_is_biased(f, robin, protected=[5])
    analysis = bias_from_reasons(f, robin, protected=[5])
    assert not analysis["decision_biased"]
    assert analysis["classifier_biased_witness"]
    assert classifier_is_biased(f, protected=[5])


def test_unbiased_classifier():
    m, f = fig26_function()
    # variable 3 with f not depending on it after restriction? f depends
    # on all three, so protect a fresh variable the function ignores
    assert not classifier_is_biased(f, protected=[])
    g = m.literal(1) & m.literal(2)
    assert not classifier_is_biased(g, protected=[3])
    instance = {1: True, 2: True, 3: True}
    assert not decision_is_biased(g, instance, protected=[3])


@settings(max_examples=60, deadline=None)
@given(cnfs(), st.integers(0, 15), st.integers(1, 4))
def test_bias_characterisations_agree(cnf, bits, protected_var):
    """The direct definition and the sufficient-reason characterisation
    of decision bias coincide (the [33] theorem)."""
    node, manager = compile_cnf_obdd(cnf)
    if node.is_terminal:
        return
    instance = {v: bool((bits >> (v - 1)) & 1)
                for v in range(1, cnf.num_vars + 1)}
    direct = decision_is_biased(node, instance, [protected_var])
    reasons = bias_from_reasons(node, instance, [protected_var])
    assert reasons["decision_biased"] == direct


# -- counterfactuals ---------------------------------------------------------------

def test_decision_sticks():
    _m, f = admissions_classifier()
    robin = {1: True, 2: True, 3: True, 4: True, 5: True}
    # flipping work experience does not affect Robin (E ∧ G holds)
    assert decision_sticks(f, robin, flipped=[4])


def test_even_if_because_valid():
    """April's statement: sticks even without work experience because
    she passed the entrance exam (and has a good GPA)."""
    _m, f = admissions_classifier()
    april = {1: True, 2: False, 3: True, 4: True, 5: False}
    result = verify_even_if_because(f, april, flipped=[4],
                                    because=[1, 3])
    assert result["valid"] and result["sticks"]


def test_even_if_because_invalid_reason():
    _m, f = admissions_classifier()
    april = {1: True, 2: False, 3: True, 4: True, 5: False}
    # work experience cannot be the reason the decision survives
    # flipping work experience
    result = verify_even_if_because(f, april, flipped=[4],
                                    because=[1, 4])
    assert not result["valid"]
    assert not result["because_avoids_flipped"]
    # a non-sufficient term is not a valid 'because'
    result = verify_even_if_because(f, april, flipped=[4], because=[1])
    assert not result["because_is_sufficient"]
    assert not result["valid"]


# -- regression: term literals over variables absent from the instance --------

def test_term_check_handles_unknown_variable():
    """A term mentioning a variable the instance does not assign used
    to leak a raw KeyError out of is_sufficient_reason; it is simply
    not an instance literal (regression)."""
    manager, f = fig26_function()
    instance = {1: True, 2: True, 3: False}  # no variable 9
    assert not is_sufficient_reason(f, instance, [1, 9])
    assert not is_sufficient_reason(f, instance, [9])
    # the flipped-polarity rejection still works alongside it
    assert not is_sufficient_reason(f, instance, [-1, 2])


def test_is_necessary_rejects_unknown_variable():
    """is_necessary raises a structured ValueError naming the literal
    instead of a KeyError (regression)."""
    from repro.explain import is_necessary
    manager, f = fig26_function()
    instance = {1: True, 2: True, 3: False}
    with pytest.raises(ValueError, match="literal 9"):
        is_necessary(f, instance, 9)
    with pytest.raises(ValueError, match="literal -1"):
        is_necessary(f, instance, -1)  # flipped polarity, same path


def test_even_if_because_handles_unknown_variable():
    """verify_even_if_because marks a 'because' term over unassigned
    variables invalid instead of crashing (regression)."""
    _m, f = admissions_classifier()
    april = {1: True, 2: False, 3: True, 4: True, 5: False}
    result = verify_even_if_because(f, april, flipped=[4],
                                    because=[1, 9])
    assert not result["because_is_instance_term"]
    assert not result["valid"]
