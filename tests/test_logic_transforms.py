"""Tests for CNF conversion, Tseitin, prime implicants (incl. hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.logic import (FALSE, Lit, TRUE, VarMap, functions_equal,
                         is_implicant, parse, prime_implicants_of_formula,
                         prime_implicates_of_formula, term_subsumes,
                         to_cnf, tseitin, iter_assignments)
from repro.logic.formula import And, Not, Or


# -- strategy: random formulas over a small variable pool ---------------------

def formulas(max_var=4, max_depth=4):
    literals = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([Lit(v), Lit(-v)]))
    base = st.one_of(literals, st.just(TRUE), st.just(FALSE))

    def extend(children):
        return st.one_of(
            st.lists(children, min_size=1, max_size=3).map(lambda cs: And(*cs)),
            st.lists(children, min_size=1, max_size=3).map(lambda cs: Or(*cs)),
            children.map(Not),
        )
    return st.recursive(base, extend, max_leaves=2 ** max_depth)


@settings(max_examples=150, deadline=None)
@given(formulas())
def test_to_cnf_preserves_equivalence(formula):
    cnf = to_cnf(formula)
    variables = sorted(formula.variables())
    for assignment in iter_assignments(variables):
        assert cnf.evaluate(assignment) == formula.evaluate(assignment)


@settings(max_examples=100, deadline=None)
@given(formulas())
def test_tseitin_preserves_model_count(formula):
    cnf, _root = tseitin(formula)
    # count over the full 1..max_var range on both sides so that gap
    # variables (unused indices below the maximum) weigh in equally
    max_var = max(formula.variables(), default=0)
    assert cnf.model_count() == formula.model_count(range(1, max_var + 1))


@settings(max_examples=100, deadline=None)
@given(formulas())
def test_tseitin_projection_equals_formula(formula):
    """Models of the Tseitin CNF projected on original vars = formula models."""
    variables = sorted(formula.variables())
    cnf, _root = tseitin(formula)
    projected = {tuple(m[v] for v in variables) for m in cnf.models()}
    direct = {tuple(m[v] for v in variables)
              for m in formula.models(variables)}
    assert projected == direct


def test_to_cnf_of_valid_formula_is_empty():
    f = Lit(1) | Lit(-1)
    cnf = to_cnf(f)
    assert len(cnf) == 0


def test_to_cnf_of_unsat_formula_has_empty_clause():
    f = Lit(1) & Lit(-1)
    cnf = to_cnf(f)
    assert cnf.model_count() == 0


def test_paper_fig26_prime_implicants():
    """Fig 26: f=(A+~C)(B+C)(A+B) has PIs AB, AC, B~C; complement has
    ~A~B, ~A~C... (checked via implicates duality)."""
    vm = VarMap()
    f = parse("(A | ~C) & (B | C) & (A | B)", vm)
    a, c, b = vm.index("A"), vm.index("C"), vm.index("B")
    pis = prime_implicants_of_formula(f)
    expected = {frozenset({a, b}), frozenset({a, c}), frozenset({b, -c})}
    assert set(pis) == expected
    # complement's prime implicants: ~A~B, ~B~C, ~AC (hand-verified from
    # the truth table; consistent with the paper's negative instance ~A,B,C
    # having exactly one sufficient reason ~AC)
    neg = Not(f)
    neg_pis = prime_implicants_of_formula(neg, sorted(f.variables()))
    expected_neg = {frozenset({-a, -b}), frozenset({-b, -c}),
                    frozenset({-a, c})}
    assert set(neg_pis) == expected_neg
    # the decision on instance ~A,B,C is 0 with single sufficient reason ~AC
    instance = {a: False, b: True, c: True}
    assert not f.evaluate(instance)
    compatible = [t for t in neg_pis
                  if all(instance[abs(l)] == (l > 0) for l in t)]
    assert compatible == [frozenset({-a, c})]


@settings(max_examples=60, deadline=None)
@given(formulas(max_var=4))
def test_prime_implicants_are_prime_and_cover(formula):
    variables = sorted(formula.variables())
    if not variables:
        return
    pis = prime_implicants_of_formula(formula, variables)
    # every PI is an implicant, and removing any literal breaks it
    for term in pis:
        assert is_implicant(term, formula.evaluate, variables)
        for lit in term:
            assert not is_implicant(term - {lit}, formula.evaluate,
                                    variables)
    # disjunction of PIs equals the formula

    def cover(assignment):
        return any(all((assignment[abs(l)] == (l > 0)) for l in term)
                   for term in pis)
    assert functions_equal(cover, formula.evaluate, variables)


def test_prime_implicates_duality():
    vm = VarMap()
    f = parse("A & (B | C)", vm)
    implicates = prime_implicates_of_formula(f)
    # implicates of A & (B|C) are {A} and {B,C}
    a, b, c = vm.index("A"), vm.index("B"), vm.index("C")
    assert set(implicates) == {frozenset({a}), frozenset({b, c})}


def test_term_subsumes():
    assert term_subsumes(frozenset({1}), frozenset({1, 2}))
    assert not term_subsumes(frozenset({1, 3}), frozenset({1, 2}))


def test_always_true_has_empty_prime_implicant():
    pis = prime_implicants_of_formula(TRUE, [1, 2])
    assert pis == [frozenset()]


def test_always_false_has_no_prime_implicants():
    pis = prime_implicants_of_formula(FALSE, [1, 2])
    assert pis == []
