"""Tests for the Decision-DNNF prime-implicant enumerator
(``repro.explain.implicants``) and its facade / serve / CLI plumbing.

The heart is randomized certification: ≥500 random circuits where the
IR enumerator must agree exactly with the OBDD-route ground truth
(``all_sufficient_reasons`` / ``reason_prime_implicants``), plus the
anytime contract (budget expiry degrades, never lies), the hardness
boundary on tractable families, forgotten-auxiliary exclusion, and
the query-gate discipline.
"""

import json
import random

import pytest

from repro.analyze.gate import PropertyViolation, gate_scope
from repro.compile import compile_cnf
from repro.compile.dnnf_compiler import DnnfCompiler
from repro.explain import (all_sufficient_reasons,
                           check_necessary_batch, check_sufficient_batch,
                           is_necessary, is_sufficient_reason,
                           iter_sufficient_reasons, necessary_characteristics,
                           necessary_literals, reason_circuit_ddnnf,
                           reason_prime_implicants,
                           sufficient_reasons)
from repro.ir import facade
from repro.ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC
from repro.ir.lower import nnf_to_ir, obdd_to_ir
from repro.limits import Budget, BudgetExceeded
from repro.logic import Cnf
from repro.logic.formula import And, Lit, Not, Or
from repro.logic.tseitin import tseitin
from repro.obdd import ObddManager, compile_cnf_obdd
from repro.perf.instrument import Counter


def random_cnf(rng, max_vars=8):
    n = rng.randint(2, max_vars)
    m = rng.randint(1, int(2.5 * n))
    clauses = []
    for _ in range(m):
        width = rng.randint(1, 3)
        vs = rng.sample(range(1, n + 1), min(width, n))
        clauses.append(tuple(v if rng.random() < 0.5 else -v
                             for v in vs))
    return Cnf(clauses, num_vars=n)


def satisfying_instance(cnf, rng, tries=12):
    for _ in range(tries):
        instance = {v: rng.random() < 0.5
                    for v in range(1, cnf.num_vars + 1)}
        if cnf.evaluate(instance):
            return instance
    return None


def compile_ir(cnf):
    root = DnnfCompiler().compile(cnf)
    return nnf_to_ir(root,
                     flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)


# -- randomized certification against the OBDD ground truth -------------------

def test_enumerator_matches_obdd_route_on_500_circuits():
    """≥500 random positive-decision circuits: the IR enumerator, the
    OBDD brute force, and the ddnnf reason-circuit antichain all
    agree exactly; so do the necessary-literal sets."""
    rng = random.Random(20260808)
    checked = 0
    for trial in range(4000):
        if checked >= 500:
            break
        cnf = random_cnf(rng)
        instance = satisfying_instance(cnf, rng)
        if instance is None:
            continue
        obdd, _manager = compile_cnf_obdd(cnf)
        expected = set(all_sufficient_reasons(obdd, instance))
        ddnnf = compile_cnf(cnf)
        ir = nnf_to_ir(ddnnf)
        out = sufficient_reasons(ir, instance)
        assert out["complete"] and out["decision"]
        assert {frozenset(r) for r in out["reasons"]} == expected
        # the reason-circuit antichain route agrees too
        antichain = reason_prime_implicants(
            reason_circuit_ddnnf(ddnnf, instance))
        assert set(antichain) == expected
        # necessary literals = intersection of all reasons
        assert necessary_literals(ir, instance) == \
            necessary_characteristics(obdd, instance)
        checked += 1
    assert checked >= 500


def test_reasons_are_sorted_and_unique():
    rng = random.Random(5)
    for _ in range(30):
        cnf = random_cnf(rng, max_vars=6)
        instance = satisfying_instance(cnf, rng)
        if instance is None:
            continue
        out = sufficient_reasons(compile_ir(cnf), instance)
        reasons = [tuple(r) for r in out["reasons"]]
        assert len(set(reasons)) == len(reasons)
        # repo convention: (size, abs-ordered literal list)
        keyed = [(len(r), list(r)) for r in reasons]
        assert keyed == sorted(keyed)


# -- delay on the tractable fragment ------------------------------------------

def test_polynomial_delay_on_conjunction():
    """f = x1 ∧ ... ∧ xn has one reason (the full term); the whole
    enumeration is n+1 probes of one greedy pass each."""
    n = 12
    cnf = Cnf([(v,) for v in range(1, n + 1)], num_vars=n)
    instance = {v: True for v in range(1, n + 1)}
    stats = Counter()
    out = sufficient_reasons(compile_ir(cnf), instance, stats=stats)
    assert out["reasons"] == [list(range(1, n + 1))]
    assert out["probes"] == n + 1
    # each probe is at most 1 + n monotone evaluations
    assert stats["explain_evals"] <= (n + 1) * (n + 1)


def test_polynomial_delay_on_disjunction():
    """f = x1 ∨ ... ∨ xn has n singleton reasons; each emission costs
    one probe and pushes one successor — n+1 probes total."""
    n = 12
    cnf = Cnf([tuple(range(1, n + 1))], num_vars=n)
    instance = {v: True for v in range(1, n + 1)}
    stats = Counter()
    out = sufficient_reasons(compile_ir(cnf), instance, stats=stats)
    assert out["reasons"] == [[v] for v in range(1, n + 1)]
    assert out["probes"] <= n + 1


def test_first_reason_is_one_probe():
    """Delay to the first reason is a single greedy pass regardless
    of how many reasons exist."""
    rng = random.Random(11)
    for _ in range(20):
        cnf = random_cnf(rng, max_vars=7)
        instance = satisfying_instance(cnf, rng)
        if instance is None:
            continue
        ir = compile_ir(cnf)
        stats = Counter()
        first = next(iter_sufficient_reasons(ir, instance,
                                             stats=stats), None)
        assert first is not None
        assert stats["explain_probes"] == 1


# -- anytime budget governance ------------------------------------------------

def test_budget_expiry_degrades_to_valid_partial():
    """An expired budget yields the reasons found so far — each one a
    true minimal sufficient reason — plus a structured partial
    marker; it never raises and never fabricates."""
    rng = random.Random(99)
    exercised_partial = False
    for _ in range(25):
        cnf = random_cnf(rng, max_vars=8)
        instance = satisfying_instance(cnf, rng)
        if instance is None:
            continue
        ir = compile_ir(cnf)
        obdd, _m = compile_cnf_obdd(cnf)
        for cap in (1, 64, 512, 4096):
            out = sufficient_reasons(ir, instance,
                                     budget=Budget(max_nodes=cap))
            for reason in out["reasons"]:
                assert is_sufficient_reason(obdd, instance, reason)
            if not out["complete"]:
                exercised_partial = True
                assert out["partial"]["reason"] == "nodes"
                assert out["partial"]["budget"]["max_nodes"] == cap
    assert exercised_partial


def test_iterator_stops_silently_on_ambient_budget():
    cnf = Cnf([tuple(range(1, 9))], num_vars=8)
    instance = {v: True for v in range(1, 9)}
    ir = compile_ir(cnf)
    with Budget(max_nodes=1).scope():
        got = list(iter_sufficient_reasons(ir, instance))
    assert got == []  # expired before the first probe — no raise


def test_limit_stops_early_without_partial():
    cnf = Cnf([tuple(range(1, 7))], num_vars=6)
    instance = {v: True for v in range(1, 7)}
    out = sufficient_reasons(compile_ir(cnf), instance, limit=2)
    assert len(out["reasons"]) == 2
    assert not out["complete"]
    assert "partial" not in out


def test_necessary_literals_budget_raises():
    """necessary_literals is a complete check, not anytime."""
    cnf = Cnf([(1, 2), (3, 4)], num_vars=4)
    instance = {1: True, 2: False, 3: True, 4: True}
    ir = compile_ir(cnf)
    with pytest.raises(BudgetExceeded):
        necessary_literals(ir, instance, budget=Budget(max_nodes=1))


# -- constants, negative decisions, malformed inputs --------------------------

def test_constant_true_has_empty_reason():
    ir = compile_ir(Cnf([], num_vars=2))
    out = sufficient_reasons(ir, {1: True, 2: False})
    assert out["reasons"] == [[]] and out["complete"]
    obdd, _m = compile_cnf_obdd(Cnf([], num_vars=2))
    assert all_sufficient_reasons(obdd, {1: True, 2: False}) == \
        [frozenset()]


def test_constant_false_is_negative_decision():
    cnf = Cnf([(1,), (-1,)], num_vars=1)
    ir = compile_ir(cnf)
    with pytest.raises(ValueError, match="negative decision"):
        sufficient_reasons(ir, {1: True})
    # the OBDD route explains the complement: the empty reason
    obdd, _m = compile_cnf_obdd(cnf)
    assert all_sufficient_reasons(obdd, {1: True}) == [frozenset()]


def test_negative_decision_via_complement_circuit():
    """The documented negative-decision route: compile the complement
    (here by negating the OBDD and lowering it — an OBDD is a
    Decision-DNNF) and enumerate on that; matches the OBDD ground
    truth, which explains negative decisions through f̄ directly."""
    rng = random.Random(17)
    checked = 0
    for _ in range(200):
        if checked >= 25:
            break
        cnf = random_cnf(rng, max_vars=6)
        instance = {v: rng.random() < 0.5
                    for v in range(1, cnf.num_vars + 1)}
        if cnf.evaluate(instance):
            continue
        obdd, manager = compile_cnf_obdd(cnf)
        if obdd.is_terminal:
            continue
        expected = set(all_sufficient_reasons(obdd, instance))
        complement_ir = obdd_to_ir(manager.negate(obdd))
        out = sufficient_reasons(complement_ir, instance)
        assert {frozenset(r) for r in out["reasons"]} == expected
        checked += 1
    assert checked >= 25


def test_guard_permuted_decision_gate_on_ir():
    """IR-level twin of the is_decision_node regression: the guard
    may be any conjunct of a branch."""
    from repro.nnf.node import NnfManager
    manager = NnfManager()
    gate = manager.disjoin(
        manager.conjoin(manager.literal(1), manager.literal(3)),
        manager.conjoin(manager.literal(2), manager.literal(-3)))
    assert [c.literal for c in gate.children[0].children] == [1, 3]
    ir = nnf_to_ir(gate)
    out = sufficient_reasons(ir, {1: True, 2: True, 3: True})
    assert out["reasons"] == [[1, 2], [1, 3]]


def test_missing_instance_variables_rejected():
    ir = compile_ir(Cnf([(1, 2), (3,)], num_vars=3))
    with pytest.raises(ValueError, match=r"variables \[2, 3\]"):
        sufficient_reasons(ir, {1: True})


def test_non_decision_circuit_rejected():
    from repro.nnf.node import NnfManager
    manager = NnfManager()
    tangled = manager.disjoin(manager.literal(1), manager.literal(2))
    ir = nnf_to_ir(tangled)
    with pytest.raises(ValueError, match="Decision-DNNF"):
        sufficient_reasons(ir, {1: True, 2: True})


def test_strict_gate_refuses_uncertified_circuit():
    """Under the strict gate a non-deterministic circuit is refused
    with a PropertyViolation before any enumeration runs."""
    from repro.nnf.node import NnfManager
    manager = NnfManager()
    tangled = manager.disjoin(manager.literal(1), manager.literal(2))
    ir = nnf_to_ir(tangled)
    with gate_scope("strict"):
        with pytest.raises(PropertyViolation):
            sufficient_reasons(ir, {1: True, 2: True})
    with gate_scope("strict"):
        ok = compile_ir(Cnf([(1, 2)], num_vars=2))
        out = sufficient_reasons(ok, {1: True, 2: False})
        assert out["complete"]


# -- forgotten Tseitin auxiliaries --------------------------------------------

def pruned_formula():
    """A formula whose Tseitin encoding shrinks under the default
    pipeline with every auxiliary forgotten (same fixture as
    test_passes)."""
    return Or(And(Lit(1), Lit(2)), And(Lit(3), Not(Lit(1))),
              And(Lit(2), Lit(4)))


def test_forgotten_auxiliaries_never_in_reasons():
    from repro.ir.passes import optimize_ir
    formula = pruned_formula()
    cnf, _root = tseitin(formula)
    ir = compile_ir(cnf)
    result = optimize_ir(ir, aux_vars=sorted(cnf.aux_vars))
    assert result.forgotten, "fixture must actually forget auxiliaries"
    # every auxiliary left the circuit: reasons are over user vars
    assert set(result.ir.variables()) <= \
        set(range(1, 5)), "fixture must prune all auxiliaries"
    instance = {1: True, 2: True, 3: False, 4: False}
    out = sufficient_reasons(result.ir, instance,
                             forgotten=result.forgotten)
    assert out["complete"]
    aux = set(cnf.aux_vars)
    for reason in out["reasons"]:
        assert not {abs(lit) for lit in reason} & aux
    # the pruned circuit is the projection onto user variables, so
    # the reasons match the formula's own OBDD exactly
    m = ObddManager([1, 2, 3, 4])
    f = (m.literal(1) & m.literal(2)) | \
        (m.literal(3) & m.literal(-1)) | \
        (m.literal(2) & m.literal(4))
    assert {frozenset(r) for r in out["reasons"]} == \
        set(all_sufficient_reasons(f, instance))


def test_count_oracle_fallback_on_guardless_variant():
    """Forgetting a guard auxiliary can leave a disjoint or-gate with
    no complementary literal pair.  Enumeration then falls back to
    the counting oracle — and must still match the OBDD of the
    projection on every instance, positive or negative."""
    import itertools
    from repro.ir.passes import optimize_ir
    formula = pruned_formula()
    cnf, _root = tseitin(formula)
    result = optimize_ir(compile_ir(cnf), aux_vars=sorted(cnf.aux_vars))
    m = ObddManager([1, 2, 3, 4])
    f = (m.literal(1) & m.literal(2)) | \
        (m.literal(3) & m.literal(-1)) | \
        (m.literal(2) & m.literal(4))
    fallbacks = 0
    for bits in itertools.product([False, True], repeat=4):
        instance = dict(zip([1, 2, 3, 4], bits))
        if formula.evaluate(instance):
            out = sufficient_reasons(result.ir, instance,
                                     forgotten=result.forgotten)
            fallbacks += out["oracle"] == "count"
            assert out["complete"]
            assert {frozenset(r) for r in out["reasons"]} == \
                set(all_sufficient_reasons(f, instance))
            want_necessary = sorted(
                frozenset.intersection(*map(frozenset, out["reasons"])),
                key=abs) if out["reasons"] else []
            assert necessary_literals(
                result.ir, instance,
                forgotten=result.forgotten) == want_necessary
        else:
            with pytest.raises(ValueError, match="negative decision"):
                sufficient_reasons(result.ir, instance,
                                   forgotten=result.forgotten)
    assert fallbacks > 0, "fixture must actually exercise the fallback"


def test_count_oracle_budget_degrades():
    """The counting fallback keeps the anytime contract: expiry mid-
    enumeration yields only verified reasons and a partial marker."""
    from repro.ir.passes import optimize_ir
    formula = pruned_formula()
    cnf, _root = tseitin(formula)
    result = optimize_ir(compile_ir(cnf), aux_vars=sorted(cnf.aux_vars))
    instance = {1: True, 2: True, 3: True, 4: True}
    full = sufficient_reasons(result.ir, instance,
                              forgotten=result.forgotten)
    assert full["oracle"] == "count" and full["complete"]
    n = result.ir.n
    saw_partial = False
    for cap in (n, 8 * n, 64 * n):
        out = sufficient_reasons(result.ir, instance,
                                 forgotten=result.forgotten,
                                 budget=Budget(max_nodes=cap))
        truth = {frozenset(r) for r in full["reasons"]}
        assert {frozenset(r) for r in out["reasons"]} <= truth
        if not out["complete"]:
            saw_partial = True
            assert out["partial"]["reason"] == "nodes"
    assert saw_partial


def test_leaked_forgotten_variable_rejected():
    ir = compile_ir(Cnf([(1, 2)], num_vars=2))
    with pytest.raises(ValueError, match="forgotten"):
        sufficient_reasons(ir, {1: True, 2: True}, forgotten=[2])


# -- batched dataset checks ---------------------------------------------------

def test_batched_checks_agree_with_scalar():
    """Random mixed-decision datasets: the two-pass numpy route gives
    exactly the scalar OBDD answers for sufficiency and necessity."""
    rng = random.Random(7)
    total = 0
    for _ in range(40):
        cnf = random_cnf(rng, max_vars=7)
        ir = compile_ir(cnf)
        obdd, _m = compile_cnf_obdd(cnf)
        n = cnf.num_vars
        instances, terms, literals = [], [], []
        for _ in range(16):
            inst = {v: rng.random() < 0.5 for v in range(1, n + 1)}
            instances.append(inst)
            tvars = rng.sample(range(1, n + 1), rng.randint(0, n))
            terms.append([(v if inst[v] else -v)
                          if rng.random() < 0.8
                          else (-v if inst[v] else v) for v in tvars])
            lv = rng.randint(1, n)
            literals.append((lv if inst[lv] else -lv)
                            if rng.random() < 0.8
                            else (-lv if inst[lv] else lv))
        got = check_sufficient_batch(ir, instances, terms)
        want = [is_sufficient_reason(obdd, inst, t,
                                     check_minimal=False)
                for inst, t in zip(instances, terms)]
        assert got == want
        gotn = check_necessary_batch(ir, instances, literals)
        for inst, lit, value in zip(instances, literals, gotn):
            try:
                assert value == is_necessary(obdd, inst, lit)
            except ValueError:
                assert not value  # non-instance literal: never necessary
        total += len(instances)
    assert total >= 500


def test_batched_check_validates_shapes():
    ir = compile_ir(Cnf([(1, 2)], num_vars=2))
    with pytest.raises(ValueError, match="instances"):
        check_sufficient_batch(ir, [{1: True, 2: True}], [])
    assert check_sufficient_batch(ir, [], []) == []
    with pytest.raises(ValueError, match="does not assign"):
        check_sufficient_batch(ir, [{1: True}], [[1]])


def test_batched_check_on_enumerated_reasons():
    """Every enumerated reason passes the batched sufficiency check;
    dropping any literal from a singleton-free reason fails it."""
    rng = random.Random(13)
    for _ in range(10):
        cnf = random_cnf(rng, max_vars=6)
        instance = satisfying_instance(cnf, rng)
        if instance is None:
            continue
        ir = compile_ir(cnf)
        reasons = sufficient_reasons(ir, instance)["reasons"]
        if not reasons:
            continue
        instances = [instance] * len(reasons)
        assert all(check_sufficient_batch(ir, instances, reasons))
        shrunk = [r[:-1] for r in reasons if r]
        if shrunk:
            got = check_sufficient_batch(
                ir, [instance] * len(shrunk), shrunk)
            assert not any(got)  # minimality: strict subsets fail


# -- facade / serve / CLI plumbing --------------------------------------------

def test_explain_artifact_roundtrip(tmp_path):
    store_dir = str(tmp_path / "store")
    from repro.ir.store import ArtifactStore
    store = ArtifactStore(store_dir)
    ticket = facade.compile_ticket("p cnf 3 2\n1 2 0\n-1 3 0\n")
    facade.compile_to_store(ticket, store)
    out = facade.explain_artifact(store, ticket.key,
                                  {1: True, 2: False, 3: True})
    assert out["query"] == "explain"
    assert out["reasons"] == [[1, 3]] and out["complete"]
    assert facade.explain_artifact(store, "missing",
                                   {1: True}) is None


def test_explain_artifact_optimized_variant(tmp_path):
    """optimize=True explains on the pruned variant; forgotten
    auxiliaries are excluded and the instance need not assign them."""
    from repro.ir.store import ArtifactStore
    cnf, _root = tseitin(pruned_formula())
    store = ArtifactStore(str(tmp_path / "store"))
    ticket = facade.compile_ticket(cnf.to_dimacs())
    facade.compile_to_store(ticket, store)
    report = facade.optimize_artifact(store, ticket.key,
                                      aux_vars=sorted(cnf.aux_vars))
    assert report and report["forgotten_vars"]
    instance = {1: True, 2: True, 3: False, 4: False}
    out = facade.explain_artifact(store, ticket.key, instance,
                                  optimize=True)
    assert out["complete"]
    aux = set(cnf.aux_vars)
    for reason in out["reasons"]:
        assert not {abs(lit) for lit in reason} & aux


def test_serve_explain_roundtrip(tmp_path):
    """Protocol parse → worker dispatch → anytime degradation, all
    through the serve entry points (thread-pool worker path)."""
    from repro.serve import pool
    from repro.serve.protocol import ProtocolError, parse_query_request
    from repro.ir.store import ArtifactStore
    root = str(tmp_path / "store")
    pool.init_worker(root)
    store = ArtifactStore(root)
    ticket = facade.compile_ticket("p cnf 3 2\n1 2 0\n-1 3 0\n")
    facade.compile_to_store(ticket, store)

    body = json.dumps({"key": ticket.key, "query": "explain",
                       "instance": {"1": True, "2": False,
                                    "3": True}}).encode()
    request = parse_query_request(body)
    assert request.query == "explain"
    assert request.instance == {1: True, 2: False, 3: True}
    payload = {"key": request.key, "query": request.query,
               "num_vars": request.num_vars, "weights": None,
               "weight_batch": None, "deadline_s": request.deadline_s,
               "optimize": request.optimize,
               "instance": {str(v): s
                            for v, s in request.instance.items()},
               "limit": request.limit, "smallest": request.smallest}
    reply = pool.run_query(payload)
    assert reply["status"] == "ok"
    assert reply["reasons"] == [[1, 3]] and reply["complete"]

    # negative decision → invalid (400), not a crash
    bad = dict(payload, instance={"1": False, "2": False, "3": True})
    assert pool.run_query(bad)["status"] == "invalid"

    # unknown key → not_found (404)
    missing = dict(payload, key="deadbeef")
    assert pool.run_query(missing)["status"] == "not_found"

    # malformed protocol bodies → ProtocolError (400)
    with pytest.raises(ProtocolError, match="instance"):
        parse_query_request(json.dumps(
            {"key": "k", "query": "explain"}).encode())
    with pytest.raises(ProtocolError, match="only valid"):
        parse_query_request(json.dumps(
            {"key": "k", "query": "count",
             "instance": {"1": True}}).encode())
    with pytest.raises(ProtocolError, match="boolean"):
        parse_query_request(json.dumps(
            {"key": "k", "query": "explain",
             "instance": {"1": 1}}).encode())


def test_cli_explain(tmp_path, capsys):
    from repro.cli import main
    cnf_path = tmp_path / "f.cnf"
    cnf_path.write_text("p cnf 3 2\n1 2 0\n-1 3 0\n")
    assert main(["explain", str(cnf_path), "--instance", "1,-2,3",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "s decision 1" in out
    assert "v 1 3 0" in out
    assert "s reasons 1 complete" in out
    # negative decision: structured error, exit 2
    assert main(["explain", str(cnf_path), "--instance=-1,-2,3",
                 "--cache-dir", str(tmp_path / "cache")]) == 2
    err = capsys.readouterr().err
    assert "negative decision" in err


def test_cli_explain_smallest_and_budget(tmp_path, capsys):
    from repro.cli import main
    cnf_path = tmp_path / "g.cnf"
    cnf_path.write_text("p cnf 4 2\n1 2 0\n3 4 0\n")
    assert main(["explain", str(cnf_path), "--instance", "1,2,3,4",
                 "--smallest",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "s reasons 1 complete" in out
