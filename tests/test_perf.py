"""Tests for the perf layer: instrumentation primitives, engine stats
wiring, and a smoke run of the benchmark driver."""

import json
import os
import subprocess
import sys

import pytest

from repro.compile.dnnf_compiler import DnnfCompiler
from repro.logic.cnf import Cnf
from repro.perf import Counter, Timer, format_stats
from repro.sat.counter import ModelCounter

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestCounter:
    def test_incr_and_lookup(self):
        stats = Counter()
        stats.incr("propagations")
        stats.incr("propagations", 3)
        assert stats["propagations"] == 4
        assert stats["missing"] == 0
        assert "propagations" in stats
        assert "missing" not in stats

    def test_iteration_sorted(self):
        stats = Counter(b=2, a=1)
        assert list(stats) == [("a", 1), ("b", 2)]
        assert stats.as_dict() == {"a": 1, "b": 2}

    def test_merge_and_clear(self):
        a = Counter(x=1)
        b = Counter(x=2, y=5)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 5
        a.clear()
        assert not a

    def test_format_stats(self):
        stats = Counter(decisions=7)
        assert format_stats(stats) == "c decisions 7"


class TestTimer:
    def test_accumulates_across_uses(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed >= first >= 0.0
        timer.reset()
        assert timer.elapsed == 0.0


class TestEngineWiring:
    """The engines must actually feed the counters on their hot paths."""

    CNF = Cnf([(1, 2, 3), (-1, 2), (-2, 3), (1, -3), (2, 4), (-4, 1)],
              num_vars=4)

    def test_model_counter_stats(self):
        counter = ModelCounter()
        counter.count(self.CNF)
        assert counter.stats["propagations"] > 0
        assert counter.stats["decisions"] > 0
        assert counter.decisions == counter.stats["decisions"]

    def test_compiler_stats(self):
        compiler = DnnfCompiler()
        compiler.compile(self.CNF)
        assert compiler.stats["decisions"] > 0
        assert compiler.decisions == compiler.stats["decisions"]

    def test_sdd_apply_stats(self):
        from repro.sdd.compiler import compile_cnf_sdd
        from repro.vtree.construct import vtree_from_order
        vtree = vtree_from_order(range(1, 5), "balanced")
        _, manager = compile_cnf_sdd(self.CNF, vtree=vtree)
        assert manager.stats["apply_calls"] > 0

    def test_kernel_memoises_repeated_queries(self):
        from repro.nnf.queries import model_count
        root = DnnfCompiler().compile(self.CNF)
        stats = Counter()
        model_count(root, stats=stats)
        assert stats["kernel_memo_hits"] == 0
        model_count(root, stats=stats)
        assert stats["kernel_memo_hits"] == 1


@pytest.mark.tier2_bench
def test_run_all_quick_smoke(tmp_path):
    """`run_all.py --quick --skip-figures` runs, emits a valid BENCH
    json, and both engines of every scenario agree."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "benchmarks",
                                      "run_all.py"),
         "--quick", "--skip-figures", "--output-dir", str(tmp_path),
         "--scenario-timeout", "240"],
        env=env, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    written = list(tmp_path.glob("BENCH_*.json"))
    assert len(written) == 1
    report = json.loads(written[0].read_text())
    assert report["schema"] == "repro-bench/1"
    assert report["quick"] is True
    assert set(report["scenarios"]) == {
        "sharp_sat", "dnnf_compile", "repeated_wmc", "batched_wmc",
        "batched_marginals", "psdd_marginals", "classifier_scoring",
        "warm_compile", "anytime_bounds", "restart_compile",
        "verify_overhead", "codegen_kernel", "warm_mmap",
        "serve_throughput", "minimize", "proof_overhead",
        "explain_throughput"}
    for name, scenario in report["scenarios"].items():
        assert scenario["agree"] is True, name
        # the per-scenario deadline guard must not have tripped
        assert "budget_exceeded" not in scenario, name
        # sub-0.1ms batched passes legitimately round to 0.0
        assert scenario["optimized_s"] >= 0
    for name in ("sharp_sat", "dnnf_compile", "repeated_wmc",
                 "batched_wmc"):
        assert report["scenarios"][name]["counters"]["optimized"]
    warm = report["scenarios"]["warm_compile"]
    # a warm artifact-store compile is a file read + parse + lift —
    # it must beat the cold search by a wide margin
    assert warm["speedup"] >= 5, warm
    assert warm["cache_hit_rate"] > 0
    assert warm["counters"]["optimized"]["artifact_cache_hits"] == 1
    anytime = report["scenarios"]["anytime_bounds"]
    # intervals must tighten monotonically as the node budget grows,
    # ending exact at the largest budget of the quick instance
    widths = [point["width_fraction"] for point in anytime["curve"]]
    assert widths == sorted(widths, reverse=True), widths
    assert anytime["curve"][-1]["exact"] is True, anytime["curve"]
    restart = report["scenarios"]["restart_compile"]
    # the first attempt is budgeted to fail; a later one must win
    assert restart["attempts"][0]["outcome"].startswith("budget:")
    assert restart["winner"] is not None, restart["attempts"]
    codegen = report["scenarios"]["codegen_kernel"]
    # the generated evaluator must beat the interpreted loops by an
    # order of magnitude on scalar WMC/#SAT (the PR's acceptance bar)
    assert codegen["speedup"] >= 10, codegen
    assert codegen["counters"]["optimized"]["codegen_compiles"] == 1
    assert codegen["counters"]["optimized"].get(
        "codegen_fallbacks", 0) == 0, codegen
    mmap_warm = report["scenarios"]["warm_mmap"]
    # decoding the binary CSR sidecar must beat re-parsing the text
    assert mmap_warm["speedup"] > 1, mmap_warm
    assert mmap_warm["counters"]["optimized"]["artifact_mmap_hits"] > 0
    serve = report["scenarios"]["serve_throughput"]
    # concurrent duplicate compiles must collapse onto one compilation
    # (the acceptance bar for the duplicate-heavy mix)
    assert serve["dedup_hit_rate"] > 0.8, serve
    # served warm queries must stay within 10x of the single-process
    # warm query cost — the service overhead bound
    assert serve["p50_ms"] < 10 * max(serve["direct_warm_query_ms"],
                                      0.05), serve
    assert serve["rps"] > 0 and serve["p99_ms"] >= serve["p50_ms"]
    minimize = report["scenarios"]["minimize"]
    # certified pruning must shrink Tseitin-heavy circuits by at least
    # 30% total (the pass-manager PR's acceptance bar)
    assert minimize["node_reduction"] >= 0.3, minimize
    assert minimize["nodes_after"] < minimize["nodes_before"]
    assert minimize["counters"]["forgotten"] > 0, minimize
    assert serve["counters"]["statuses"].keys() == {"200"}, serve
    proof = report["scenarios"]["proof_overhead"]
    # trace emission must stay within 2x of a plain compile (the
    # proof-logging PR's acceptance bar), and the replay must be live
    assert proof["overhead_ratio"] <= 2.0, proof
    assert proof["counters"]["optimized"]["proof_steps"] > 0, proof
    assert proof["checker_steps_per_s"] > 0, proof
    explain = report["scenarios"]["explain_throughput"]
    # the enumerator must actually produce reasons, and the probe
    # accounting must be live
    assert explain["reasons"] > 0, explain
    assert explain["reasons_per_s"] > 0, explain
    assert explain["p50_delay_ms"] >= 0, explain
    assert explain["counters"]["explain_probes"] > 0, explain


class TestDriftNormalizedGate:
    """compare() divides ratios by the median host drift so a uniform
    machine slowdown doesn't read as a dozen regressions — while a
    baseline too small to estimate drift (< 4 signalful scenarios)
    keeps the raw, un-normalized gate."""

    @staticmethod
    def _run_all():
        sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
        try:
            import run_all
        finally:
            sys.path.pop(0)
        return run_all

    @staticmethod
    def _report(timings):
        return {"quick": True, "figures": [],
                "scenarios": {name: {"optimized_s": seconds}
                              for name, seconds in timings.items()}}

    def test_uniform_drift_not_flagged(self):
        run_all = self._run_all()
        baseline = self._report(
            {f"s{i}": 1.0 for i in range(6)})
        # every scenario uniformly 1.4x slower: pure host drift
        current = self._report({f"s{i}": 1.4 for i in range(6)})
        outcome = run_all.compare(current, baseline)
        assert outcome["comparable"]
        assert outcome["drift"] == pytest.approx(1.4)
        assert outcome["regressions"] == []

    def test_real_regression_survives_drift(self):
        run_all = self._run_all()
        baseline = self._report(
            {f"s{i}": 1.0 for i in range(6)})
        timings = {f"s{i}": 1.4 for i in range(6)}
        timings["s3"] = 4.0   # 4x raw, ~2.9x after drift: real
        outcome = run_all.compare(self._report(timings), baseline)
        assert [r["what"] for r in outcome["regressions"]] == \
            ["scenario:s3"]

    def test_small_baselines_stay_raw(self):
        run_all = self._run_all()
        baseline = self._report({"a": 1.0, "b": 1.0})
        outcome = run_all.compare(
            self._report({"a": 1.4, "b": 1.4}), baseline)
        # two samples cannot estimate drift; the raw gate still fires
        assert outcome["drift"] == 1.0
        assert len(outcome["regressions"]) == 2

    def test_drift_clamped(self):
        run_all = self._run_all()
        baseline = self._report({f"s{i}": 1.0 for i in range(6)})
        # a uniform 5x "drift" is not host noise — the clamp keeps
        # enough of the ratio visible to flag every scenario
        outcome = run_all.compare(
            self._report({f"s{i}": 5.0 for i in range(6)}), baseline)
        assert outcome["drift"] == 2.0
        assert len(outcome["regressions"]) == 6


@pytest.mark.tier2_bench
def test_run_all_regression_gate(tmp_path):
    """A baseline with impossibly-fast timings must trip the regression
    gate (exit 2) — and `--advisory` must downgrade it to a warning."""
    fake_baseline = {
        "schema": "repro-bench/1", "quick": True, "figures": [],
        "scenarios": {"sharp_sat": {"optimized_s": 1e-9},
                      "repeated_wmc": {"optimized_s": 1e-9}},
    }
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    for advisory, expected in ((False, 2), (True, 0)):
        out_dir = tmp_path / ("advisory" if advisory else "strict")
        out_dir.mkdir()
        (out_dir / "BENCH_00000101-000000.json").write_text(
            json.dumps(fake_baseline))
        argv = [sys.executable,
                os.path.join(REPO_ROOT, "benchmarks", "run_all.py"),
                "--quick", "--skip-figures", "--output-dir",
                str(out_dir)]
        if advisory:
            argv.append("--advisory")
        proc = subprocess.run(argv, env=env, capture_output=True,
                              text=True, timeout=600)
        assert proc.returncode == expected, \
            (advisory, proc.stdout, proc.stderr)
        assert "regression(s) vs" in proc.stdout
