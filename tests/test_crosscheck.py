"""Property-based cross-checks for the hot-path engines.

Every optimised engine introduced by the performance layer is compared,
on random 3-CNFs of up to 14 variables, against (a) its legacy
reference implementation and (b) brute-force enumeration:

* watched-literal ``unit_propagate`` vs the seed rescan loop — residual
  clause lists and implied assignments must be *identical*;
* ``solve`` (iterative watched solver) vs ``solve_legacy`` — SAT
  verdicts agree and returned models actually satisfy the formula;
* ``ModelCounter`` in every propagator/cache configuration vs brute
  force vs counting on the compiled Decision-DNNF;
* dense-array kernel queries vs the seed recursive query module
  (``repro.nnf.queries_legacy``).

Plus a regression test that per-circuit kernel memoisation survives
conditioned queries (conditioning must not poison cached pure results).
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.compile.dnnf_compiler import DnnfCompiler
from repro.logic.cnf import Cnf
from repro.nnf import queries, queries_legacy
from repro.perf import Counter
from repro.sat import ModelCounter, solve, unit_propagate
from repro.sat.dpll import solve_legacy, unit_propagate_legacy


def cnfs(max_var=14, max_clauses=24):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


def brute_force_count(cnf):
    total = 0
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if all(any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
               for clause in cnf.clauses):
            total += 1
    return total


@settings(max_examples=60, deadline=None)
@given(cnfs(max_var=8, max_clauses=16))
def test_watched_propagation_matches_legacy(cnf):
    """The watched engine must be a drop-in for the rescan loop: same
    residual, same implied assignment, same conflict verdict."""
    watched_assignment, legacy_assignment = {}, {}
    watched = unit_propagate(list(cnf.clauses), watched_assignment)
    legacy = unit_propagate_legacy(list(cnf.clauses), legacy_assignment)
    if legacy is None:
        assert watched is None
    else:
        assert watched == legacy
        assert watched_assignment == legacy_assignment


@settings(max_examples=60, deadline=None)
@given(cnfs(max_var=10, max_clauses=20))
def test_solvers_agree(cnf):
    fast = solve(cnf)
    slow = solve_legacy(cnf)
    assert (fast is None) == (slow is None)
    if fast is not None:
        assert cnf.evaluate(fast)
        assert cnf.evaluate(slow)


@settings(max_examples=40, deadline=None)
@given(cnfs(max_var=14, max_clauses=24))
def test_counters_and_compiler_agree_with_brute_force(cnf):
    """Trail counter, legacy counter, and counting on the compiled
    circuit all equal brute force — in every configuration."""
    expected = brute_force_count(cnf)
    full = range(1, cnf.num_vars + 1)
    for propagator in ("watched", "legacy"):
        for cache_mode in ("hash", "exact"):
            counter = ModelCounter(propagator=propagator,
                                   cache_mode=cache_mode)
            assert counter.count(cnf) == expected
        root = DnnfCompiler(propagator=propagator).compile(cnf)
        assert queries.model_count(root, full) == expected


@settings(max_examples=40, deadline=None)
@given(cnfs(max_var=10, max_clauses=18),
       st.randoms(use_true_random=False))
def test_kernel_queries_match_legacy_queries(cnf, rng):
    root = DnnfCompiler().compile(cnf)
    full = range(1, cnf.num_vars + 1)
    assert queries.is_satisfiable_dnnf(root) == \
        queries_legacy.is_satisfiable_dnnf(root)
    assert queries.model_count(root, full) == \
        queries_legacy.model_count(root, full)
    weights = {}
    for var in full:
        p = rng.random()
        weights[var], weights[-var] = p, 1.0 - p
    fast = queries.weighted_model_count(root, weights, full)
    slow = queries_legacy.weighted_model_count(root, weights, full)
    assert abs(fast - slow) <= 1e-9 * max(1.0, abs(slow))
    fast_mpe = queries.mpe(root, weights, full)
    slow_mpe = queries_legacy.mpe(root, weights, full)
    # both report -inf on unsatisfiable circuits; -inf - -inf is nan
    assert fast_mpe[0] == slow_mpe[0] or \
        abs(fast_mpe[0] - slow_mpe[0]) <= 1e-9 * max(1.0, slow_mpe[0])


def test_kernel_memo_survives_conditioning():
    """Regression: a conditioned (evidence-weighted) query between two
    pure queries must not corrupt the per-circuit memo."""
    cnf = Cnf([(1, 2, 3), (-1, 2), (-2, 4), (3, -4), (1, -3, 4)],
              num_vars=4)
    root = DnnfCompiler().compile(cnf)
    from repro.nnf.transform import smooth
    smoothed = smooth(root)
    weights = {v: 0.5 for v in range(1, 5)}
    weights.update({-v: 0.5 for v in range(1, 5)})
    before = queries.model_count(smoothed)
    conditioned = queries.condition_evaluate(smoothed, {1: True}, weights)
    stats = Counter()
    after = queries.model_count(smoothed, stats=stats)
    assert after == before
    assert stats["kernel_memo_hits"] == 1
    assert 0.0 <= conditioned <= 1.0


def test_counter_reentrant_under_nested_counts():
    """One ModelCounter instance serves interleaved counts without the
    calls clobbering each other's cache or statistics."""
    counter = ModelCounter()
    a = Cnf([(1, 2), (-1, 2), (2, 3)], num_vars=3)
    b = Cnf([(1,), (2, 3), (-2, -3)], num_vars=3)
    count_a, count_b = counter.count(a), counter.count(b)
    assert count_a == brute_force_count(a)
    assert count_b == brute_force_count(b)
    # stats reflect the most recently completed call
    decisions_b = counter.decisions
    counter.count(b)
    assert counter.decisions == decisions_b
