"""Tests for PSDDs: construction, semantics, learning, queries, sampling."""

import math
import random

import pytest

from repro.logic import VarMap, iter_assignments, parse, to_cnf
from repro.sdd import SddManager, compile_cnf_sdd, compile_formula_sdd
from repro.psdd import (entropy, kl_divergence, learn_parameters,
                        log_likelihood, marginal, mpe, psdd_from_sdd,
                        sample, sample_dataset, support_size,
                        variable_marginals)
from repro.vtree import balanced_vtree, right_linear_vtree

P, L, A, K = 1, 2, 3, 4  # variable numbering of the Fig 15 constraint


def enrollment_psdd():
    """The paper's running example: compile the Fig 15 constraint."""
    vm = VarMap()
    f = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    root, manager = compile_cnf_sdd(to_cnf(f))
    return psdd_from_sdd(root), f


def enrollment_data():
    rows = [((1, 1, 1, 1), 6), ((1, 1, 1, 0), 10), ((1, 0, 1, 1), 4),
            ((1, 0, 1, 0), 54), ((0, 1, 1, 1), 8), ((0, 0, 1, 1), 4),
            ((0, 0, 1, 0), 114), ((1, 1, 0, 0), 10), ((1, 0, 0, 0), 30)]
    return [({L: bool(l), K: bool(k), P: bool(p), A: bool(a)}, c)
            for (l, k, p, a), c in rows]


def test_support_is_constraint_models():
    psdd, f = enrollment_psdd()
    assert support_size(psdd) == 9
    for assignment in iter_assignments([1, 2, 3, 4]):
        assert psdd.contains(assignment) == f.evaluate(assignment)


def test_initial_distribution_normalized():
    """Even before learning, probabilities sum to 1 over the support and
    vanish off it (the Fig 14 semantics)."""
    psdd, f = enrollment_psdd()
    total = 0.0
    for assignment in iter_assignments([1, 2, 3, 4]):
        p = psdd.probability(assignment)
        if not f.evaluate(assignment):
            assert p == 0.0
        total += p
    assert total == pytest.approx(1.0)


def test_learning_normalizes_and_respects_support():
    psdd, f = enrollment_psdd()
    data = enrollment_data()
    learn_parameters(psdd, data)
    total = sum(psdd.probability(a) for a in iter_assignments([1, 2, 3, 4]))
    assert total == pytest.approx(1.0)
    for assignment in iter_assignments([1, 2, 3, 4]):
        if not f.evaluate(assignment):
            assert psdd.probability(assignment) == 0.0


def test_learning_rejects_invalid_examples():
    psdd, _f = enrollment_psdd()
    invalid = {P: False, L: False, A: False, K: False}  # violates P|L
    with pytest.raises(ValueError):
        learn_parameters(psdd, [(invalid, 1)])


def test_learning_rejects_negative_counts():
    psdd, _f = enrollment_psdd()
    valid = {P: True, L: True, A: True, K: True}
    with pytest.raises(ValueError):
        learn_parameters(psdd, [(valid, -1)])


def test_learned_marginals_match_empirical():
    """Single-variable marginals of the ML fit match the data exactly
    on this structure (checked numerically elsewhere to be the true ML)."""
    psdd, _f = enrollment_psdd()
    data = enrollment_data()
    learn_parameters(psdd, data)
    total = sum(c for _a, c in data)
    marginals = variable_marginals(psdd)
    for var in (P, L, A, K):
        empirical = sum(c for a, c in data if a[var]) / total
        assert marginals[var] == pytest.approx(empirical)


def test_ml_is_optimal_against_perturbations():
    """Perturbing any learned parameter cannot improve the likelihood."""
    psdd, _f = enrollment_psdd()
    data = enrollment_data()
    learn_parameters(psdd, data)
    best = log_likelihood(psdd, data)
    rng = random.Random(1)
    for _ in range(20):
        node = rng.choice([n for n in psdd.descendants()
                           if n.is_decision and len(n.elements) > 1])
        saved = [e[2] for e in node.elements]
        noise = [max(t + rng.uniform(-0.05, 0.05), 1e-6) for t in saved]
        scale = sum(noise)
        for e, t in zip(node.elements, noise):
            e[2] = t / scale
        assert log_likelihood(psdd, data) <= best + 1e-9
        for e, t in zip(node.elements, saved):
            e[2] = t


def test_structural_expressiveness_limit_documented():
    """The compressed SDD structure cannot always reproduce the
    empirical distribution — ML fits within the structure (the paper:
    maximum likelihood 'under the chosen vtree')."""
    psdd, _f = enrollment_psdd()
    data = enrollment_data()
    learn_parameters(psdd, data)
    total = sum(c for _a, c in data)
    exact = [abs(psdd.probability(a) - c / total) < 1e-9
             for a, c in data]
    # marginals match (see above) but at least some joint entries differ
    assert not all(exact)


def test_laplace_smoothing():
    psdd, f = enrollment_psdd()
    # train on a single example; smoothing keeps other support points alive
    example = {P: True, L: True, A: True, K: True}
    learn_parameters(psdd, [(example, 5)], alpha=1.0)
    for assignment in iter_assignments([1, 2, 3, 4]):
        if f.evaluate(assignment):
            assert psdd.probability(assignment) > 0.0


def test_marginal_query_against_enumeration():
    psdd, _f = enrollment_psdd()
    learn_parameters(psdd, enrollment_data())
    for evidence in ({P: True}, {L: False}, {A: True, K: False},
                     {P: True, L: True, A: False}):
        brute = sum(psdd.probability(a)
                    for a in iter_assignments([1, 2, 3, 4])
                    if all(a[v] == val for v, val in evidence.items()))
        assert marginal(psdd, evidence) == pytest.approx(brute)


def test_mpe_against_enumeration():
    psdd, _f = enrollment_psdd()
    learn_parameters(psdd, enrollment_data())
    inst, p = mpe(psdd)
    brute = max(iter_assignments([1, 2, 3, 4]), key=psdd.probability)
    assert p == pytest.approx(psdd.probability(brute))
    assert psdd.probability(inst) == pytest.approx(p)


def test_mpe_with_evidence():
    psdd, _f = enrollment_psdd()
    learn_parameters(psdd, enrollment_data())
    inst, p = mpe(psdd, {A: True})
    assert inst[A] is True
    brute = max((a for a in iter_assignments([1, 2, 3, 4]) if a[A]),
                key=psdd.probability)
    assert p == pytest.approx(psdd.probability(brute))


def test_entropy_against_enumeration():
    psdd, _f = enrollment_psdd()
    learn_parameters(psdd, enrollment_data(), alpha=0.5)
    brute = 0.0
    for assignment in iter_assignments([1, 2, 3, 4]):
        p = psdd.probability(assignment)
        if p > 0:
            brute -= p * math.log(p)
    assert entropy(psdd) == pytest.approx(brute)


def test_kl_divergence_against_enumeration():
    psdd_p, _f = enrollment_psdd()
    learn_parameters(psdd_p, enrollment_data(), alpha=1.0)
    # KL requires shared structure: clone p and train on skewed data
    psdd_q = psdd_p.clone()
    data_q = [(a, c * (2 if a[P] else 1)) for a, c in enrollment_data()]
    learn_parameters(psdd_q, data_q, alpha=1.0)
    kl = kl_divergence(psdd_p, psdd_q)
    brute = 0.0
    for assignment in iter_assignments([1, 2, 3, 4]):
        pp = psdd_p.probability(assignment)
        qq = psdd_q.probability(assignment)
        if pp > 0:
            brute += pp * math.log(pp / qq)
    assert kl == pytest.approx(brute)
    assert kl > 0


def test_clone_is_independent():
    psdd, _f = enrollment_psdd()
    learn_parameters(psdd, enrollment_data())
    copy = psdd.clone()
    before = psdd.probability({P: True, L: True, A: True, K: True})
    learn_parameters(copy, [({P: True, L: True, A: True, K: True}, 1)])
    assert psdd.probability({P: True, L: True, A: True, K: True}) == \
        pytest.approx(before)
    assert copy.probability({P: True, L: True, A: True, K: True}) == \
        pytest.approx(1.0)


def test_kl_zero_on_self():
    psdd, _f = enrollment_psdd()
    learn_parameters(psdd, enrollment_data(), alpha=1.0)
    assert kl_divergence(psdd, psdd) == pytest.approx(0.0)


def test_sampling_matches_distribution():
    psdd, _f = enrollment_psdd()
    learn_parameters(psdd, enrollment_data(), alpha=0.5)
    rng = random.Random(7)
    n = 4000
    counts = {}
    for _ in range(n):
        s = sample(psdd, rng)
        assert psdd.contains(s)
        key = tuple(sorted(s.items()))
        counts[key] = counts.get(key, 0) + 1
    for key, count in counts.items():
        p = psdd.probability(dict(key))
        assert abs(count / n - p) < 0.05


def test_sample_dataset_aggregation():
    psdd, _f = enrollment_psdd()
    learn_parameters(psdd, enrollment_data(), alpha=0.5)
    data = sample_dataset(psdd, 100, random.Random(3))
    assert sum(c for _a, c in data) == 100
    relearned, _f2 = enrollment_psdd()
    learn_parameters(relearned, data)  # samples are always in-support
    assert log_likelihood(relearned, data) > float("-inf")


def test_psdd_over_trivial_true_space():
    manager = SddManager(balanced_vtree([1, 2, 3]))
    psdd = psdd_from_sdd(manager.true)
    assert support_size(psdd) == 8
    learn_parameters(psdd, [({1: True, 2: False, 3: True}, 3),
                            ({1: False, 2: False, 3: True}, 1)])
    # fully factorized: marginals are empirical
    assert marginal(psdd, {1: True}) == pytest.approx(0.75)
    assert marginal(psdd, {3: True}) == pytest.approx(1.0)


def test_psdd_rejects_empty_space():
    manager = SddManager(balanced_vtree([1, 2]))
    with pytest.raises(ValueError):
        psdd_from_sdd(manager.false)


def test_psdd_size_and_parameter_count():
    psdd, _f = enrollment_psdd()
    assert psdd.size() > 0
    assert psdd.parameter_count() > 0


def test_right_linear_vtree_psdd():
    vm = VarMap()
    f = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    manager = SddManager(right_linear_vtree([1, 2, 3, 4]))
    root = compile_formula_sdd(f, manager)
    psdd = psdd_from_sdd(root)
    assert support_size(psdd) == 9
    learn_parameters(psdd, enrollment_data())
    total = sum(psdd.probability(a) for a in iter_assignments([1, 2, 3, 4]))
    assert total == pytest.approx(1.0)
