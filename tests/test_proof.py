"""Proof-logged compilation (`repro.proof` + `repro.analyze.proofs`):

* the compiler's ``proof=True`` trace replays to ``PROVED`` on
  handcrafted edge cases and hundreds of randomized CNFs, with the
  checker's derived model count cross-checked against brute force
  (zero false refutations is the headline acceptance bar);
* the fault matrix: every ``corrupt_artifact`` / ``mutate_artifact``
  / ``mutate_trace`` mode is refuted by ``verify_stored_proof`` — a
  completeness guard fails this file the moment a new fault mode is
  added without a matching checker test;
* store sidecars: ``.proof`` round-trips, the memoised ``.cert``
  verdict demotes (never staleness-serves) when either binding
  changes, refuted artifacts are quarantined, orphan traces are
  garbage-collected;
* the ``proved`` gate mode: unproved circuits are rejected with
  :class:`ProofViolation`, verified compiles answer, and the
  certified smoothing twin inherits the proof;
* the serve and CLI surfaces: ``proof=true`` on ``POST /compile``
  yields ``proved``, and ``repro check --proof`` exits 5 on a
  tampered trace while property violations keep exit 4.
"""

import random
import subprocess
import sys

import pytest

from repro.analyze import (ProofViolation, clear_proved, gate_scope,
                           ir_semantic_digest, is_proved,
                           verify_stored_proof)
from repro.cli import main
from repro.compile.dnnf_compiler import DnnfCompiler
from repro.ir import ArtifactStore, IrBuilder, ir_kernel, nnf_to_ir
from repro.ir.facade import compile_ticket, compile_to_store
from repro.limits import Budget
from repro.limits.faults import (CORRUPT_MODES, MUTATE_MODES,
                                 TRACE_MODES, corrupt_artifact,
                                 mutate_artifact, mutate_trace)
from repro.logic import Cnf
from repro.proof import (INCOMPLETE, PROOF_SCHEMA, PROVED, REFUTED,
                         check_proof, dimacs_digest, parse_header)

SMALL = "p cnf 4 3\n1 2 0\n-1 3 0\n2 -3 4 0\n"
SMALL_COUNT = 7  # by brute force

#: contains a tautological clause, so the compiled circuit carries an
#: ``O(1, -1)`` gate — the shape every mutate_artifact mode (including
#: drop-smooth) can hit
TAUT = "p cnf 3 2\n1 -1 0\n2 3 0\n"


def compile_with_trace(cnf):
    compiler = DnnfCompiler(store=None, proof=True)
    node = compiler.compile(cnf)
    assert compiler.last_proof is not None
    return node, compiler.last_proof


def random_cnf(rng):
    num_vars = rng.randint(1, 6)
    clauses = [[rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 3))]
               for _ in range(rng.randint(0, 8))]
    return Cnf(clauses, num_vars)


def proved_store_entry(root, dimacs=TAUT):
    """A store holding one freshly compiled, freshly proved key."""
    clear_proved()
    store = ArtifactStore(root)
    ticket = compile_ticket(dimacs)
    outcome = compile_to_store(ticket, store, proof=True)
    assert outcome.proved is True
    return store, ticket


# -- the emitter + checker loop ----------------------------------------------
class TestCheckerAcceptsCompiler:
    @pytest.mark.parametrize("clauses, num_vars, count", [
        ([], 3, 8),                             # no clauses: tautology
        ([[]], 2, 0),                           # empty clause: unsat
        ([[1], [2]], 2, 1),                     # units only
        ([[1], [-1]], 1, 0),                    # root conflict
        ([[1, -1]], 1, 2),                      # tautological clause
        ([[1, 2], [3, 4]], 4, 9),               # two components
        ([[1, 2], [-2, 3], [-3, 4]], 4, 5),     # chained decisions
        ([[1, 2], [-1, 2], [1, -2]], 2, 1),     # forced after split
    ])
    def test_edge_cases_prove(self, clauses, num_vars, count):
        cnf = Cnf(clauses, num_vars)
        _, trace = compile_with_trace(cnf)
        result = check_proof(cnf.to_dimacs(), trace)
        assert result.verdict == PROVED, result.reason
        assert result.model_count == count

    @pytest.mark.parametrize("backend", ["codegen", "interp"])
    def test_no_false_refutations_randomized(self, backend, monkeypatch):
        # the checker never touches the evaluation backend, but the
        # acceptance bar is explicit: zero false refutations under
        # either REPRO_BACKEND, 250 seeds each (500 total)
        monkeypatch.setenv("REPRO_BACKEND", backend)
        rng = random.Random(20260808 if backend == "codegen" else 7)
        for _ in range(250):
            cnf = random_cnf(rng)
            _, trace = compile_with_trace(cnf)
            result = check_proof(cnf.to_dimacs(), trace)
            assert result.verdict == PROVED, \
                (cnf.clauses, result.line, result.reason)
            assert result.model_count == cnf.model_count(), cnf.clauses

    def test_cache_hits_prove_via_back_references(self):
        # component caching fires on repeated sub-CNFs; the trace must
        # still close via `h` back-references
        clauses = [[1, 2], [3, 4], [-1, 3, 4], [-2, 3, 4]]
        cnf = Cnf(clauses, 4)
        _, trace = compile_with_trace(cnf)
        result = check_proof(cnf.to_dimacs(), trace)
        assert result.verdict == PROVED, result.reason
        assert result.model_count == cnf.model_count()

    def test_trace_digest_matches_stored_ir(self, tmp_path):
        store, ticket = proved_store_entry(tmp_path, SMALL)
        trace = store.load_proof(ticket.key)
        result = check_proof(ticket.dimacs, trace)
        assert result.verdict == PROVED
        ir = store.load_nnf(ticket.key)
        assert ir_semantic_digest(ir) == result.circuit_digest


class TestTraceFormat:
    def test_header_round_trips(self):
        cnf = Cnf([[1, 2], [-1, 3]], 3)
        _, trace = compile_with_trace(cnf)
        assert trace.splitlines()[0] == PROOF_SCHEMA
        fields, steps, offset = parse_header(trace)
        assert fields["vars"] == "3"
        assert fields["clauses"] == "2"
        assert fields["dimacs"] == dimacs_digest(cnf.to_dimacs())
        assert offset == 5 and steps  # self-delimiting fixed header

    def test_wrong_dimacs_is_refuted(self):
        _, trace = compile_with_trace(Cnf([[1, 2]], 2))
        other = Cnf([[1], [2]], 2)
        result = check_proof(other.to_dimacs(), trace)
        assert result.verdict == REFUTED
        assert "DIMACS" in result.reason

    def test_malformed_trace_is_refuted_not_raised(self):
        for garbage in ("", "not a proof", "repro-proof/1\nbroken"):
            result = check_proof(SMALL, garbage)
            assert result.verdict == REFUTED

    def test_refutation_points_at_first_bad_line(self):
        cnf = Cnf([[1, 2], [-1, 3]], 3)
        _, trace = compile_with_trace(cnf)
        lines = trace.splitlines()
        del lines[6]
        result = check_proof(cnf.to_dimacs(), "\n".join(lines) + "\n")
        assert result.verdict == REFUTED
        assert result.line is not None

    def test_budget_expiry_is_incomplete(self):
        cnf = Cnf([[1, 2], [-2, 3], [-3, 4]], 4)
        _, trace = compile_with_trace(cnf)
        result = check_proof(cnf.to_dimacs(), trace,
                             budget=Budget(max_nodes=1))
        assert result.verdict == INCOMPLETE
        result = check_proof(cnf.to_dimacs(), trace, budget=Budget())
        assert result.verdict == PROVED


# -- the fault matrix ---------------------------------------------------------
def _corrupt(mode):
    def apply(store, ticket):
        corrupt_artifact(store, ticket.key, "nnf", mode=mode)
    return apply


def _mutate(mode):
    def apply(store, ticket):
        mutate_artifact(store, ticket.key, "nnf", mode=mode)
    return apply


def _tamper(mode):
    def apply(store, ticket):
        trace = store.load_proof(ticket.key)
        store.save_proof(ticket.key, mutate_trace(trace, mode))
    return apply


FAULT_APPLIERS = {
    **{mode: _corrupt(mode) for mode in CORRUPT_MODES},
    **{mode: _mutate(mode) for mode in MUTATE_MODES},
    **{mode: _tamper(mode) for mode in TRACE_MODES},
}


class TestFaultMatrix:
    def test_matrix_covers_every_fault_mode(self):
        # adding a fault mode to repro.limits.faults without a row
        # here must fail CI
        assert set(FAULT_APPLIERS) == \
            set(CORRUPT_MODES) | set(MUTATE_MODES) | set(TRACE_MODES)

    @pytest.mark.parametrize("mode", sorted(FAULT_APPLIERS))
    def test_every_fault_is_refuted_and_quarantined(self, mode, tmp_path):
        store, ticket = proved_store_entry(tmp_path)
        FAULT_APPLIERS[mode](store, ticket)
        clear_proved()
        result = verify_stored_proof(store, ticket.key, ticket.dimacs)
        assert result.verdict == REFUTED, \
            f"{mode} slid through: {result.reason}"
        # a refuted proof quarantines the artifact: the key no longer
        # serves, and the memoised verdict is gone with it
        assert store.load_nnf(ticket.key) is None
        assert store.proof_status(ticket.key) != PROVED

    @pytest.mark.parametrize("index", range(4))
    def test_trace_mutations_at_deeper_steps(self, index, tmp_path):
        store, ticket = proved_store_entry(
            tmp_path, "p cnf 4 3\n1 2 0\n-2 3 0\n3 -4 0\n")
        trace = store.load_proof(ticket.key)
        store.save_proof(ticket.key,
                         mutate_trace(trace, "drop-step", index=index))
        clear_proved()
        result = verify_stored_proof(store, ticket.key, ticket.dimacs)
        assert result.verdict == REFUTED

    def test_mutate_trace_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            mutate_trace("repro-proof/1\n", mode="nonsense")


# -- store sidecars -----------------------------------------------------------
class TestStoreSidecars:
    def test_proof_round_trip_and_memoisation(self, tmp_path):
        store, ticket = proved_store_entry(tmp_path, SMALL)
        assert store.load_proof(ticket.key).startswith(PROOF_SCHEMA)
        assert store.proof_status(ticket.key) == PROVED
        clear_proved()
        result = verify_stored_proof(store, ticket.key, ticket.dimacs)
        assert result.verdict == PROVED
        assert result.reason == "memoised .cert verdict"
        assert result.steps == 0  # no replay on the warm path

    def test_warm_compile_serves_proved_without_recheck(self, tmp_path):
        store, ticket = proved_store_entry(tmp_path, SMALL)
        clear_proved()
        outcome = compile_to_store(ticket, store, proof=True)
        assert outcome.cached is True
        assert outcome.proved is True

    def test_verdict_demotes_when_trace_changes(self, tmp_path):
        store, ticket = proved_store_entry(tmp_path, SMALL)
        path = store.path_for(ticket.key, "proof")
        path.write_text(path.read_text() + "x 9\n")
        assert store.proof_status(ticket.key) is None

    def test_verdict_demotes_when_artifact_changes(self, tmp_path):
        store, ticket = proved_store_entry(tmp_path)
        mutate_artifact(store, ticket.key, "nnf", mode="flip-literal")
        assert store.proof_status(ticket.key) is None

    def test_missing_sidecar_is_refuted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ticket = compile_ticket(SMALL)
        compile_to_store(ticket, store)  # no proof requested
        result = verify_stored_proof(store, ticket.key, ticket.dimacs)
        assert result.verdict == REFUTED
        assert "no .proof sidecar" in result.reason

    def test_gc_reaps_orphan_traces(self, tmp_path):
        store, ticket = proved_store_entry(tmp_path, SMALL)
        store.path_for(ticket.key, "nnf").unlink()
        store.path_for(ticket.key, "csr").unlink()
        store.path_for(ticket.key, "cert").unlink()
        report = store.gc(now=0.0)
        assert report["by_class"]["orphan_proof"]["files"] == 1
        assert not store.path_for(ticket.key, "proof").exists()

    def test_unproof_compile_leaves_no_sidecar(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ticket = compile_ticket(SMALL)
        outcome = compile_to_store(ticket, store)
        assert outcome.proved is None
        assert store.load_proof(ticket.key) is None


# -- the proved gate mode -----------------------------------------------------
def nonsmooth_ddnnf():
    """(x1 ∧ x2) ∨ ¬x1 — decomposable, deterministic, NOT smooth."""
    b = IrBuilder()
    a = b.raw_and((b.literal(1), b.literal(2)))
    return b.finish(b.raw_or((a, b.literal(-1))))


class TestProvedGate:
    def test_unproved_circuit_is_rejected(self):
        clear_proved()
        kernel = ir_kernel(nonsmooth_ddnnf())
        with gate_scope("proved"):
            with pytest.raises(ProofViolation) as exc:
                kernel.model_count()
        assert exc.value.query == "count"
        # scope restored: trust mode answers again
        assert kernel.model_count() == 3

    def test_verified_compile_answers_under_proved(self, tmp_path):
        store, ticket = proved_store_entry(tmp_path, SMALL)
        ir = store.load_nnf(ticket.key)
        assert is_proved(ir)
        with gate_scope("proved"):
            # fresh Decision-DNNF output is non-smooth: the proved
            # gate must repair via the certified twin, which inherits
            # the proof (certified smoothing preserves equivalence)
            assert ir_kernel(ir).model_count() == SMALL_COUNT

    def test_registry_is_process_state(self, tmp_path):
        store, ticket = proved_store_entry(tmp_path, SMALL)
        ir = store.load_nnf(ticket.key)
        clear_proved()
        assert not is_proved(ir)
        with gate_scope("proved"):
            with pytest.raises(ProofViolation):
                ir_kernel(ir).model_count()
        verify_stored_proof(store, ticket.key, ticket.dimacs)
        with gate_scope("proved"):
            assert ir_kernel(ir).model_count() == SMALL_COUNT

    def test_digest_rejects_parameterised_circuits(self):
        from repro.nnf.node import NnfManager
        manager = NnfManager()
        ir = nnf_to_ir(manager.conjoin(manager.literal(1),
                                       manager.literal(2)))
        assert ir_semantic_digest(ir)  # plain circuits digest fine


# -- the serve surface --------------------------------------------------------
class TestServeProof:
    @pytest.fixture()
    def client(self):
        from repro.serve.app import Server, ServerConfig
        from repro.serve.client import ServeClient
        instance = Server(ServerConfig(port=0, workers=0))
        instance.start()
        handle = ServeClient(*instance.address)
        yield handle
        handle.close()
        instance.stop()

    def test_compile_with_proof_reports_proved(self, client):
        status, body = client.compile(SMALL, proof=True)
        assert status == 200 and body["status"] == "ok"
        assert body["proved"] is True
        # warm hit: the memoised verdict still reports proved
        status, body = client.compile(SMALL, proof=True)
        assert status == 200 and body["cached"] and body["proved"]

    def test_compile_without_proof_omits_the_field(self, client):
        status, body = client.compile("p cnf 2 1\n1 2 0\n")
        assert status == 200 and body["status"] == "ok"
        assert "proved" not in body


# -- the CLI ------------------------------------------------------------------
class TestCliProof:
    def test_compile_proof_exits_zero_and_prints_verdict(
            self, tmp_path, capsys):
        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text(SMALL)
        cache = str(tmp_path / "cache")
        assert main(["compile", str(cnf_path), "--proof",
                     "--cache-dir", cache,
                     "-o", str(tmp_path / "out.nnf")]) == 0
        out = capsys.readouterr().out
        assert f"s PROVED mc {SMALL_COUNT}" in out

    def test_check_proof_uses_the_store(self, tmp_path, capsys):
        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text(SMALL)
        cache = str(tmp_path / "cache")
        assert main(["compile", str(cnf_path), "--proof",
                     "--cache-dir", cache]) == 0
        assert main(["check", str(cnf_path), "--proof",
                     "--cache-dir", cache]) == 0
        assert "s PROVED" in capsys.readouterr().out

    def test_check_proof_without_trace_source_is_usage_error(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text(SMALL)
        assert main(["check", str(cnf_path), "--proof"]) == 2

    def test_proof_refuses_multi_shot_modes(self, tmp_path):
        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text(SMALL)
        assert main(["compile", str(cnf_path), "--proof",
                     "--format", "sdd"]) == 2

    def test_exit_5_refuted_proof_subprocess(self, tmp_path):
        cnf = Cnf([[1, 2], [-2, 3], [3, -4]], 4)
        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text(cnf.to_dimacs())
        _, trace = compile_with_trace(cnf)
        tampered = tmp_path / "bad.proof"
        tampered.write_text(mutate_trace(trace, "drop-step", index=1))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check", str(cnf_path),
             "--proof", "--trace", str(tampered)],
            capture_output=True, text=True)
        assert proc.returncode == 5, proc.stderr
        assert "s REFUTED" in proc.stdout

    def test_exit_4_property_violation_subprocess(self, tmp_path):
        # a deterministic, decomposable, NOT smooth circuit: the O arm
        # ¬x1 never mentions x2
        nnf_path = tmp_path / "nonsmooth.nnf"
        nnf_path.write_text(
            "nnf 5 5 2\nL 1\nL 2\nA 2 0 1\nL -1\nO 1 2 2 3\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check", str(nnf_path),
             "--expect", "smooth"],
            capture_output=True, text=True)
        assert proc.returncode == 4, proc.stderr

    def test_intact_trace_exits_zero_subprocess(self, tmp_path):
        cnf = Cnf([[1, 2]], 2)
        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text(cnf.to_dimacs())
        _, trace = compile_with_trace(cnf)
        trace_path = tmp_path / "good.proof"
        trace_path.write_text(trace)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check", str(cnf_path),
             "--proof", "--trace", str(trace_path)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert "s PROVED" in proc.stdout
