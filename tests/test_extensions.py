"""Tests for the optional/extension features: d-DNNF sampling [75],
c2d .nnf i/o, constrained-SDD solvers [61], weighted E-MAJSAT / circuit
MAP, and PSDD multiplication [76]."""

import collections
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bayesnet import map_query, medical_network, random_network
from repro.compile import compile_cnf
from repro.logic import Cnf, iter_assignments
from repro.nnf import (NnfManager, from_nnf_format, model_count,
                       sample_model, sample_models, to_nnf_format)
from repro.psdd import learn_parameters, multiply, psdd_from_sdd
from repro.sdd import SddManager, compile_cnf_sdd, enumerate_models
from repro.solvers import (compile_constrained_sdd, emajsat_brute,
                           emajsat_sdd, majmajsat_brute,
                           majmajsat_histogram_sdd, weighted_emajsat)
from repro.vtree import balanced_vtree
from repro.wmc import WmcPipeline


def cnfs(max_var=5, max_clauses=7):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


# -- sampling from d-DNNF -----------------------------------------------------------

def test_sample_model_is_always_a_model():
    cnf = Cnf([(1, 2), (-2, 3), (1, -4)], num_vars=4)
    root = compile_cnf(cnf)
    rng = random.Random(0)
    for _ in range(100):
        model = sample_model(root, range(1, 5), rng)
        assert cnf.evaluate(model)
        assert set(model) == {1, 2, 3, 4}


def test_sampling_is_uniform():
    cnf = Cnf([(1, 2)], num_vars=3)  # 6 models
    root = compile_cnf(cnf)
    rng = random.Random(1)
    counts = collections.Counter()
    n = 6000
    for model in sample_models(root, [1, 2, 3], n, rng):
        counts[tuple(sorted(model.items()))] += 1
    assert len(counts) == 6
    for count in counts.values():
        assert abs(count / n - 1 / 6) < 0.03


def test_weighted_sampling():
    cnf = Cnf([(1,)], num_vars=2)
    root = compile_cnf(cnf)
    weights = {1: 1.0, -1: 0.0, 2: 0.9, -2: 0.1}
    rng = random.Random(2)
    models = sample_models(root, [1, 2], 2000, rng, weights)
    share = sum(1 for m in models if m[2]) / len(models)
    assert abs(share - 0.9) < 0.03


def test_sample_unsat_raises():
    root = compile_cnf(Cnf([(1,), (-1,)]))
    with pytest.raises(ValueError):
        sample_model(root, [1], random.Random(0))


# -- .nnf i/o ------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(cnfs())
def test_nnf_format_roundtrip_preserves_semantics(cnf):
    root = compile_cnf(cnf)
    text = to_nnf_format(root)
    back = from_nnf_format(text)
    for assignment in iter_assignments(range(1, cnf.num_vars + 1)):
        assert back.evaluate(assignment) == cnf.evaluate(assignment) or \
            not root.variables()
    if root.variables():
        full = range(1, cnf.num_vars + 1)
        assert model_count(back, full) == model_count(root, full)


def test_nnf_format_shape():
    manager = NnfManager()
    f = manager.disjoin(
        manager.conjoin(manager.literal(1), manager.literal(2)),
        manager.conjoin(manager.literal(-1), manager.literal(3)))
    text = to_nnf_format(f)
    lines = text.splitlines()
    assert lines[0].startswith("nnf 7 6 3")
    assert sum(1 for ln in lines if ln.startswith("L")) == 4


def test_nnf_format_errors():
    with pytest.raises(ValueError):
        from_nnf_format("garbage")
    with pytest.raises(ValueError):
        from_nnf_format("nnf 2 0 1\nL 1\n")  # count mismatch
    with pytest.raises(ValueError):
        from_nnf_format("nnf 1 0 1\nX 1\n")


def test_nnf_format_constants():
    manager = NnfManager()
    assert from_nnf_format(to_nnf_format(manager.true())).is_true
    assert from_nnf_format(to_nnf_format(manager.false())).is_false


# -- constrained-SDD solvers -----------------------------------------------------------

def y_splits(max_var=5):
    return st.sets(st.integers(1, max_var), min_size=1,
                   max_size=max_var - 1).map(sorted)


@settings(max_examples=60, deadline=None)
@given(cnfs(), y_splits())
def test_emajsat_sdd_vs_brute(cnf, y_vars):
    node, _manager = compile_constrained_sdd(cnf, y_vars)
    value = emajsat_sdd(node, y_vars, num_vars=cnf.num_vars)
    brute, _witness = emajsat_brute(cnf, y_vars)
    assert value == brute


@settings(max_examples=60, deadline=None)
@given(cnfs(), y_splits())
def test_majmajsat_sdd_vs_brute(cnf, y_vars):
    node, _manager = compile_constrained_sdd(cnf, y_vars)
    hist = majmajsat_histogram_sdd(node, y_vars, num_vars=cnf.num_vars)
    brute = {c: m for c, m in majmajsat_brute(cnf, y_vars).items() if c}
    assert hist == brute


def test_constrained_sdd_requires_z_block():
    cnf = Cnf([(1, 2)], num_vars=2)
    with pytest.raises(ValueError):
        compile_constrained_sdd(cnf, [1, 2])


# -- weighted E-MAJSAT and circuit MAP -----------------------------------------------

@settings(max_examples=60, deadline=None)
@given(cnfs(max_var=4), y_splits(max_var=4))
def test_weighted_emajsat_vs_brute(cnf, y_vars):
    weights = {}
    for v in range(1, cnf.num_vars + 1):
        weights[v] = 0.2 + 0.15 * v
        weights[-v] = 1.2 - weights[v]
    value, witness = weighted_emajsat(cnf, weights, y_vars)
    # brute force
    y_sorted = sorted(set(y_vars))
    z_vars = [v for v in range(1, cnf.num_vars + 1)
              if v not in set(y_sorted)]
    best = 0.0
    for y in iter_assignments(y_sorted):
        total = 0.0
        for z in iter_assignments(z_vars):
            assignment = {**y, **z}
            if cnf.evaluate(assignment):
                w = 1.0
                for var, val in assignment.items():
                    w *= weights[var if val else -var]
                total += w
        best = max(best, total)
    assert value == pytest.approx(best)
    # the witness achieves the value
    achieved = 0.0
    full_witness = {v: witness.get(v, weights[v] >= weights[-v])
                    for v in y_sorted}
    for z in iter_assignments(z_vars):
        assignment = {**full_witness, **z}
        if cnf.evaluate(assignment):
            w = 1.0
            for var, val in assignment.items():
                w *= weights[var if val else -var]
            achieved += w
    assert achieved == pytest.approx(value)


@pytest.mark.parametrize("encoding", ["binary", "multistate"])
def test_pipeline_map_matches_ve(encoding):
    network = medical_network()
    pipeline = WmcPipeline(network, encoding=encoding)
    y, p = pipeline.map_query(["sex", "c"])
    vy, vp = map_query(network, ["sex", "c"])
    assert y == vy
    assert p == pytest.approx(vp)


def test_pipeline_map_with_evidence_on_random_networks():
    rng = random.Random(12)
    for _ in range(4):
        network = random_network(5, rng=rng)
        pipeline = WmcPipeline(network)
        map_vars = rng.sample(network.variables, 2)
        evidence_var = next(v for v in network.variables
                            if v not in map_vars)
        _y, p = pipeline.map_query(map_vars, {evidence_var: 1})
        _vy, vp = map_query(network, map_vars, {evidence_var: 1})
        assert p == pytest.approx(vp)


# -- PSDD multiply -----------------------------------------------------------------------

def _random_psdd(manager, cnf, rng):
    root, _m = compile_cnf_sdd(cnf, manager=manager)
    if root.is_false:
        return None
    psdd = psdd_from_sdd(root)
    data = [(m, rng.randint(1, 5)) for m in enumerate_models(root)]
    learn_parameters(psdd, data, alpha=0.3)
    return psdd


def test_multiply_matches_pointwise_product():
    rng = random.Random(7)
    manager = SddManager(balanced_vtree([1, 2, 3, 4]))
    p = _random_psdd(manager, Cnf([(1, 2), (-3, 4)], num_vars=4), rng)
    q = _random_psdd(manager, Cnf([(2, 3)], num_vars=4), rng)
    product, constant = multiply(p, q)
    brute = sum(p.probability(x) * q.probability(x)
                for x in iter_assignments([1, 2, 3, 4]))
    assert constant == pytest.approx(brute)
    for x in iter_assignments([1, 2, 3, 4]):
        assert product.probability(x) * constant == pytest.approx(
            p.probability(x) * q.probability(x))


def test_multiply_disjoint_supports():
    rng = random.Random(8)
    manager = SddManager(balanced_vtree([1, 2]))
    p = _random_psdd(manager, Cnf([(1,), (2,)], num_vars=2), rng)
    q = _random_psdd(manager, Cnf([(-1,)], num_vars=2), rng)
    product, constant = multiply(p, q)
    assert product is None
    assert constant == 0.0


def test_multiply_with_self_is_normalized_square():
    rng = random.Random(9)
    manager = SddManager(balanced_vtree([1, 2, 3]))
    p = _random_psdd(manager, Cnf([(1, 2, 3)], num_vars=3), rng)
    product, constant = multiply(p, p)
    brute = sum(p.probability(x) ** 2
                for x in iter_assignments([1, 2, 3]))
    assert constant == pytest.approx(brute)


def test_multiply_requires_shared_manager():
    rng = random.Random(10)
    m1 = SddManager(balanced_vtree([1, 2]))
    m2 = SddManager(balanced_vtree([1, 2]))
    p = _random_psdd(m1, Cnf([(1,)], num_vars=2), rng)
    q = _random_psdd(m2, Cnf([(1,)], num_vars=2), rng)
    with pytest.raises(ValueError):
        multiply(p, q)
