"""Tests for the later utility additions: necessary characteristics,
robust regions, OBDD reordering, BN sampling, determinism-aware
encodings."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bayesnet import (forward_sample, likelihood_weighting, mar,
                            medical_network, random_network,
                            sample_dataset)
from repro.explain import (all_sufficient_reasons, is_necessary,
                           necessary_characteristics)
from repro.logic import Cnf, pair_biconditionals
from repro.obdd import (ObddManager, compile_cnf_obdd, minimize_order,
                        model_count, obdd_size_for_order)
from repro.robust import robust_region, robustness_histogram
from repro.wmc import WmcPipeline, encode_binary, encode_multistate


def cnfs(max_var=4, max_clauses=6):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=1, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


# -- necessary characteristics -----------------------------------------------------

def test_necessary_on_fig26():
    m = ObddManager([1, 2, 3])
    f = (m.literal(1) | m.literal(-3)) & (m.literal(2) | m.literal(3)) \
        & (m.literal(1) | m.literal(2))
    instance = {1: True, 2: True, 3: False}
    # reasons are {1,2} and {2,-3}: only literal 2 is in both
    assert necessary_characteristics(f, instance) == [2]
    assert is_necessary(f, instance, 2)
    assert not is_necessary(f, instance, 1)
    with pytest.raises(ValueError):
        is_necessary(f, instance, -2)  # not an instance literal


@settings(max_examples=60, deadline=None)
@given(cnfs(), st.integers(0, 15))
def test_necessary_is_reason_intersection(cnf, bits):
    node, _m = compile_cnf_obdd(cnf)
    if node.is_terminal:
        return
    instance = {v: bool((bits >> (v - 1)) & 1)
                for v in range(1, cnf.num_vars + 1)}
    reasons = all_sufficient_reasons(node, instance)
    expected = set(reasons[0])
    for reason in reasons[1:]:
        expected &= reason
    assert set(necessary_characteristics(node, instance)) == expected


# -- robust regions -----------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(cnfs(), st.integers(0, 3))
def test_robust_region_matches_histogram(cnf, k):
    node, m = compile_cnf_obdd(cnf)
    region = robust_region(node, k)
    if node.is_terminal:
        assert region is m.one
        return
    histogram = robustness_histogram(node)
    expected = sum(count for level, count in histogram.items()
                   if level > k)
    assert model_count(region) == expected


def test_robust_region_k0_is_everything():
    m = ObddManager([1, 2])
    f = m.literal(1)
    assert robust_region(f, 0) is m.one
    with pytest.raises(ValueError):
        robust_region(f, -1)


def test_robust_region_is_monotone_in_k():
    m = ObddManager([1, 2, 3])
    f = (m.literal(1) & m.literal(2)) | m.literal(3)
    previous = robust_region(f, 0)
    for k in (1, 2, 3):
        current = robust_region(f, k)
        # growing k can only shrink the safe region
        assert m.apply_and(current, m.negate(previous)) is m.zero
        previous = current


# -- OBDD reordering -----------------------------------------------------------------

def test_minimize_order_beats_bad_order():
    cnf = pair_biconditionals(4)
    bad = obdd_size_for_order(cnf, [1, 3, 5, 7, 2, 4, 6, 8])
    order, size = minimize_order(cnf, iterations=60,
                                 rng=random.Random(0))
    assert size < bad
    assert sorted(order) == list(range(1, 9))
    assert obdd_size_for_order(cnf, order) == size


def test_minimize_order_preserves_semantics():
    cnf = pair_biconditionals(3)
    order, _size = minimize_order(cnf, iterations=20,
                                  rng=random.Random(1))
    manager = ObddManager(order)
    root, _m = compile_cnf_obdd(cnf, manager=manager)
    assert model_count(root) == cnf.model_count()


def test_minimize_order_empty_cnf():
    with pytest.raises(ValueError):
        minimize_order(Cnf([], num_vars=0))


# -- BN sampling -----------------------------------------------------------------------

def test_forward_samples_match_marginals():
    network = medical_network()
    rng = random.Random(2)
    samples = sample_dataset(network, 6000, rng)
    for name in network.variables:
        share = sum(1 for s in samples if s[name] == 1) / len(samples)
        assert abs(share - mar(network, {name: 1})) < 0.03


def test_forward_sample_is_complete():
    network = medical_network()
    sample = forward_sample(network, random.Random(0))
    assert set(sample) == set(network.variables)
    # AGREE is deterministic given T1, T2
    assert sample["AGREE"] == int(sample["T1"] == sample["T2"])


def test_likelihood_weighting_converges():
    network = medical_network()
    rng = random.Random(9)
    estimate = likelihood_weighting(network, {"c": 1}, {"T1": 1},
                                    samples=40000, rng=rng)
    assert abs(estimate - mar(network, {"c": 1}, {"T1": 1})) < 0.05


# -- determinism-aware encodings ----------------------------------------------------------

@pytest.mark.parametrize("encoder", [encode_binary, encode_multistate])
def test_optimized_encoding_smaller_on_deterministic_networks(encoder):
    network = medical_network()  # AGREE is a 0/1 CPT
    plain = encoder(network)
    optimized = encoder(network, exploit_determinism=True)
    assert optimized.cnf.num_vars < plain.cnf.num_vars
    assert len(optimized.cnf) < len(plain.cnf)


def test_optimized_pipeline_agrees_with_plain():
    rng = random.Random(77)
    for _ in range(3):
        network = random_network(5, rng=rng, zero_fraction=0.5)
        plain = WmcPipeline(network)
        optimized = WmcPipeline(network, exploit_determinism=True)
        for name in network.variables:
            assert optimized.mar({name: 1}) == pytest.approx(
                plain.mar({name: 1}))
        _i1, p1 = plain.mpe()
        _i2, p2 = optimized.mpe()
        assert p1 == pytest.approx(p2)
        marg_plain = plain.marginals()
        marg_opt = optimized.marginals()
        for name in network.variables:
            assert marg_opt[name][1] == pytest.approx(
                marg_plain[name][1])


def test_optimized_encoding_total_mass_still_one():
    network = medical_network()
    pipeline = WmcPipeline(network, exploit_determinism=True)
    assert pipeline.probability_of_evidence({}) == pytest.approx(1.0)


# -- Gibbs sampling and SDD dot export ----------------------------------------------

def test_gibbs_sampling_converges():
    from repro.bayesnet import chain_network, gibbs_sampling
    network = chain_network()
    rng = random.Random(1)
    estimate = gibbs_sampling(network, {"B": 1}, samples=20000, rng=rng)
    assert abs(estimate - mar(network, {"B": 1})) < 0.03


def test_gibbs_sampling_with_evidence():
    from repro.bayesnet import chain_network, gibbs_sampling
    network = chain_network()
    rng = random.Random(2)
    estimate = gibbs_sampling(network, {"C": 1}, {"B": 1},
                              samples=20000, rng=rng)
    assert abs(estimate - mar(network, {"C": 1}, {"B": 1})) < 0.03


def test_gibbs_all_evidence():
    from repro.bayesnet import chain_network, gibbs_sampling
    network = chain_network()
    evidence = {"A": 1, "B": 1, "C": 0}
    assert gibbs_sampling(network, {"B": 1}, evidence,
                          samples=10) == 1.0
    assert gibbs_sampling(network, {"B": 0}, evidence,
                          samples=10) == 0.0


def test_sdd_to_dot():
    from repro.logic import Cnf
    from repro.sdd import compile_cnf_sdd, to_dot
    root, _manager = compile_cnf_sdd(Cnf([(1, 2), (-2, 3)], num_vars=3))
    dot = to_dot(root)
    assert dot.startswith("digraph sdd")
    assert "shape=record" in dot and "⊤" in dot or "shape=box" in dot
