"""Unit tests for the formula AST."""

import pytest

from repro.logic import (And, FALSE, Iff, Implies, Lit, Not, Or, TRUE,
                         clause_formula, iter_assignments, term_formula,
                         assignment_to_term)


def test_literal_basics():
    a = Lit(1)
    assert a.variable == 1
    assert a.positive
    assert a.evaluate({1: True})
    assert not a.evaluate({1: False})
    na = Lit(-1)
    assert na.variable == 1
    assert not na.positive
    assert na.evaluate({1: False})


def test_literal_rejects_zero_and_nonint():
    with pytest.raises(ValueError):
        Lit(0)
    with pytest.raises(ValueError):
        Lit("x")


def test_constants():
    assert TRUE.evaluate({})
    assert not FALSE.evaluate({})
    assert TRUE.variables() == frozenset()
    assert repr(TRUE) == "TRUE"


def test_operator_sugar():
    f = (Lit(1) & Lit(2)) | ~Lit(3)
    assert f.evaluate({1: True, 2: True, 3: True})
    assert f.evaluate({1: False, 2: False, 3: False})
    assert not f.evaluate({1: True, 2: False, 3: True})


def test_implication_and_iff():
    imp = Lit(1) >> Lit(2)
    assert imp.evaluate({1: False, 2: False})
    assert not imp.evaluate({1: True, 2: False})
    iff = Lit(1).iff(Lit(2))
    assert iff.evaluate({1: True, 2: True})
    assert iff.evaluate({1: False, 2: False})
    assert not iff.evaluate({1: True, 2: False})


def test_and_or_flattening():
    f = And(And(Lit(1), Lit(2)), Lit(3))
    assert len(f.children) == 3
    g = Or(Or(Lit(1), Lit(2)), Or(Lit(3), Lit(4)))
    assert len(g.children) == 4


def test_empty_connectives():
    assert And().evaluate({})
    assert not Or().evaluate({})


def test_variables_collection():
    f = (Lit(1) & Lit(-5)) | Lit(3)
    assert f.variables() == frozenset({1, 3, 5})


def test_condition_simplifies():
    f = (Lit(1) | Lit(2)) & Lit(3)
    assert f.condition({3: False}) == FALSE
    assert f.condition({1: True, 3: True}) == TRUE
    g = f.condition({1: False})
    assert g.evaluate({2: True, 3: True})
    assert not g.evaluate({2: False, 3: True})


def test_condition_implies_iff():
    f = Lit(1) >> Lit(2)
    assert f.condition({1: False}) == TRUE
    h = Iff(Lit(1), Lit(2))
    assert h.condition({1: True, 2: True}) == TRUE
    assert h.condition({1: True, 2: False}) == FALSE


def test_nnf_pushes_negations():
    f = Not(And(Lit(1), Or(Lit(2), Not(Lit(3)))))
    nnf = f.to_nnf()
    assert f.equivalent(nnf)
    assert _is_nnf(nnf)


def test_nnf_of_iff_and_implies():
    for f in (Iff(Lit(1), Lit(2)), Implies(Lit(1), Lit(2)),
              Not(Iff(Lit(1), Not(Lit(2))))):
        nnf = f.to_nnf()
        assert f.equivalent(nnf)
        assert _is_nnf(nnf)


def _is_nnf(f) -> bool:
    from repro.logic.formula import Constant
    if isinstance(f, (Lit, Constant)):
        return True
    if isinstance(f, (And, Or)):
        return all(_is_nnf(c) for c in f.children)
    return False


def test_models_and_count():
    f = Lit(1) | Lit(2)
    assert f.model_count() == 3
    assert f.model_count([1, 2, 3]) == 6


def test_validity_and_satisfiability():
    assert (Lit(1) | Lit(-1)).is_valid()
    assert not (Lit(1) & Lit(-1)).is_satisfiable()
    assert (Lit(1) & Lit(2)).is_satisfiable()


def test_equivalence():
    demorgan_lhs = Not(And(Lit(1), Lit(2)))
    demorgan_rhs = Or(Not(Lit(1)), Not(Lit(2)))
    assert demorgan_lhs.equivalent(demorgan_rhs)
    assert not demorgan_lhs.equivalent(And(Lit(1), Lit(2)))


def test_hash_and_equality():
    assert Lit(1) == Lit(1)
    assert hash(Lit(1)) == hash(Lit(1))
    assert And(Lit(1), Lit(2)) == And(Lit(1), Lit(2))
    assert And(Lit(1), Lit(2)) != And(Lit(2), Lit(1))  # ordered children
    assert Or(Lit(1)) != And(Lit(1))


def test_immutability():
    with pytest.raises(AttributeError):
        Lit(1).literal = 2
    with pytest.raises(AttributeError):
        And(Lit(1)).children = ()


def test_iter_assignments_order_and_size():
    assignments = list(iter_assignments([1, 2]))
    assert len(assignments) == 4
    assert assignments[0] == {1: False, 2: False}
    assert assignments[-1] == {1: True, 2: True}


def test_term_and_clause_helpers():
    t = term_formula([1, -2])
    assert t.evaluate({1: True, 2: False})
    assert not t.evaluate({1: True, 2: True})
    c = clause_formula([1, -2])
    assert c.evaluate({1: False, 2: False})
    assert not c.evaluate({1: False, 2: True})
    assert term_formula([]) == TRUE
    assert clause_formula([]) == FALSE


def test_assignment_to_term():
    assert assignment_to_term({2: False, 1: True}) == (1, -2)
