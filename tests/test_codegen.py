"""Tests for the codegen backend (:mod:`repro.ir.codegen`): generated
evaluators agree with the interpreted kernel on every query, fall back
where unsupported, stay fresh across invalidation and EM updates, and
round-trip through the artifact store's sealed-source and binary CSR
sidecars."""

import math
import os
import random
import subprocess
import sys

import pytest

from repro.compile.dnnf_compiler import DnnfCompiler
from repro.ir import (CodegenUnsupported, ir_kernel, nnf_to_ir,
                      psdd_to_ir)
from repro.ir.codegen import (audited_compile, check_source,
                              compile_circuit, resolve_backend,
                              seal_source, source_digest)
from repro.ir.core import IrBuilder
from repro.ir.serialize import (ir_from_csr_buffer, ir_from_nnf_text,
                                ir_to_csr_bytes)
from repro.ir.store import ArtifactStore
from repro.limits import Budget, BudgetExceeded
from repro.limits.faults import corrupt_artifact
from repro.logic.cnf import Cnf

np = pytest.importorskip("numpy")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def random_cnf(rng, max_vars=7):
    n = rng.randint(3, max_vars)
    m = rng.randint(n, 3 * n)
    clauses = []
    for _ in range(m):
        width = rng.randint(1, 3)
        vs = rng.sample(range(1, n + 1), width)
        clauses.append(tuple(v if rng.random() < 0.5 else -v
                             for v in vs))
    return Cnf(clauses, num_vars=n)


def random_weights(rng, variables):
    weights = {}
    for v in variables:
        weights[v] = rng.uniform(0.1, 1.0)
        weights[-v] = rng.uniform(0.1, 1.0)
    return weights


def fresh_kernel(cnf):
    """A kernel over the compiled cnf with no backend override."""
    ir = nnf_to_ir(DnnfCompiler().compile(cnf))
    kernel = ir_kernel(ir)
    kernel.set_backend(None)
    kernel.invalidate()
    return kernel


# -- agreement corpus: codegen vs interpreter --------------------------------

def test_codegen_matches_interpreter_on_random_circuits():
    """100 random d-DNNFs: every query the codegen backend serves
    (scalar, batch, log-space) equals the interpreted kernel."""
    rng = random.Random(2026)
    for _ in range(100):
        cnf = random_cnf(rng)
        kernel = fresh_kernel(cnf)
        variables = range(1, cnf.num_vars + 1)
        weights = random_weights(rng, variables)
        batch = 3
        weight_rows = {
            lit: np.array([rng.uniform(0.1, 1.0) for _ in range(batch)])
            for v in variables for lit in (v, -v)}
        log_rows = {lit: np.log(row)
                    for lit, row in weight_rows.items()}
        assign = {v: rng.random() < 0.5 for v in variables}
        assign_rows = {v: np.array([rng.random() < 0.5
                                    for _ in range(batch)])
                       for v in variables}

        kernel.set_backend("interp")
        expected = {
            "count": kernel.model_count(),
            "sat": kernel.sat(),
            "wmc": kernel.wmc(weights),
            "mpe": kernel.mpe(weights),
            "evaluate": kernel.evaluate(assign),
            "wmc_batch": kernel.wmc_batch(weight_rows),
            "wmc_log_batch": kernel.wmc_log_batch(log_rows),
            "evaluate_batch": kernel.evaluate_batch(assign_rows),
        }
        kernel.invalidate()
        kernel.set_backend("codegen")
        assert kernel.model_count() == expected["count"]
        assert kernel.sat() == expected["sat"]
        assert kernel.wmc(weights) == pytest.approx(expected["wmc"],
                                                    rel=1e-9)
        value, model = kernel.mpe(weights)
        assert value == pytest.approx(expected["mpe"][0], rel=1e-9)
        assert model == expected["mpe"][1]
        assert kernel.evaluate(assign) == expected["evaluate"]
        assert np.allclose(kernel.wmc_batch(weight_rows),
                           expected["wmc_batch"], rtol=1e-9)
        assert np.allclose(kernel.wmc_log_batch(log_rows),
                           expected["wmc_log_batch"], rtol=1e-9,
                           atol=1e-9)
        assert list(kernel.evaluate_batch(assign_rows)) == \
            list(expected["evaluate_batch"])
        kernel.set_backend(None)


def test_codegen_derivatives_still_interpreted():
    """Marginal/derivative queries stay on the exact interpreted path
    regardless of backend (memoised bigints; see the fallback table in
    docs/architecture.md)."""
    from repro.nnf.transform import smooth
    root = smooth(DnnfCompiler().compile(Cnf([(1, 2), (-1, 3)],
                                             num_vars=3)))
    kernel = ir_kernel(nnf_to_ir(root))
    kernel.set_backend("codegen")
    derivs = kernel.derivatives()
    kernel.set_backend("interp")
    kernel.invalidate()
    assert kernel.derivatives() == derivs


# -- backend selection -------------------------------------------------------

def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend() == "codegen"
    monkeypatch.setenv("REPRO_BACKEND", "interp")
    assert resolve_backend() == "interp"
    assert resolve_backend("codegen") == "codegen"  # explicit wins
    with pytest.raises(ValueError):
        resolve_backend("turbo")
    monkeypatch.setenv("REPRO_BACKEND", "turbo")
    with pytest.raises(ValueError):
        resolve_backend()


def test_set_backend_validates_and_resets(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    kernel = fresh_kernel(Cnf([(1, 2)], num_vars=2))
    with pytest.raises(ValueError):
        kernel.set_backend("turbo")
    kernel.set_backend("codegen")
    kernel.wmc({1: 0.5, -1: 0.5, 2: 0.5, -2: 0.5})
    assert kernel._codegen is not None
    kernel.set_backend("interp")
    assert kernel._codegen is None  # switching drops the compilate
    assert kernel.backend_name() == "interp"
    kernel.set_backend(None)
    assert kernel.backend_name() == "codegen"


def test_interp_backend_never_compiles(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "interp")
    kernel = fresh_kernel(Cnf([(1, 2), (-2, 3)], num_vars=3))
    assert kernel.model_count() == 4
    assert kernel._codegen is None


# -- fallback domain ---------------------------------------------------------

def test_param_circuits_fall_back_to_interpreter():
    builder = IrBuilder()
    root = builder.conjoin([builder.literal(1), builder.param()])
    kernel = ir_kernel(builder.finish(root))
    kernel.set_backend("codegen")
    assert kernel.wmc({1: 0.5, -1: 0.5}, params=[2.0]) == \
        pytest.approx(1.0)
    # the unsupported verdict is memoised: no per-query retry
    assert kernel._codegen is not None
    assert not hasattr(kernel._codegen, "wmc")


def test_wide_count_falls_back_exactly():
    """#SAT beyond 52 variables leaves float64's exact integer range,
    so the generated count refuses and the interpreter's bigint pass
    answers."""
    n = 60
    builder = IrBuilder()
    root = builder.conjoin([
        builder.disjoin([builder.literal(v), builder.literal(-v)])
        for v in range(1, n + 1)])
    kernel = ir_kernel(builder.finish(root))
    kernel.set_backend("codegen")
    assert kernel.model_count() == 2 ** n
    compiled = kernel._codegen
    assert hasattr(compiled, "model_count")  # compiled, then declined
    with pytest.raises(CodegenUnsupported):
        compiled.model_count()


def test_literal_free_batch_falls_back():
    builder = IrBuilder()
    kernel = ir_kernel(builder.finish(builder.true()))
    kernel.set_backend("codegen")
    rows = kernel.evaluate_batch({1: np.array([True, False])})
    assert list(rows) == [True, True]


def test_empty_batch_raises_either_backend():
    kernel = fresh_kernel(Cnf([(1, 2)], num_vars=2))
    for backend in ("codegen", "interp"):
        kernel.set_backend(backend)
        with pytest.raises(ValueError):
            kernel.wmc_batch({})


# -- freshness: invalidation and EM updates ----------------------------------

def test_invalidate_drops_compiled_evaluator():
    kernel = fresh_kernel(Cnf([(1, 2), (-1, 3)], num_vars=3))
    kernel.set_backend("codegen")
    count = kernel.model_count()
    assert kernel._codegen is not None
    kernel.invalidate()
    assert kernel._codegen is None
    assert kernel._model_count is None
    assert kernel.model_count() == count


def test_psdd_em_updates_never_served_stale():
    """EM parameter updates on PSDDs must reach every query: the
    parameterised circuit is codegen-unsupported, and the fallback
    re-reads θ per query instead of baking it into a compilate
    (extends the PR 3 memo-staleness suite)."""
    from repro.logic import VarMap, parse, to_cnf
    from repro.psdd import learn_parameters, psdd_from_sdd
    from repro.psdd.queries import marginal, marginal_legacy
    from repro.sdd.compiler import compile_cnf_sdd
    vm = VarMap()
    f = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    root, _ = compile_cnf_sdd(to_cnf(f))
    psdd = psdd_from_sdd(root)
    ir, _params = psdd_to_ir(psdd)
    kernel = ir_kernel(ir)
    kernel.set_backend("codegen")
    try:
        before = marginal(psdd, {1: True})
        data = [({1: True, 2: True, 3: True, 4: True}, 5),
                ({1: True, 2: False, 3: True, 4: False}, 3),
                ({1: False, 2: True, 3: False, 4: False}, 2)]
        learn_parameters(psdd, data)
        after = marginal(psdd, {1: True})
        assert after != pytest.approx(before)
        assert after == pytest.approx(marginal_legacy(psdd, {1: True}))
    finally:
        kernel.set_backend(None)


# -- sealed sources and the audited compile gate -----------------------------

def test_audited_compile_refuses_unsealed_source():
    with pytest.raises(CodegenUnsupported):
        audited_compile("x = 1\n", {})
    sealed = seal_source("x = 1\n")
    assert check_source(sealed)
    namespace = {}
    audited_compile(sealed, namespace)
    assert namespace["x"] == 1
    tampered = sealed.replace("x = 1", "x = 2")
    assert not check_source(tampered)
    with pytest.raises(CodegenUnsupported):
        audited_compile(tampered, {})


def test_codegen_source_cache_roundtrip(tmp_path):
    kernel = fresh_kernel(Cnf([(1, 2), (-1, 3), (2, -3)], num_vars=3))
    store = ArtifactStore(tmp_path / "cache")
    weights = random_weights(random.Random(4), range(1, 4))
    first = compile_circuit(kernel, store)
    assert store.stats["codegen_source_misses"] == 1
    key = kernel.ir.digest()
    path = store.path_for(key, "gen.py")
    assert path.exists()
    assert source_digest(path.read_text()) == key
    second = compile_circuit(kernel, store)
    assert store.stats["codegen_source_hits"] == 1
    assert first.wmc(weights) == pytest.approx(second.wmc(weights))


def test_corrupt_codegen_source_quarantined_and_regenerated(tmp_path):
    kernel = fresh_kernel(Cnf([(1, 2), (-2, 3)], num_vars=3))
    store = ArtifactStore(tmp_path / "cache")
    compile_circuit(kernel, store)
    key = kernel.ir.digest()
    corrupt_artifact(store, key, "gen.py", "truncate")
    compiled = compile_circuit(kernel, store)
    assert store.stats["artifact_corrupt"] == 1
    assert store.path_for(key, "gen.py").with_suffix(
        ".py.corrupt").exists()
    assert compiled.model_count() == kernel.model_count()
    # the regeneration rewrote a clean source
    assert check_source(store.path_for(key, "gen.py").read_text())


def test_foreign_source_under_right_key_rejected(tmp_path):
    """A sealed source whose embedded circuit digest differs from the
    store key (wrong file copied into place) is regenerated, not
    trusted."""
    kernel_a = fresh_kernel(Cnf([(1, 2)], num_vars=2))
    kernel_b = fresh_kernel(Cnf([(1, 2), (-1, 3), (2, 3)], num_vars=3))
    store = ArtifactStore(tmp_path / "cache")
    compile_circuit(kernel_a, store)
    foreign = store.path_for(kernel_a.ir.digest(), "gen.py").read_text()
    key_b = kernel_b.ir.digest()
    store.save_codegen(key_b, foreign)
    compiled = compile_circuit(kernel_b, store)
    assert compiled.model_count() == kernel_b.model_count()


# -- binary CSR sidecar ------------------------------------------------------

def test_csr_bytes_roundtrip_is_byte_stable():
    rng = random.Random(99)
    for _ in range(25):
        ir = nnf_to_ir(DnnfCompiler().compile(random_cnf(rng)))
        text_hash = "ab" * 32
        blob = ir_to_csr_bytes(ir, text_hash)
        decoded, decoded_hash = ir_from_csr_buffer(blob)
        assert decoded_hash == text_hash
        assert decoded.digest() == ir.digest()
        assert ir_to_csr_bytes(decoded, decoded_hash) == blob


def test_csr_decode_rejects_corruption():
    ir = nnf_to_ir(DnnfCompiler().compile(Cnf([(1, 2)], num_vars=2)))
    blob = ir_to_csr_bytes(ir, "cd" * 32)
    for bad in (blob[:10], b"", b"XXXX" + blob[4:],
                blob[:-1] + bytes([blob[-1] ^ 1])):
        with pytest.raises(ValueError):
            ir_from_csr_buffer(bad)


def test_mmap_load_equals_text_load(tmp_path):
    ir = nnf_to_ir(DnnfCompiler().compile(
        Cnf([(1, 2, 3), (-1, 2), (-2, 3), (1, -3)], num_vars=3)))
    key = ir.digest()
    ArtifactStore(tmp_path / "cache").save_nnf(key, ir)
    mmap_store = ArtifactStore(tmp_path / "cache")
    via_mmap = mmap_store.load_nnf(key)
    assert mmap_store.stats["artifact_mmap_hits"] == 1
    os.unlink(mmap_store.path_for(key, "csr"))
    text_store = ArtifactStore(tmp_path / "cache")
    via_text = text_store.load_nnf(key)
    assert text_store.stats["artifact_mmap_hits"] == 0
    assert via_mmap is not None and via_text is not None
    assert via_mmap.digest() == via_text.digest() == key
    assert ir_kernel(via_mmap).model_count() == \
        ir_kernel(via_text).model_count()


def test_corrupt_csr_quarantined_text_still_serves(tmp_path):
    ir = nnf_to_ir(DnnfCompiler().compile(
        Cnf([(1, 2), (-1, 3)], num_vars=3)))
    key = ir.digest()
    store = ArtifactStore(tmp_path / "cache")
    store.save_nnf(key, ir)
    for mode in ("garbage", "truncate", "empty"):
        corrupt_artifact(store, key, "csr", mode)
        served = store.load_nnf(key)
        assert served is not None
        assert ir_kernel(served).model_count() == \
            ir_kernel(ir).model_count()
        quarantined = store.path_for(key, "csr").with_suffix(
            ".csr.corrupt")
        assert quarantined.exists()
        quarantined.unlink()
        store.save_nnf(key, ir)  # rewrite the sidecar for the next mode
    assert store.stats["artifact_corrupt"] == 3


def test_stale_csr_defers_to_rewritten_text(tmp_path):
    """The .nnf stays authoritative: rewriting it underneath the
    sidecar makes the mmap path step aside silently."""
    ir_a = nnf_to_ir(DnnfCompiler().compile(Cnf([(1, 2)], num_vars=2)))
    ir_b = nnf_to_ir(DnnfCompiler().compile(
        Cnf([(1, 2), (-1, 3), (2, 3)], num_vars=3)))
    store = ArtifactStore(tmp_path / "cache")
    store.save_nnf("k", ir_a)
    # rewrite the text (fresh cert) but resurrect the stale sidecar
    stale = store.path_for("k", "csr").read_bytes()
    store.save_nnf("k", ir_b)
    store.path_for("k", "csr").write_bytes(stale)
    warm = ArtifactStore(tmp_path / "cache")
    served = warm.load_nnf("k")
    assert served is not None
    assert served.digest() == ir_b.digest()
    assert warm.stats["artifact_mmap_hits"] == 0


# -- resource governance through generated code ------------------------------

def test_generated_code_charges_budget():
    kernel = fresh_kernel(Cnf([(1, 2), (-1, 3), (2, -3)], num_vars=3))
    kernel.set_backend("codegen")
    weights = {lit: 0.5 for v in (1, 2, 3) for lit in (v, -v)}
    kernel.wmc(weights)  # compile outside the budget
    kernel.budget = Budget(max_nodes=kernel.n - 1)
    try:
        with pytest.raises(BudgetExceeded) as info:
            kernel.wmc(weights)
        assert info.value.partial.get("operation") == "kernel-pass"
    finally:
        kernel.budget = None


def test_codegen_respects_ambient_budget_scope():
    kernel = fresh_kernel(Cnf([(1, 2), (-2, 3)], num_vars=3))
    kernel.set_backend("codegen")
    kernel.sat()  # compile untimed
    kernel.invalidate()
    with Budget(max_nodes=1).scope():
        with pytest.raises(BudgetExceeded):
            kernel.model_count()


# -- cli / subprocess surfaces ------------------------------------------------

def test_cli_backend_flag_and_stats(tmp_path):
    cnf_path = tmp_path / "t.cnf"
    cnf_path.write_text("p cnf 3 2\n1 2 0\n-1 3 0\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_BACKEND", None)
    outputs = {}
    for backend in ("codegen", "interp"):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "query", str(cnf_path),
             "--query", "count", "--stats", "--backend", backend],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert f"c backend {backend}" in proc.stdout
        outputs[backend] = [line for line in proc.stdout.splitlines()
                            if line.startswith("s ")]
    assert outputs["codegen"] == outputs["interp"] == ["s mc 4"]
    assert "codegen_compiles" in subprocess.run(
        [sys.executable, "-m", "repro", "query", str(cnf_path),
         "--query", "wmc", "--stats"],
        env=env, capture_output=True, text=True, timeout=120).stdout
