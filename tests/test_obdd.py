"""Tests for the OBDD package."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Cnf, VarMap, iter_assignments, parse, to_cnf
from repro.nnf import is_decision_dnnf, model_count as nnf_model_count
from repro.obdd import (ObddManager, compile_cnf_obdd, compile_formula,
                        compose, enumerate_models, exists, flip_variable,
                        forall, minimum_cardinality, model_count,
                        obdd_to_nnf, restrict, to_dot,
                        weighted_model_count)


@pytest.fixture
def manager():
    return ObddManager([1, 2, 3, 4])


def test_terminals(manager):
    assert manager.one.is_terminal and manager.one.terminal_value
    assert manager.zero.is_terminal and not manager.zero.terminal_value
    assert manager.terminal(True) is manager.one


def test_literal(manager):
    x = manager.literal(1)
    assert x.evaluate({1: True})
    assert not x.evaluate({1: False})
    nx = manager.literal(-1)
    assert nx.evaluate({1: False})


def test_reduction_no_redundant_nodes(manager):
    # make with equal children returns the child
    x = manager.literal(2)
    assert manager.make(1, x, x) is x


def test_canonicity(manager):
    f = manager.literal(1) & manager.literal(2)
    g = manager.literal(2) & manager.literal(1)
    assert f is g  # canonical representation


def test_apply_correctness_exhaustive(manager):
    a, b = manager.literal(1), manager.literal(3)
    cases = {
        "and": (a & b, lambda x, y: x and y),
        "or": (a | b, lambda x, y: x or y),
        "xor": (a ^ b, lambda x, y: x != y),
    }
    for node, oracle in cases.values():
        for assignment in iter_assignments([1, 3]):
            assignment.update({2: False, 4: False})
            assert node.evaluate(assignment) == \
                oracle(assignment[1], assignment[3])


def test_negation(manager):
    f = manager.literal(1) & manager.literal(2)
    g = ~f
    for assignment in iter_assignments([1, 2, 3, 4]):
        assert g.evaluate(assignment) == (not f.evaluate(assignment))
    assert ~manager.one is manager.zero


def test_ite(manager):
    f = manager.ite(manager.literal(1), manager.literal(2),
                    manager.literal(3))
    for assignment in iter_assignments([1, 2, 3]):
        assignment[4] = False
        expected = assignment[2] if assignment[1] else assignment[3]
        assert f.evaluate(assignment) == expected


def test_cube(manager):
    c = manager.cube([1, -3])
    for assignment in iter_assignments([1, 2, 3, 4]):
        assert c.evaluate(assignment) == \
            (assignment[1] and not assignment[3])
    # cube equals the apply-built conjunction (canonicity)
    assert c is (manager.literal(1) & manager.literal(-3))


def test_restrict(manager):
    f = manager.literal(1) & manager.literal(2)
    g = restrict(f, {1: True})
    assert g is manager.literal(2)
    assert restrict(f, {1: False}) is manager.zero


def test_quantification(manager):
    f = manager.literal(1) & manager.literal(2)
    assert exists(f, [1]) is manager.literal(2)
    assert forall(f, [1]) is manager.zero
    g = manager.literal(1) | manager.literal(2)
    assert forall(g, [1]) is manager.literal(2)


def test_compose(manager):
    # f = x1 & x2; substitute x1 := x3 | x4
    f = manager.literal(1) & manager.literal(2)
    replacement = manager.literal(3) | manager.literal(4)
    g = compose(f, 1, replacement)
    for assignment in iter_assignments([1, 2, 3, 4]):
        expected = (assignment[3] or assignment[4]) and assignment[2]
        assert g.evaluate(assignment) == expected


def test_flip_variable(manager):
    f = manager.literal(1) & manager.literal(2)
    g = flip_variable(f, 1)
    for assignment in iter_assignments([1, 2]):
        flipped = dict(assignment)
        flipped[1] = not flipped[1]
        flipped.update({3: False, 4: False})
        assignment.update({3: False, 4: False})
        assert g.evaluate(assignment) == f.evaluate(flipped)


def test_model_count(manager):
    f = manager.literal(1) | manager.literal(2)
    assert model_count(f) == 12  # 3 over {1,2} times 4 over {3,4}
    assert model_count(f, [1, 2]) == 3
    with pytest.raises(ValueError):
        model_count(f, [1])


def test_weighted_model_count(manager):
    f = manager.literal(1) & manager.literal(2)
    weights = {1: 0.25, -1: 0.75, 2: 0.5, -2: 0.5, 3: 1.0, -3: 0.0,
               4: 1.0, -4: 0.0}
    assert weighted_model_count(f, weights, [1, 2]) == pytest.approx(0.125)


def test_enumerate_models(manager):
    f = manager.literal(1) & manager.literal(-4)
    models = list(enumerate_models(f))
    assert len(models) == 4
    for m in models:
        assert f.evaluate(m)
        assert set(m) == {1, 2, 3, 4}


def test_minimum_cardinality(manager):
    f = (manager.literal(1) & manager.literal(2)) | manager.literal(3)
    costs = {l: (1.0 if l > 0 else 0.0) for v in (1, 2, 3, 4)
             for l in (v, -v)}
    assert minimum_cardinality(f, costs) == 1.0  # the x3-only model
    assert minimum_cardinality(manager.zero, costs) == float("inf")


def test_compile_formula_and_cnf_agree():
    vm = VarMap()
    f = parse("(A | ~C) & (B | C) & (A | B)", vm)
    manager = ObddManager([1, 2, 3])
    direct = compile_formula(f, manager)
    via_cnf, cnf_manager = compile_cnf_obdd(to_cnf(f))
    assert model_count(direct) == model_count(via_cnf) == 4


def test_obdd_to_nnf(manager):
    f = (manager.literal(1) & manager.literal(2)) | manager.literal(3)
    circuit = obdd_to_nnf(f)
    assert is_decision_dnnf(circuit)
    assert nnf_model_count(circuit, [1, 2, 3, 4]) == model_count(f)


def test_to_dot(manager):
    f = manager.literal(1) & manager.literal(2)
    dot = to_dot(f)
    assert dot.startswith("digraph") and "style=dashed" in dot


def test_bad_orders_rejected():
    with pytest.raises(ValueError):
        ObddManager([1, 1])
    with pytest.raises(ValueError):
        ObddManager([0, 1])


# -- property-based --------------------------------------------------------------

def cnfs(max_var=5, max_clauses=7):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


@settings(max_examples=100, deadline=None)
@given(cnfs())
def test_compiled_obdd_matches_bruteforce(cnf):
    node, manager = compile_cnf_obdd(cnf)
    for assignment in iter_assignments(range(1, cnf.num_vars + 1)):
        assert node.evaluate(assignment) == cnf.evaluate(assignment)
    assert model_count(node) == cnf.model_count()


@settings(max_examples=60, deadline=None)
@given(cnfs(max_var=4), st.integers(1, 4))
def test_shannon_expansion_identity(cnf, var):
    """f = (x ∧ f|x) ∨ (¬x ∧ f|¬x) — the OBDD decision semantics."""
    node, manager = compile_cnf_obdd(cnf)
    x = manager.literal(var)
    expansion = (x & restrict(node, {var: True})) | \
        (~x & restrict(node, {var: False}))
    assert expansion is node  # canonicity makes this pointer equality
