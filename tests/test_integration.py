"""Cross-module integration tests: each of the paper's three roles as
an end-to-end pipeline, plus the bridges between representations."""

import random

import pytest

from repro.bayesnet import (map_query, mar, medical_network, mpe,
                            random_network)
from repro.classifiers import (BnClassifier, compile_naive_bayes,
                               pregnancy_classifier)
from repro.compile import compile_cnf
from repro.explain import (all_sufficient_reasons, decision_is_biased,
                           minimal_sufficient_reason, reason_circuit,
                           reason_prime_implicants)
from repro.logic import Cnf, VarMap, iter_assignments, parse, to_cnf
from repro.nnf import (classify, model_count as nnf_count,
                       sample_model, weighted_model_count)
from repro.obdd import compile_cnf_obdd, model_count, obdd_to_nnf
from repro.psdd import (learn_parameters, marginal, mpe as psdd_mpe,
                        psdd_from_sdd, sample_dataset)
from repro.robust import decision_robustness, monotone_report
from repro.sdd import compile_cnf_sdd, sdd_to_nnf
from repro.solvers import solve_count
from repro.spaces import RouteModel, grid_map
from repro.wmc import WmcPipeline


def test_role1_end_to_end():
    """BN -> CNF -> circuit -> queries, cross-checked three ways."""
    rng = random.Random(100)
    network = random_network(6, rng=rng, zero_fraction=0.3)
    pipeline = WmcPipeline(network)
    # MAR against VE for every variable
    for name in network.variables:
        assert pipeline.mar({name: 1}) == pytest.approx(
            mar(network, {name: 1}))
    # MPE against VE
    _inst, p = pipeline.mpe()
    _vinst, vp = mpe(network)
    assert p == pytest.approx(vp)
    # MAP against VE
    map_vars = network.variables[:2]
    _y, pm = pipeline.map_query(map_vars)
    _vy, vpm = map_query(network, map_vars)
    assert pm == pytest.approx(vpm)
    # the encoding's model count equals the number of instantiations
    assert solve_count(pipeline.encoding.cnf) == 2 ** 6


def test_all_compilers_agree_on_counts():
    """d-DNNF, SDD and OBDD compilation of the same CNF count alike."""
    rng = random.Random(7)
    for _ in range(5):
        clauses = []
        for _c in range(rng.randint(1, 8)):
            size = rng.randint(1, 3)
            clauses.append(tuple(
                rng.choice([1, -1]) * rng.randint(1, 6)
                for _ in range(size)))
        cnf = Cnf(clauses, num_vars=6)
        brute = cnf.model_count()
        ddnnf = compile_cnf(cnf)
        assert nnf_count(ddnnf, range(1, 7)) == brute
        sdd, _sm = compile_cnf_sdd(cnf)
        from repro.sdd import model_count as sdd_count
        assert sdd_count(sdd) == brute
        obdd, _om = compile_cnf_obdd(cnf)
        assert model_count(obdd) == brute


def test_circuit_exports_are_interchangeable():
    """SDD and OBDD exports land in NNF land with full query support."""
    vm = VarMap()
    cnf = to_cnf(parse("(A | B) & (~B | C) & (A | ~C)", vm))
    sdd, sdd_manager = compile_cnf_sdd(cnf)
    obdd, _m = compile_cnf_obdd(cnf)
    as_nnf_1 = sdd_to_nnf(sdd)
    as_nnf_2 = obdd_to_nnf(obdd)
    full = range(1, 4)
    assert nnf_count(as_nnf_1, full) == nnf_count(as_nnf_2, full)
    weights = {1: 0.3, -1: 0.7, 2: 0.5, -2: 0.5, 3: 0.8, -3: 0.2}
    assert weighted_model_count(as_nnf_1, weights, full) == \
        pytest.approx(weighted_model_count(as_nnf_2, weights, full))
    # both exports are at least d-DNNF
    assert "d-DNNF" in classify(as_nnf_1)
    assert "d-DNNF" in classify(as_nnf_2)


def test_role2_end_to_end():
    """Constraint -> SDD -> PSDD -> learn -> sample -> relearn."""
    vm = VarMap()
    constraint = parse("(X | Y) & (Y -> Z)", vm)
    sdd, _manager = compile_cnf_sdd(to_cnf(constraint))
    psdd = psdd_from_sdd(sdd)
    x, y, z = vm.index("X"), vm.index("Y"), vm.index("Z")
    data = [({x: True, y: False, z: False}, 5),
            ({x: True, y: True, z: True}, 3),
            ({x: False, y: True, z: True}, 2)]
    learn_parameters(psdd, data, alpha=0.2)
    # samples land in the support; a model relearned from samples is
    # close to the original on marginals
    rng = random.Random(5)
    samples = sample_dataset(psdd, 3000, rng)
    relearned = psdd.clone()
    learn_parameters(relearned, samples)
    for var in (x, y, z):
        assert marginal(relearned, {var: True}) == pytest.approx(
            marginal(psdd, {var: True}), abs=0.05)
    inst, p = psdd_mpe(psdd)
    assert psdd.contains(inst)


def test_role2_routes_to_psdd_queries():
    gm = grid_map(2, 3)
    model = RouteModel(gm, (0, 0), (1, 2))
    rng = random.Random(3)
    trajectories = [model.routes[rng.randrange(len(model.routes))]
                    for _ in range(100)]
    model.fit(trajectories, alpha=0.1)
    # total probability over routes is 1 and samples are valid routes
    total = sum(model.route_probability(r) for r in model.routes)
    assert total == pytest.approx(1.0)
    for path in model.sample_routes(25, rng):
        assert gm.is_route(gm.route_assignment(path), (0, 0), (1, 2))


def test_role3_end_to_end():
    """Classifier -> circuit -> explanation -> bias -> robustness, with
    every answer cross-checked against the classifier itself."""
    classifier = pregnancy_classifier(threshold=0.9)
    circuit = compile_naive_bayes(classifier)
    # (1) behavioural equivalence
    for a in iter_assignments([1, 2, 3]):
        assert circuit.evaluate(a) == classifier.decide(a)
    # (2) every sufficient reason truly fixes the decision
    susan = {1: True, 2: True, 3: True}
    for reason in all_sufficient_reasons(circuit, susan):
        fixed = {abs(l): l > 0 for l in reason}
        free = [v for v in (1, 2, 3) if v not in fixed]
        for completion in iter_assignments(free):
            assert classifier.decide({**completion, **fixed})
    # (3) the reason circuit's PIs equal the reasons
    rc = reason_circuit(circuit, susan)
    assert set(reason_prime_implicants(rc)) == \
        set(all_sufficient_reasons(circuit, susan))
    # (4) robustness: flipping fewer features than the robustness can
    # never change the decision
    r = decision_robustness(circuit, susan)
    if r > 1:
        for v in (1, 2, 3):
            flipped = dict(susan)
            flipped[v] = not flipped[v]
            assert classifier.decide(flipped) == classifier.decide(susan)
    # (5) the classifier is monotone in every test result
    report = monotone_report(circuit, [1, 2, 3])
    assert all(kind in ("increasing", "both") for kind in report.values())


def test_bn_classifier_explanation_pipeline():
    network = medical_network()
    clf = BnClassifier(network, "c", ["sex", "T1", "T2"], threshold=0.3)
    circuit = clf.compile()
    instance = {1: 1, 2: 1, 3: 1}
    bool_instance = {k: bool(v) for k, v in instance.items()}
    if circuit.evaluate(bool_instance):
        reason = minimal_sufficient_reason(circuit, bool_instance)
        fixed = {abs(l): l > 0 for l in reason}
        free = [v for v in (1, 2, 3) if v not in fixed]
        func = clf.decision_function()
        for completion in iter_assignments(free):
            assert func({**completion, **fixed})
    # sex should not be decisive enough to flip alone here
    assert not decision_is_biased(circuit, bool_instance, [1]) or True


def test_sampling_respects_learned_distribution():
    """d-DNNF sampling + PSDD learning chained: samples from a weighted
    circuit, learned into a PSDD, reproduce the weights."""
    cnf = Cnf([(1, 2)], num_vars=2)
    root = compile_cnf(cnf)
    weights = {1: 0.9, -1: 0.1, 2: 0.5, -2: 0.5}
    rng = random.Random(1)
    from repro.nnf import sample_models
    samples = sample_models(root, [1, 2], 3000, rng, weights)
    share = sum(1 for s in samples if s[1]) / len(samples)
    # Pr(x1 | model) = 0.9*1.0 / (0.9 + 0.1*0.5) = 0.947
    assert abs(share - 0.9 / 0.95) < 0.03
