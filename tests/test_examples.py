"""Smoke tests: every example script runs to completion and prints the
landmarks it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["9 models out of 16", "sufficient reasons"],
    "medical_diagnosis.py": ["compile once", "agrees"],
    "enrollment_psdd.py": ["sums to 1.0000", "probability exactly 0"],
    "route_learning.py": ["hierarchical", "valid route: True"],
    "explain_admissions.py": ["classifier biased w.r.t. R: True",
                              "verified: True"],
    "verify_network.py": ["sufficient reason", "model robustness"],
    "complexity_ladder.py": ["NP^PP", "PP^PP"],
    "preference_learning.py": ["most probable ranking",
                               "most probable flight"],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    for landmark in CASES[script]:
        assert landmark in result.stdout, (
            f"{script} output missing {landmark!r}:\n{result.stdout}")


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), (
        "examples/ and the smoke-test table drifted apart")
