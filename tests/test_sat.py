"""Tests for the DPLL solver and the component-caching model counter."""

from hypothesis import given, settings, strategies as st

from repro.logic import Cnf, exactly_one
from repro.sat import (ModelCounter, count_models, enumerate_models,
                       is_satisfiable, solve, split_components)
from repro.sat.dpll import unit_propagate


# -- random CNF strategy -------------------------------------------------------

def cnfs(max_var=5, max_clauses=8, max_clause_len=3):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=max_clause_len).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


def test_unit_propagation_chains():
    assignment = {}
    reduced = unit_propagate([(1,), (-1, 2), (-2, 3)], assignment)
    assert reduced == []
    assert assignment == {1: True, 2: True, 3: True}


def test_unit_propagation_conflict():
    assignment = {}
    assert unit_propagate([(1,), (-1,)], assignment) is None


def test_solve_simple():
    cnf = Cnf([(1, 2), (-1, 2), (1, -2)])
    model = solve(cnf)
    assert model is not None
    assert cnf.evaluate(model)


def test_solve_unsat():
    cnf = Cnf([(1, 2), (-1, 2), (1, -2), (-1, -2)])
    assert solve(cnf) is None
    assert not is_satisfiable(cnf)


def test_solve_with_assumptions():
    cnf = Cnf([(1, 2)])
    model = solve(cnf, assumptions=[-1])
    assert model is not None and model[2] is True
    assert solve(cnf, assumptions=[-1, -2]) is None


def test_solve_with_conflicting_assumptions():
    cnf = Cnf([(1, 2)])
    assert solve(cnf, assumptions=[1, -1]) is None


def test_solve_returns_complete_model():
    cnf = Cnf([(1,)], num_vars=3)
    model = solve(cnf)
    assert set(model) == {1, 2, 3}


def test_enumerate_models_matches_bruteforce():
    cnf = Cnf([(1, 2), (-2, 3)], num_vars=3)
    expected = {tuple(sorted(m.items())) for m in cnf.models()}
    got = {tuple(sorted(m.items())) for m in enumerate_models(cnf)}
    assert got == expected


@settings(max_examples=120, deadline=None)
@given(cnfs())
def test_solver_agrees_with_bruteforce(cnf):
    brute = cnf.model_count()
    assert is_satisfiable(cnf) == (brute > 0)
    model = solve(cnf)
    if brute > 0:
        assert cnf.evaluate(model)
    else:
        assert model is None


@settings(max_examples=120, deadline=None)
@given(cnfs())
def test_counter_agrees_with_bruteforce(cnf):
    assert count_models(cnf) == cnf.model_count()


@settings(max_examples=60, deadline=None)
@given(cnfs())
def test_counter_optimisation_invariance(cnf):
    """Counts are invariant to the optimisation switches (ABL2 safety)."""
    reference = count_models(cnf, use_components=True, use_cache=True)
    assert count_models(cnf, use_components=False,
                        use_cache=True) == reference
    assert count_models(cnf, use_components=True,
                        use_cache=False) == reference
    assert count_models(cnf, use_components=False,
                        use_cache=False) == reference


@settings(max_examples=60, deadline=None)
@given(cnfs())
def test_enumeration_agrees_with_bruteforce(cnf):
    expected = {tuple(sorted(m.items())) for m in cnf.models()}
    got = {tuple(sorted(m.items())) for m in enumerate_models(cnf)}
    assert got == expected
    assert len(list(enumerate_models(cnf))) == len(expected)


def test_count_with_free_variables():
    cnf = Cnf([(1,)], num_vars=10)
    assert count_models(cnf) == 2 ** 9


def test_count_empty_cnf():
    assert count_models(Cnf([], num_vars=4)) == 16


def test_count_empty_clause():
    assert count_models(Cnf([()], num_vars=4)) == 0


def test_components_split():
    parts = split_components([(1, 2), (2, 3), (4, 5), (6,)])
    assert len(parts) == 3
    sizes = sorted(len(p) for p in parts)
    assert sizes == [1, 1, 2]


def test_components_connected_through_shared_var():
    parts = split_components([(1, 2), (3, 4), (2, 3)])
    assert len(parts) == 1


def test_components_empty():
    assert split_components([]) == []


def test_component_counting_multiplies():
    # two independent exactly-one groups: 3 * 3 = 9 models
    clauses = exactly_one([1, 2, 3]) + exactly_one([4, 5, 6])
    cnf = Cnf(clauses, num_vars=6)
    counter = ModelCounter()
    assert counter.count(cnf) == 9


def test_cache_is_used_on_repeated_components():
    # chain structure produces repeated subproblems
    clauses = [(i, i + 1) for i in range(1, 12)]
    cnf = Cnf(clauses, num_vars=12)
    counter = ModelCounter()
    count = counter.count(cnf)
    assert count == cnf.model_count()
    assert counter.cache_hits > 0


def test_counter_statistics_reset_between_runs():
    cnf = Cnf([(1, 2), (-1, 2)], num_vars=2)
    counter = ModelCounter()
    counter.count(cnf)
    first_decisions = counter.decisions
    counter.count(cnf)
    assert counter.decisions == first_decisions
