"""Tests for classifiers and their compilation into circuits."""

import itertools
import random

import pytest

from repro.bayesnet import BayesianNetwork, medical_network
from repro.classifiers import (BinarizedNeuralNetwork, BnClassifier,
                               DecisionTree, NaiveBayesClassifier,
                               RandomForest, compile_bnn,
                               compile_decision_function, compile_forest,
                               compile_naive_bayes, digit_dataset,
                               digit_template, generate_digit_images,
                               image_variables, render_image,
                               threshold_obdd, threshold_of_functions)
from repro.logic import iter_assignments
from repro.obdd import ObddManager


# -- threshold compilation ------------------------------------------------------

def test_threshold_obdd_exhaustive():
    manager = ObddManager([1, 2, 3, 4])
    weights = [2.0, -1.0, 3.0, 0.5]
    for threshold in (-1.0, 0.0, 1.5, 2.0, 4.0, 6.0):
        node = threshold_obdd(manager, [1, 2, 3, 4], weights, threshold)
        for a in iter_assignments([1, 2, 3, 4]):
            total = sum(w for v, w in zip([1, 2, 3, 4], weights) if a[v])
            assert node.evaluate(a) == (total >= threshold)


def test_threshold_constant_cases():
    manager = ObddManager([1, 2])
    assert threshold_obdd(manager, [1, 2], [1.0, 1.0], -1.0) is manager.one
    assert threshold_obdd(manager, [1, 2], [1.0, 1.0], 5.0) is manager.zero


def test_threshold_weight_mismatch():
    manager = ObddManager([1, 2])
    with pytest.raises(ValueError):
        threshold_obdd(manager, [1, 2], [1.0], 0.0)


def test_threshold_of_functions():
    manager = ObddManager([1, 2, 3])
    g1 = manager.literal(1) & manager.literal(2)
    g2 = manager.literal(3)
    node = threshold_of_functions(manager, [g1, g2], [1.0, 1.0], 2.0)
    for a in iter_assignments([1, 2, 3]):
        expected = (a[1] and a[2]) and a[3]
        assert node.evaluate(a) == expected


# -- naive Bayes ---------------------------------------------------------------

def pregnancy_classifier(threshold=0.9):
    """A Fig 25-style classifier: class P, tests B=1, U=2, S=3."""
    return NaiveBayesClassifier(
        prior=0.87,
        likelihoods={1: (0.64, 0.09), 2: (0.72, 0.21), 3: (0.89, 0.27)},
        threshold=threshold)


def test_nb_posterior_sanity():
    nb = pregnancy_classifier()
    all_pos = nb.posterior({1: True, 2: True, 3: True})
    all_neg = nb.posterior({1: False, 2: False, 3: False})
    assert all_pos > 0.9 > all_neg


def test_nb_validation():
    with pytest.raises(ValueError):
        NaiveBayesClassifier(0.0, {1: (0.5, 0.5)})
    with pytest.raises(ValueError):
        NaiveBayesClassifier(0.5, {1: (0.5, 0.5)}, threshold=1.0)
    with pytest.raises(ValueError):
        NaiveBayesClassifier(0.5, {1: (1.5, 0.5)})


def test_nb_fit_learns_frequencies():
    rng = random.Random(0)
    truth = pregnancy_classifier(threshold=0.5)
    instances, labels = [], []
    for _ in range(4000):
        label = rng.random() < truth.prior
        inst = {}
        for var, (p1, p0) in truth.likelihoods.items():
            inst[var] = rng.random() < (p1 if label else p0)
        instances.append(inst)
        labels.append(label)
    learned = NaiveBayesClassifier.fit(instances, labels)
    assert abs(learned.prior - truth.prior) < 0.05
    for var in truth.likelihoods:
        assert abs(learned.likelihoods[var][0] -
                   truth.likelihoods[var][0]) < 0.07


@pytest.mark.parametrize("threshold", [0.2, 0.5, 0.75, 0.9, 0.99])
def test_nb_compilation_agrees_everywhere(threshold):
    """Fig 25: the decision graph has the same input-output behaviour."""
    nb = pregnancy_classifier(threshold)
    node = compile_naive_bayes(nb)
    for a in iter_assignments([1, 2, 3]):
        assert node.evaluate(a) == nb.decide(a)


def test_nb_compilation_with_extreme_likelihoods():
    nb = NaiveBayesClassifier(
        prior=0.5, likelihoods={1: (1.0, 0.0), 2: (0.6, 0.4)},
        threshold=0.5)
    node = compile_naive_bayes(nb)
    for a in iter_assignments([1, 2]):
        try:
            expected = nb.decide(a)
        except ZeroDivisionError:
            continue
        assert node.evaluate(a) == expected


def test_nb_compilation_larger_random():
    rng = random.Random(3)
    for trial in range(5):
        likelihoods = {v: (rng.uniform(0.05, 0.95),
                           rng.uniform(0.05, 0.95))
                       for v in range(1, 9)}
        nb = NaiveBayesClassifier(rng.uniform(0.2, 0.8), likelihoods,
                                  threshold=rng.uniform(0.2, 0.8))
        node = compile_naive_bayes(nb)
        for a in iter_assignments(range(1, 9)):
            assert node.evaluate(a) == nb.decide(a)


# -- BN classifier ---------------------------------------------------------------

def test_bn_classifier_compilation():
    net = medical_network()
    clf = BnClassifier(net, "c", ["sex", "T1", "T2"], threshold=0.3)
    node = clf.compile()
    func = clf.decision_function()
    for a in iter_assignments([1, 2, 3]):
        assert node.evaluate(a) == func(a)


def test_bn_classifier_rejects_multistate():
    net = BayesianNetwork()
    net.add_variable("X", (), [0.2, 0.3, 0.5])
    net.add_variable("C", (), [0.5, 0.5])
    with pytest.raises(ValueError):
        BnClassifier(net, "C", ["X"])


def test_compile_decision_function_refuses_huge():
    manager = ObddManager(list(range(1, 30)))
    with pytest.raises(ValueError):
        compile_decision_function(lambda a: True, list(range(1, 30)),
                                  manager)


def test_compile_decision_function_parity():
    variables = [1, 2, 3, 4]
    manager = ObddManager(variables)

    def parity(a):
        return sum(a[v] for v in variables) % 2 == 1

    node = compile_decision_function(parity, variables, manager)
    for a in iter_assignments(variables):
        assert node.evaluate(a) == parity(a)
    assert node.size() == 7  # parity OBDD is 2 nodes per middle level


# -- decision trees and forests ----------------------------------------------------

def toy_data():
    instances = [dict(zip([1, 2, 3], bits))
                 for bits in itertools.product((False, True), repeat=3)]
    labels = [inst[1] and (inst[2] or inst[3]) for inst in instances]
    return instances, labels


def test_decision_tree_fits_exactly():
    instances, labels = toy_data()
    tree = DecisionTree.fit(instances, labels, max_depth=5)
    for inst, label in zip(instances, labels):
        assert tree.decide(inst) == label
    assert tree.depth() <= 3


def test_decision_tree_formula_matches():
    instances, labels = toy_data()
    tree = DecisionTree.fit(instances, labels)
    formula = tree.to_formula()
    for inst in instances:
        assert formula.evaluate(inst) == tree.decide(inst)


def test_decision_tree_constant_labels():
    instances, _ = toy_data()
    tree = DecisionTree.fit(instances, [True] * len(instances))
    assert all(tree.decide(inst) for inst in instances)
    from repro.logic import TRUE
    assert tree.to_formula() == TRUE


def test_forest_majority_and_compilation():
    rng = random.Random(1)
    instances, labels = digit_dataset(1, 2, 30, size=3, noise=0.1,
                                      rng=rng)
    forest = RandomForest.fit(instances, labels, num_trees=5,
                              max_depth=4, rng=rng)
    node = compile_forest(forest)
    # exact agreement on the whole input space (9 pixels)
    for a in iter_assignments(range(1, 10)):
        assert node.evaluate(a) == forest.decide(a)
    assert forest.accuracy(instances, labels) > 0.8


def test_forest_needs_trees():
    with pytest.raises(ValueError):
        RandomForest([])


def test_forest_tie_votes_negative():
    instances, labels = toy_data()
    t1 = DecisionTree.fit(instances, [True] * 8)
    t2 = DecisionTree.fit(instances, [False] * 8)
    forest = RandomForest([t1, t2])
    assert not forest.decide(instances[0])  # 1 of 2 votes: tie -> False


# -- binarized networks ---------------------------------------------------------------

def test_bnn_validation():
    with pytest.raises(ValueError):  # output layer must be width 1
        BinarizedNeuralNetwork([[[1, 1], [1, -1]]], [[0.5, 0.5]], [1, 2])
    with pytest.raises(ValueError):  # weights must be ±1
        BinarizedNeuralNetwork([[[2, 1]]], [[0.5]], [1, 2])
    with pytest.raises(ValueError):  # fan-in mismatch
        BinarizedNeuralNetwork([[[1]]], [[0.5]], [1, 2])


def test_bnn_forward_manual():
    # single neuron: x1 + x2 >= 1.5 == AND
    net = BinarizedNeuralNetwork([[[1, 1]]], [[1.5]], [1, 2])
    assert net.forward({1: True, 2: True})
    assert not net.forward({1: True, 2: False})


def test_bnn_compilation_agrees_everywhere():
    rng = random.Random(5)
    instances, labels = digit_dataset(0, 1, 30, size=3, noise=0.1,
                                      rng=rng)
    net = BinarizedNeuralNetwork.train(instances, labels, hidden=(3,),
                                       seed=2)
    node, layers = compile_bnn(net)
    for a in iter_assignments(range(1, 10)):
        assert node.evaluate(a) == net.forward(a)
    assert len(layers) == 2
    assert len(layers[0]) == 3 and len(layers[1]) == 1


def test_bnn_training_improves_over_random():
    rng = random.Random(7)
    instances, labels = digit_dataset(1, 2, 50, size=4, noise=0.08,
                                      rng=rng)
    net = BinarizedNeuralNetwork.train(instances, labels, hidden=(4,),
                                       seed=3)
    assert net.accuracy(instances, labels) > 0.85


def test_bnn_neuron_circuits_match_neurons():
    """Per-neuron interpretation (Section 5.2): each first-layer neuron
    circuit agrees with the neuron's threshold test."""
    net = BinarizedNeuralNetwork([[[1, -1], [-1, 1]], [[1, 1]]],
                                 [[0.5, 0.5], [1.5]], [1, 2])
    node, layers = compile_bnn(net)
    for a in iter_assignments([1, 2]):
        x = [1.0 if a[v] else 0.0 for v in [1, 2]]
        fire0 = x[0] - x[1] >= 0.5
        fire1 = -x[0] + x[1] >= 0.5
        assert layers[0][0].evaluate(a) == fire0
        assert layers[0][1].evaluate(a) == fire1


# -- datasets --------------------------------------------------------------------

def test_digit_templates_distinct():
    for size in (3, 4, 5, 8):
        t0 = digit_template(0, size)
        t1 = digit_template(1, size)
        t2 = digit_template(2, size)
        assert t0 != t1 and t1 != t2 and t0 != t2
        assert set(t0) == set(image_variables(size))


def test_digit_template_unknown():
    with pytest.raises(ValueError):
        digit_template(7, 4)


def test_generate_digit_images_noise():
    rng = random.Random(0)
    images = generate_digit_images(0, 50, size=4, noise=0.2, rng=rng)
    template = digit_template(0, 4)
    flips = sum(sum(1 for v in img if img[v] != template[v])
                for img in images)
    rate = flips / (50 * 16)
    assert 0.1 < rate < 0.3


def test_render_image():
    text = render_image(digit_template(1, 5), 5)
    assert len(text.splitlines()) == 5
    assert "#" in text and "." in text
