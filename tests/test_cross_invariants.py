"""Cross-module property tests: invariants that tie the engines
together (hypothesis-driven)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compile import compile_cnf
from repro.logic import Cnf, iter_assignments
from repro.nnf import (marginal_counts, model_count, sample_model,
                       smooth)
from repro.obdd import compile_cnf_obdd, model_count as obdd_count
from repro.psdd import (learn_parameters, marginal, multiply,
                        psdd_from_sdd, variable_marginals)
from repro.sdd import (SddManager, compile_cnf_sdd, condition,
                       enumerate_models as sdd_models,
                       model_count as sdd_count)
from repro.vtree import balanced_vtree


def cnfs(max_var=5, max_clauses=7):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


@settings(max_examples=60, deadline=None)
@given(cnfs())
def test_three_compilers_one_count(cnf):
    """d-DNNF, SDD and OBDD compilation agree with brute force."""
    brute = cnf.model_count()
    full = range(1, cnf.num_vars + 1)
    assert model_count(compile_cnf(cnf), full) == brute
    sdd, _sm = compile_cnf_sdd(cnf)
    assert sdd_count(sdd) == brute
    obdd, _om = compile_cnf_obdd(cnf)
    assert obdd_count(obdd) == brute


@settings(max_examples=50, deadline=None)
@given(cnfs())
def test_marginal_counts_partition_the_models(cnf):
    """count(ℓ) + count(¬ℓ) == total for every variable."""
    root = smooth(compile_cnf(cnf))
    variables = sorted(root.variables())
    if not variables:
        return
    total = model_count(root)
    counts = marginal_counts(root)
    for var in variables:
        assert counts[var] + counts[-var] == total


@settings(max_examples=40, deadline=None)
@given(cnfs(max_var=4), st.integers(1, 4), st.booleans(),
       st.integers(1, 4), st.booleans())
def test_sdd_condition_composes(cnf, v1, b1, v2, b2):
    """condition(condition(f, e1), e2) == condition(f, e1 ∪ e2)."""
    if v1 == v2 and b1 != b2:
        return
    root, _manager = compile_cnf_sdd(cnf)
    stepwise = condition(condition(root, {v1: b1}), {v2: b2})
    joint = condition(root, {v1: b1, v2: b2})
    assert stepwise is joint  # canonicity turns equality into identity


@settings(max_examples=30, deadline=None)
@given(cnfs(max_var=4))
def test_sdd_model_enumeration_matches_count(cnf):
    root, _manager = compile_cnf_sdd(cnf)
    models = list(sdd_models(root))
    assert len(models) == sdd_count(root)
    keys = {tuple(sorted(m.items())) for m in models}
    assert len(keys) == len(models)  # no duplicates
    for m in models:
        assert cnf.evaluate(m)


def _learned_psdd(manager, cnf, rng):
    root, _m = compile_cnf_sdd(cnf, manager=manager)
    if root.is_false:
        return None
    psdd = psdd_from_sdd(root)
    data = [(m, rng.randint(1, 4)) for m in sdd_models(root)]
    learn_parameters(psdd, data, alpha=0.2)
    return psdd


def test_psdd_multiply_is_commutative():
    rng = random.Random(31)
    manager = SddManager(balanced_vtree([1, 2, 3, 4]))
    p = _learned_psdd(manager, Cnf([(1, 2)], num_vars=4), rng)
    q = _learned_psdd(manager, Cnf([(-2, 3), (1, 4)], num_vars=4), rng)
    pq, z_pq = multiply(p, q)
    qp, z_qp = multiply(q, p)
    assert z_pq == pytest.approx(z_qp)
    for a in iter_assignments([1, 2, 3, 4]):
        assert pq.probability(a) == pytest.approx(qp.probability(a))


def test_psdd_multiply_is_associative_in_distribution():
    rng = random.Random(32)
    manager = SddManager(balanced_vtree([1, 2, 3]))
    p = _learned_psdd(manager, Cnf([(1, 2)], num_vars=3), rng)
    q = _learned_psdd(manager, Cnf([(2, 3)], num_vars=3), rng)
    r = _learned_psdd(manager, Cnf([(-1, 3)], num_vars=3), rng)
    pq, z1 = multiply(p, q)
    pq_r, z2 = multiply(pq, r)
    qr, z3 = multiply(q, r)
    p_qr, z4 = multiply(p, qr)
    assert z1 * z2 == pytest.approx(z3 * z4)
    for a in iter_assignments([1, 2, 3]):
        assert pq_r.probability(a) == pytest.approx(p_qr.probability(a))


@settings(max_examples=20, deadline=None)
@given(cnfs(max_var=4, max_clauses=4))
def test_psdd_marginals_are_consistent(cnf):
    rng = random.Random(33)
    manager = SddManager(balanced_vtree([1, 2, 3, 4]))
    psdd = _learned_psdd(manager, cnf, rng)
    if psdd is None:
        return
    marginals = variable_marginals(psdd)
    for var, p_true in marginals.items():
        p_false = marginal(psdd, {var: False})
        assert p_true + p_false == pytest.approx(1.0)
        # chain rule on a pair
        other = 1 if var != 1 else 2
        joint = marginal(psdd, {var: True, other: True}) + \
            marginal(psdd, {var: True, other: False})
        assert joint == pytest.approx(p_true)


def test_weighted_sampling_matches_conditionals():
    """Samples from a weighted d-DNNF follow the induced distribution."""
    cnf = Cnf([(1, 2), (-1, 3)], num_vars=3)
    root = compile_cnf(cnf)
    weights = {1: 0.8, -1: 0.2, 2: 0.4, -2: 0.6, 3: 0.7, -3: 0.3}
    # exact conditional Pr(x1=1 | model)
    def w(a):
        value = 1.0
        for v, val in a.items():
            value *= weights[v if val else -v]
        return value
    total = sum(w(a) for a in iter_assignments([1, 2, 3])
                if cnf.evaluate(a))
    p1 = sum(w(a) for a in iter_assignments([1, 2, 3])
             if cnf.evaluate(a) and a[1]) / total
    rng = random.Random(3)
    n = 5000
    hits = sum(1 for _ in range(n)
               if sample_model(root, [1, 2, 3], rng, weights)[1])
    assert abs(hits / n - p1) < 0.03
