"""Tests for conditional PSDDs, SBNs and hierarchical maps."""

import random

import pytest

from repro.condpsdd import (ClusterDag, ConditionalPsdd, HierarchicalMap,
                            StructuredBayesianNetwork)
from repro.logic import iter_assignments
from repro.psdd import psdd_from_sdd, support_size
from repro.sdd import SddManager
from repro.spaces import grid_map
from repro.vtree import balanced_vtree

A, B, X, Y = 1, 2, 3, 4  # variable numbering of the Fig 21 example


def fig21_conditional():
    """The paper's Fig 21: structured space over X,Y conditioned on A,B.

    Context a0,b0 has space x0 ∨ y0; every other parent state has space
    x1 ∨ y1 (state 0 = False, 1 = True).
    """
    parent_manager = SddManager(balanced_vtree([A, B]))
    child_manager = SddManager(balanced_vtree([X, Y]))
    gate_a0b0 = parent_manager.term([-A, -B])
    gate_rest = parent_manager.negate(gate_a0b0)
    space_a0b0 = child_manager.clause([-X, -Y])  # x0 ∨ y0
    space_rest = child_manager.clause([X, Y])    # x1 ∨ y1
    conditional = ConditionalPsdd(
        [(gate_a0b0, space_a0b0), (gate_rest, space_rest)],
        parent_manager, child_manager)
    return conditional, parent_manager, child_manager


def test_fig21_contexts_and_selection():
    conditional, _pm, _cm = fig21_conditional()
    assert conditional.num_contexts == 2
    # Fig 24: state a0,b0 selects the first distribution, others the second
    assert conditional.context_index({A: False, B: False}) == 0
    for a, b in ((True, False), (False, True), (True, True)):
        assert conditional.context_index({A: a, B: b}) == 1


def test_fig21_conditional_spaces():
    conditional, _pm, _cm = fig21_conditional()
    psdd_a0b0 = conditional.select({A: False, B: False})
    psdd_rest = conditional.select({A: True, B: False})
    assert support_size(psdd_a0b0) == 3  # x0∨y0 has 3 models
    assert support_size(psdd_rest) == 3
    # x1,y1 is outside the a0,b0 space
    assert conditional.probability({X: True, Y: True},
                                   {A: False, B: False}) == 0.0
    assert conditional.probability({X: False, Y: False},
                                   {A: True, B: True}) == 0.0


def test_conditional_distributions_normalize():
    conditional, _pm, _cm = fig21_conditional()
    for a, b in ((False, False), (True, False)):
        total = sum(conditional.probability({X: x, Y: y}, {A: a, B: b})
                    for x in (False, True) for y in (False, True))
        assert total == pytest.approx(1.0)


def test_conditional_fit():
    conditional, _pm, _cm = fig21_conditional()
    data = [
        ({A: False, B: False}, {X: False, Y: False}, 6),
        ({A: False, B: False}, {X: False, Y: True}, 2),
        ({A: True, B: True}, {X: True, Y: True}, 4),
        ({A: True, B: False}, {X: True, Y: False}, 4),
    ]
    conditional.fit(data, alpha=0.0)
    # within context a0b0: x0y0 seen 6 of 8
    assert conditional.probability({X: False, Y: False},
                                   {A: False, B: False}) == \
        pytest.approx(6 / 8)
    # within the other context: x1y1 and x1y0 each 4 of 8
    assert conditional.probability({X: True, Y: True},
                                   {A: True, B: True}) == \
        pytest.approx(4 / 8)


def test_conditional_gate_validation():
    parent_manager = SddManager(balanced_vtree([A, B]))
    child_manager = SddManager(balanced_vtree([X]))
    space = child_manager.true
    overlapping = [(parent_manager.literal(A), space),
                   (parent_manager.true, space)]
    with pytest.raises(ValueError):
        ConditionalPsdd(overlapping, parent_manager, child_manager)
    not_exhaustive = [(parent_manager.literal(A), space)]
    with pytest.raises(ValueError):
        ConditionalPsdd(not_exhaustive, parent_manager, child_manager)
    with pytest.raises(ValueError):
        ConditionalPsdd([], parent_manager, child_manager)


def test_conditional_sampling():
    conditional, _pm, _cm = fig21_conditional()
    rng = random.Random(2)
    for _ in range(50):
        sample = conditional.sample({A: False, B: False}, rng)
        assert not (sample[X] and sample[Y])  # inside x0 ∨ y0


# -- cluster DAGs / SBNs -------------------------------------------------------------

def test_cluster_dag_validation():
    dag = ClusterDag()
    dag.add_cluster("p", [1, 2])
    with pytest.raises(ValueError):
        dag.add_cluster("p", [3])
    with pytest.raises(ValueError):
        dag.add_cluster("q", [2, 3])  # overlap
    with pytest.raises(ValueError):
        dag.add_cluster("q", [3], parents=["nope"])
    dag.add_cluster("q", [3, 4], parents=["p"])
    assert dag.parent_variables("q") == (1, 2)
    assert dag.all_variables() == [1, 2, 3, 4]


def test_sbn_joint_is_normalized():
    """A two-cluster SBN built from the Fig 21 conditional: the joint
    sums to one over all 16 assignments."""
    conditional, parent_manager, _cm = fig21_conditional()
    dag = ClusterDag()
    dag.add_cluster("parents", [A, B])
    dag.add_cluster("children", [X, Y], parents=["parents"])
    sbn = StructuredBayesianNetwork(dag)
    sbn.set_root_distribution("parents",
                              psdd_from_sdd(parent_manager.true))
    sbn.set_conditional("children", conditional)
    total = sum(sbn.probability(a) for a in iter_assignments([1, 2, 3, 4]))
    assert total == pytest.approx(1.0)


def test_sbn_quantification_errors():
    conditional, parent_manager, _cm = fig21_conditional()
    dag = ClusterDag()
    dag.add_cluster("parents", [A, B])
    dag.add_cluster("children", [X, Y], parents=["parents"])
    sbn = StructuredBayesianNetwork(dag)
    with pytest.raises(ValueError):
        sbn.probability({A: False, B: False, X: False, Y: False})
    with pytest.raises(ValueError):
        sbn.set_conditional("parents", conditional)
    with pytest.raises(ValueError):
        sbn.set_root_distribution("children",
                                  psdd_from_sdd(parent_manager.true))


def test_sbn_fit_and_sample():
    conditional, parent_manager, _cm = fig21_conditional()
    dag = ClusterDag()
    dag.add_cluster("parents", [A, B])
    dag.add_cluster("children", [X, Y], parents=["parents"])
    sbn = StructuredBayesianNetwork(dag)
    sbn.set_root_distribution("parents",
                              psdd_from_sdd(parent_manager.true))
    sbn.set_conditional("children", conditional)
    data = [
        ({A: False, B: False, X: False, Y: False}, 10),
        ({A: True, B: True, X: True, Y: True}, 10),
    ]
    sbn.fit(data, alpha=0.1)
    rng = random.Random(4)
    for _ in range(30):
        sample = sbn.sample(rng)
        assert set(sample) == {A, B, X, Y}
        assert sbn.probability(sample) > 0


# -- hierarchical maps ---------------------------------------------------------------

def westside():
    gm = grid_map(3, 4)
    regions = {"west": [(r, c) for r in range(3) for c in range(2)],
               "east": [(r, c) for r in range(3) for c in range(2, 4)]}
    return gm, regions


def test_hierarchical_route_filter():
    gm, regions = westside()
    hm = HierarchicalMap(gm, regions, (0, 0), (2, 3))
    assert len(hm.routes) < len(hm.all_routes)
    for route in hm.routes:
        assert hm.is_hierarchical_route(route)


def test_hierarchical_distribution_sums_to_one():
    gm, regions = westside()
    hm = HierarchicalMap(gm, regions, (0, 0), (2, 3))
    rng = random.Random(1)
    trajectories = [hm.routes[rng.randrange(len(hm.routes))]
                    for _ in range(200)]
    hm.fit(trajectories, alpha=0.05)
    total = sum(hm.route_probability(route) for route in hm.routes)
    assert total == pytest.approx(1.0)


def test_hierarchical_samples_are_valid_routes():
    gm, regions = westside()
    hm = HierarchicalMap(gm, regions, (0, 0), (2, 3))
    rng = random.Random(3)
    trajectories = [hm.routes[rng.randrange(len(hm.routes))]
                    for _ in range(100)]
    hm.fit(trajectories, alpha=0.05)
    for _ in range(100):
        assignment = hm.sample_route_assignment(rng)
        assert gm.is_route(assignment, (0, 0), (2, 3))
        # and hierarchical: every sampled route is in the model's space
        edges = gm.assignment_route_edges(assignment)
        import networkx as nx
        path = nx.shortest_path(nx.Graph(edges), (0, 0), (2, 3))
        assert hm.is_hierarchical_route(path)


def test_hierarchical_learns_frequencies():
    gm, regions = westside()
    hm = HierarchicalMap(gm, regions, (0, 0), (2, 3))
    favourite = hm.routes[0]
    other = hm.routes[1]
    hm.fit([favourite] * 9 + [other] * 1)
    assert hm.route_probability(favourite) > hm.route_probability(other)


def test_hierarchical_validation():
    gm, regions = westside()
    with pytest.raises(ValueError):  # same region endpoints
        HierarchicalMap(gm, regions, (0, 0), (2, 1))
    with pytest.raises(ValueError):  # nodes not covered
        HierarchicalMap(gm, {"west": [(0, 0)]}, (0, 0), (2, 3))
    overlapping = {"west": [(r, c) for r in range(3) for c in range(2)],
                   "east": [(r, c) for r in range(3) for c in range(1, 4)]}
    with pytest.raises(ValueError):
        HierarchicalMap(gm, overlapping, (0, 0), (2, 3))


def test_three_region_hierarchy():
    gm = grid_map(3, 4)
    regions = {"a": [(r, c) for r in range(3) for c in range(2)],
               "b": [(r, 2) for r in range(3)],
               "c": [(r, 3) for r in range(3)]}
    hm = HierarchicalMap(gm, regions, (0, 0), (2, 3))
    rng = random.Random(9)
    trajectories = [hm.routes[rng.randrange(len(hm.routes))]
                    for _ in range(200)]
    hm.fit(trajectories, alpha=0.05)
    total = sum(hm.route_probability(route) for route in hm.routes)
    assert total == pytest.approx(1.0)
