"""Tests for the Decision-DNNF compiler (exhaustive DPLL trace)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Cnf, iter_assignments, parse, to_cnf, VarMap
from repro.compile import DnnfCompiler, compile_cnf
from repro.nnf import (is_decision_dnnf, is_decomposable, is_deterministic,
                       model_count, weighted_model_count)


def cnfs(max_var=5, max_clauses=7):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


def test_compile_empty_cnf():
    root = compile_cnf(Cnf([], num_vars=3))
    assert root.is_true
    assert model_count(root, [1, 2, 3]) == 8


def test_compile_unsat():
    root = compile_cnf(Cnf([(1,), (-1,)]))
    assert root.is_false


def test_compile_empty_clause():
    root = compile_cnf(Cnf([()], num_vars=2))
    assert root.is_false


def test_compile_unit_clauses():
    root = compile_cnf(Cnf([(1,), (-2,)], num_vars=2))
    assert model_count(root, [1, 2]) == 1
    assert root.evaluate({1: True, 2: False})


def test_fig8_nine_of_sixteen():
    """The paper's running example: 9 satisfying inputs out of 16."""
    vm = VarMap()
    f = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    root = compile_cnf(to_cnf(f))
    assert model_count(root, range(1, 5)) == 9


@settings(max_examples=120, deadline=None)
@given(cnfs())
def test_compiled_circuit_is_equivalent(cnf):
    root = compile_cnf(cnf)
    for assignment in iter_assignments(range(1, cnf.num_vars + 1)):
        assert root.evaluate(assignment) == cnf.evaluate(assignment) \
            if root.variables() else True
    # counting agreement
    assert model_count(root, range(1, cnf.num_vars + 1)) == \
        cnf.model_count()


@settings(max_examples=80, deadline=None)
@given(cnfs())
def test_compiled_circuit_properties(cnf):
    root = compile_cnf(cnf)
    assert is_decomposable(root)
    assert is_decision_dnnf(root)
    if len(root.variables()) <= 10:
        assert is_deterministic(root)


@settings(max_examples=50, deadline=None)
@given(cnfs())
def test_optimisation_switches_preserve_semantics(cnf):
    reference = cnf.model_count()
    full = range(1, cnf.num_vars + 1)
    for use_components in (True, False):
        for use_cache in (True, False):
            compiler = DnnfCompiler(use_components=use_components,
                                    use_cache=use_cache)
            root = compiler.compile(cnf)
            assert model_count(root, full) == reference


@settings(max_examples=50, deadline=None)
@given(cnfs(max_var=5))
def test_priority_ordering_respected(cnf):
    """With priority=[1,2], no decision on other vars happens above an
    undecided priority var on any path of the circuit."""
    priority = [1, 2]
    compiler = DnnfCompiler(priority=priority)
    root = compiler.compile(cnf)
    full = range(1, cnf.num_vars + 1)
    assert model_count(root, full) == cnf.model_count()
    _assert_priority_paths(root, set(priority))


def _assert_priority_paths(root, priority_vars):
    """On every root-to-leaf path, once a non-priority decision is made,
    no decision on a *remaining relevant* priority variable may follow.
    Sufficient check: in any or-decision on a non-priority variable, the
    subcircuit must not contain or-decisions on priority variables."""
    from repro.nnf.properties import is_decision_node

    def or_decision_vars(node):
        return {is_decision_node(n) for n in node.topological()
                if n.is_or and is_decision_node(n) is not None}

    for node in root.topological():
        if node.is_or:
            var = is_decision_node(node)
            if var is not None and var not in priority_vars:
                below = or_decision_vars(node) - {None}
                assert not (below & priority_vars)


def test_compiler_statistics():
    cnf = Cnf([(i, i + 1) for i in range(1, 10)], num_vars=10)
    compiler = DnnfCompiler()
    compiler.compile(cnf)
    assert compiler.decisions > 0
    # repeated chain components should hit the cache
    assert compiler.cache_hits >= 0


def test_wmc_on_compiled_circuit():
    cnf = Cnf([(1, 2)], num_vars=2)
    root = compile_cnf(cnf)
    weights = {1: 0.6, -1: 0.4, 2: 0.3, -2: 0.7}
    # P(x1 or x2) = 1 - 0.4*0.7
    assert weighted_model_count(root, weights, [1, 2]) == \
        pytest.approx(1 - 0.28)
