"""Tests for decision/model robustness and monotonicity (Fig 29)."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Cnf, iter_assignments
from repro.obdd import ObddManager, compile_cnf_obdd
from repro.robust import (decision_robustness, depends_on,
                          is_monotone_in, model_robustness,
                          monotone_report, robustness_histogram,
                          robustness_summary)


def brute_robustness(node, instance, variables):
    decision = node.evaluate(instance)
    best = float("inf")
    for a in iter_assignments(variables):
        if node.evaluate(a) != decision:
            flips = sum(1 for v in variables if a[v] != instance[v])
            best = min(best, flips)
    return best


def test_decision_robustness_simple():
    m = ObddManager([1, 2, 3])
    f = m.literal(1) & m.literal(2)
    assert decision_robustness(f, {1: True, 2: True, 3: False}) == 1
    assert decision_robustness(f, {1: False, 2: False, 3: False}) == 2
    assert decision_robustness(f, {1: True, 2: False, 3: True}) == 1


def test_decision_robustness_constant():
    m = ObddManager([1, 2])
    assert decision_robustness(m.one, {1: True, 2: True}) == float("inf")


@settings(max_examples=80, deadline=None)
@given(st.lists(st.lists(st.integers(1, 4).flatmap(
    lambda v: st.sampled_from([v, -v])), min_size=1, max_size=3
).map(tuple), min_size=1, max_size=6), st.integers(0, 15))
def test_decision_robustness_matches_bruteforce(clauses, bits):
    cnf = Cnf(clauses, num_vars=4)
    node, manager = compile_cnf_obdd(cnf)
    instance = {v: bool((bits >> (v - 1)) & 1) for v in range(1, 5)}
    assert decision_robustness(node, instance) == \
        brute_robustness(node, instance, [1, 2, 3, 4])


def test_robustness_histogram_bruteforce():
    m = ObddManager([1, 2, 3])
    f = (m.literal(1) & m.literal(2)) | m.literal(3)
    histogram = robustness_histogram(f)
    brute = collections.Counter(
        brute_robustness(f, a, [1, 2, 3])
        for a in iter_assignments([1, 2, 3]))
    assert histogram == dict(brute)
    assert sum(histogram.values()) == 8


def test_robustness_histogram_constant():
    m = ObddManager([1, 2])
    assert robustness_histogram(m.one) == {}
    with pytest.raises(ValueError):
        model_robustness(m.one)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.lists(st.integers(1, 4).flatmap(
    lambda v: st.sampled_from([v, -v])), min_size=1, max_size=3
).map(tuple), min_size=1, max_size=6))
def test_histogram_matches_bruteforce(clauses):
    cnf = Cnf(clauses, num_vars=4)
    node, manager = compile_cnf_obdd(cnf)
    if node.is_terminal:
        return
    histogram = robustness_histogram(node)
    brute = collections.Counter(
        brute_robustness(node, a, [1, 2, 3, 4])
        for a in iter_assignments([1, 2, 3, 4]))
    assert histogram == dict(brute)


def test_model_robustness_average():
    m = ObddManager([1, 2, 3])
    f = (m.literal(1) & m.literal(2)) | m.literal(3)
    values = [brute_robustness(f, a, [1, 2, 3])
              for a in iter_assignments([1, 2, 3])]
    assert model_robustness(f) == pytest.approx(sum(values) / len(values))


def test_robustness_summary_fields():
    m = ObddManager([1, 2, 3])
    f = m.literal(1) & m.literal(2)
    summary = robustness_summary(f)
    assert summary["max_robustness"] == 2
    assert sum(summary["proportions"].values()) == pytest.approx(1.0)
    assert summary["model_robustness"] > 0


# -- monotonicity ------------------------------------------------------------------

def test_monotone_increasing():
    m = ObddManager([1, 2])
    f = m.literal(1) | m.literal(2)
    assert is_monotone_in(f, 1)
    assert is_monotone_in(f, 2)
    assert not is_monotone_in(f, 1, increasing=False)


def test_monotone_decreasing():
    m = ObddManager([1, 2])
    f = m.literal(-1) & m.literal(2)
    assert is_monotone_in(f, 1, increasing=False)
    assert not is_monotone_in(f, 1, increasing=True)


def test_monotone_none():
    m = ObddManager([1, 2])
    f = m.literal(1) ^ m.literal(2)
    assert not is_monotone_in(f, 1)
    assert not is_monotone_in(f, 1, increasing=False)


def test_monotone_report_and_depends():
    m = ObddManager([1, 2, 3])
    f = (m.literal(1) & m.literal(-2)) | (m.literal(1) & m.literal(2))
    # simplifies to literal 1: ignores 2 and 3
    report = monotone_report(f)
    assert report[1] == "increasing"
    assert report[2] == "both"
    assert report[3] == "both"
    assert depends_on(f, 1)
    assert not depends_on(f, 2)


def test_monotone_loan_example():
    """The Section 5 loan property: higher income can never hurt."""
    m = ObddManager([1, 2, 3])  # 1=income high, 2=collateral, 3=debt
    approve = (m.literal(1) | m.literal(2)) & m.literal(-3)
    assert is_monotone_in(approve, 1)
    assert is_monotone_in(approve, 2)
    assert is_monotone_in(approve, 3, increasing=False)
