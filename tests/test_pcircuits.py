"""Tests for probabilistic circuits (AC/SPN/PSDD family) and LearnSPN."""

import math
import random

import pytest

from repro.logic import VarMap, iter_assignments, parse, to_cnf
from repro.pcircuits import ProbCircuit, learn_spn, psdd_to_circuit
from repro.psdd import learn_parameters, psdd_from_sdd
from repro.sdd import compile_cnf_sdd


def small_circuit():
    """Pr(A, B) = 0.6·Bern(A;0.9)·Bern(B;0.2) + 0.4·Bern(A;0.1)·Bern(B;0.7)"""
    circuit = ProbCircuit()
    left = circuit.product([circuit.leaf(1, 0.9), circuit.leaf(2, 0.2)])
    right = circuit.product([circuit.leaf(1, 0.1), circuit.leaf(2, 0.7)])
    return circuit.set_root(circuit.sum([left, right], [0.6, 0.4]))


def test_construction_invariants():
    circuit = ProbCircuit()
    a, b = circuit.leaf(1, 0.5), circuit.leaf(1, 0.3)
    with pytest.raises(ValueError):
        circuit.product([a, b])  # shared scope
    c = circuit.leaf(2, 0.5)
    with pytest.raises(ValueError):
        circuit.sum([a, c], [0.5, 0.5])  # different scopes
    with pytest.raises(ValueError):
        circuit.sum([a, b], [0.5])  # weight count
    with pytest.raises(ValueError):
        circuit.leaf(1, 1.5)


def test_sum_weights_normalized():
    circuit = ProbCircuit()
    a, b = circuit.leaf(1, 0.5), circuit.leaf(1, 0.3)
    node = circuit.sum([a, b], [2.0, 6.0])
    assert node.weights == [0.25, 0.75]


def test_evi_and_normalization():
    circuit = small_circuit()
    total = sum(circuit.probability(a) for a in iter_assignments([1, 2]))
    assert total == pytest.approx(1.0)
    p = circuit.probability({1: True, 2: False})
    assert p == pytest.approx(0.6 * 0.9 * 0.8 + 0.4 * 0.1 * 0.3)


def test_marginal_sums_out_missing():
    circuit = small_circuit()
    assert circuit.marginal({1: True}) == pytest.approx(
        circuit.probability({1: True, 2: True})
        + circuit.probability({1: True, 2: False}))
    assert circuit.marginal({}) == pytest.approx(1.0)


def test_evi_requires_complete_assignment():
    circuit = small_circuit()
    with pytest.raises(KeyError):
        circuit.probability({1: True})


def test_sampling_statistics():
    circuit = small_circuit()
    rng = random.Random(3)
    n = 4000
    count = sum(1 for _ in range(n)
                if circuit.sample(rng)[1])
    expected = circuit.marginal({1: True})
    assert abs(count / n - expected) < 0.03


def test_mixture_is_not_deterministic():
    assert not small_circuit().is_deterministic()


def test_psdd_to_circuit_equivalence():
    vm = VarMap()
    formula = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    sdd, _m = compile_cnf_sdd(to_cnf(formula))
    psdd = psdd_from_sdd(sdd)
    learn_parameters(psdd, [
        ({1: True, 2: True, 3: True, 4: True}, 3),
        ({1: True, 2: False, 3: True, 4: False}, 5),
        ({1: False, 2: True, 3: False, 4: False}, 2)], alpha=0.5)
    circuit = psdd_to_circuit(psdd)
    for a in iter_assignments([1, 2, 3, 4]):
        assert circuit.probability(a) == pytest.approx(
            psdd.probability(a))
    # PSDD-derived circuits are deterministic — exact max-product MPE
    assert circuit.is_deterministic()
    value, assignment = circuit.max_product()
    brute = max(circuit.probability(a)
                for a in iter_assignments([1, 2, 3, 4]))
    assert value == pytest.approx(brute)
    assert circuit.probability(assignment) == pytest.approx(brute)


def _correlated_rows(n, rng):
    rows = []
    for _ in range(n):
        a = rng.random() < 0.7
        b = a if rng.random() < 0.9 else not a
        c = rng.random() < 0.3
        d = c if rng.random() < 0.8 else not c
        rows.append({1: a, 2: b, 3: c, 4: d})
    return rows


def test_learn_spn_structure_and_normalization():
    rng = random.Random(0)
    rows = _correlated_rows(500, rng)
    spn = learn_spn(rows, [1, 2, 3, 4], rng=random.Random(1))
    total = sum(spn.probability(a) for a in iter_assignments([1, 2, 3, 4]))
    assert total == pytest.approx(1.0)
    kinds = {n.kind for n in spn.nodes()}
    assert "sum" in kinds and "product" in kinds
    # the independent pairs {1,2} and {3,4} should be split by a product
    assert spn.root.is_product


def test_learn_spn_beats_naive_on_correlated_data():
    rng = random.Random(0)
    train = _correlated_rows(600, rng)
    test = _correlated_rows(300, rng)
    spn = learn_spn(train, [1, 2, 3, 4], rng=random.Random(1))
    # naive fully-factorized baseline
    marginals = {v: sum(1 for r in train if r[v]) / len(train)
                 for v in (1, 2, 3, 4)}

    def naive(row):
        p = 1.0
        for v in (1, 2, 3, 4):
            p *= marginals[v] if row[v] else 1.0 - marginals[v]
        return p

    spn_ll = sum(math.log(spn.probability(r)) for r in test)
    naive_ll = sum(math.log(naive(r)) for r in test)
    assert spn_ll > naive_ll


def test_learn_spn_max_product_is_lower_bound():
    rng = random.Random(2)
    rows = _correlated_rows(400, rng)
    spn = learn_spn(rows, [1, 2, 3, 4], rng=random.Random(4))
    value, assignment = spn.max_product()
    true_max = max(spn.probability(a)
                   for a in iter_assignments([1, 2, 3, 4]))
    assert value <= true_max + 1e-12
    # the decoded assignment's actual probability is at least the bound
    assert spn.probability(assignment) >= value - 1e-12


def test_learn_spn_needs_data():
    with pytest.raises(ValueError):
        learn_spn([], [1])


def test_learn_spn_single_variable():
    rows = [{1: True}] * 7 + [{1: False}] * 3
    spn = learn_spn(rows, [1], alpha=0.0)
    assert spn.probability({1: True}) == pytest.approx(0.7)
