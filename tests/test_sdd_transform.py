"""Tests for SDD transformations and vtree search."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Cnf, iter_assignments
from repro.sdd import (SddManager, compile_cnf_sdd, condition, exists,
                       forall, rename_literals)
from repro.vtree import (balanced_vtree, minimize_vtree,
                         right_linear_vtree, sdd_size_for_vtree)


def cnfs(max_var=4, max_clauses=6):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


@settings(max_examples=60, deadline=None)
@given(cnfs(), st.integers(1, 4), st.booleans())
def test_condition_matches_semantics(cnf, var, value):
    root, manager = compile_cnf_sdd(cnf)
    conditioned = condition(root, {var: value})
    for a in iter_assignments([1, 2, 3, 4]):
        assert conditioned.evaluate(a) == \
            cnf.evaluate({**a, var: value})


@settings(max_examples=40, deadline=None)
@given(cnfs(), st.integers(1, 4))
def test_quantification_matches_semantics(cnf, var):
    root, manager = compile_cnf_sdd(cnf)
    ex = exists(root, [var])
    fa = forall(root, [var])
    for a in iter_assignments([1, 2, 3, 4]):
        high = cnf.evaluate({**a, var: True})
        low = cnf.evaluate({**a, var: False})
        assert ex.evaluate(a) == (high or low)
        assert fa.evaluate(a) == (high and low)


def test_quantification_shadowing_identity():
    # ∃v f ∧ ∀v f sandwich: ∀v f ⇒ f ⇒ ∃v f
    cnf = Cnf([(1, 2), (-1, 3)], num_vars=3)
    root, manager = compile_cnf_sdd(cnf)
    ex = exists(root, [2])
    fa = forall(root, [2])
    assert manager.conjoin(fa, root) is fa       # fa ⇒ f
    assert manager.disjoin(ex, root) is ex       # f ⇒ ex


def test_condition_removes_dependence():
    cnf = Cnf([(1, 2)], num_vars=2)
    root, manager = compile_cnf_sdd(cnf)
    conditioned = condition(root, {1: True})
    assert conditioned is manager.true
    conditioned = condition(root, {1: False})
    assert conditioned is manager.literal(2)


@settings(max_examples=40, deadline=None)
@given(cnfs())
def test_rename_into_other_vtree_preserves_function(cnf):
    root, _manager = compile_cnf_sdd(cnf)
    target = SddManager(right_linear_vtree([4, 3, 2, 1]))
    moved = rename_literals(root, target)
    for a in iter_assignments([1, 2, 3, 4]):
        assert moved.evaluate(a) == cnf.evaluate(a)


def test_rename_with_mapping():
    cnf = Cnf([(1, -2)], num_vars=2)
    root, _manager = compile_cnf_sdd(cnf)
    target = SddManager(balanced_vtree([5, 6]))
    moved = rename_literals(root, target, {1: 5, 2: 6})
    assert moved.evaluate({5: True, 6: True})
    assert not moved.evaluate({5: False, 6: True})


def test_minimize_vtree_beats_or_matches_standards():
    # the xy-pair formula: search should find a structure at least as
    # good as the naive balanced vtree over the identity order
    clauses = []
    for i in range(1, 4):
        x, y = 2 * i - 1, 2 * i
        clauses.extend([(-x, y), (x, -y)])
    cnf = Cnf(clauses, num_vars=6)
    vtree, size = minimize_vtree(cnf, iterations=25,
                                 rng=random.Random(3))
    naive = sdd_size_for_vtree(cnf, balanced_vtree(range(1, 7)))
    assert size <= naive
    # result is a genuine vtree over all the variables
    assert vtree.variables == frozenset(range(1, 7))
    # and the reported size is reproducible
    assert sdd_size_for_vtree(cnf, vtree) == size


def test_minimize_vtree_requires_variables():
    with pytest.raises(ValueError):
        minimize_vtree(Cnf([], num_vars=0))
