"""Tests for the resource-governance layer (:mod:`repro.limits`):
budgets, anytime bounds, the restart driver, fault injection, and the
crash-proof artifact cache."""

import glob
import random

import pytest

from repro.compile.dnnf_compiler import DnnfCompiler
from repro.limits import (Budget, BudgetExceeded,
                          FakeClock, SkewedClock, anytime_count,
                          anytime_wmc, compile_with_restarts,
                          corrupt_artifact, failing_budget,
                          resolve_budget)
from repro.limits.faults import CORRUPT_MODES
from repro.logic.cnf import Cnf
from repro.nnf import queries
from repro.sat.counter import ModelCounter


def random_3cnf(n, m, seed):
    rng = random.Random(seed)
    clauses = []
    for _ in range(m):
        vs = rng.sample(range(1, n + 1), 3)
        clauses.append(tuple(v * rng.choice([1, -1]) for v in vs))
    return Cnf(clauses, num_vars=n)


class SteppingClock:
    """A clock that advances a fixed step on every read."""

    def __init__(self, step):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


# -- Budget --------------------------------------------------------------------
class TestBudget:
    def test_caps_must_be_positive(self):
        for kwargs in ({"deadline_s": 0}, {"max_nodes": -1},
                       {"max_depth": 0}, {"max_cache_entries": 0},
                       {"alloc_fail_at": 0}):
            with pytest.raises(ValueError):
                Budget(**kwargs)

    def test_lazy_start(self):
        clock = FakeClock()
        budget = Budget(deadline_s=1.0, clock=clock)
        assert not budget.started
        clock.advance(100.0)  # time queued before the first charge
        assert budget.charge() is None  # arms here, not at __init__
        clock.advance(0.5)
        assert budget.charge() is None
        clock.advance(1.0)
        assert budget.charge() == "deadline"

    def test_node_budget_and_sticky_reason(self):
        budget = Budget(max_nodes=3)
        assert [budget.charge() for _ in range(3)] == [None] * 3
        assert budget.charge() == "nodes"
        # sticky: stays exhausted even without further overdraft
        assert budget.charge(0) == "nodes"
        assert budget.expired() == "nodes"

    def test_tick_raises_with_partial(self):
        budget = Budget(max_nodes=1)
        budget.tick()
        with pytest.raises(BudgetExceeded) as info:
            budget.tick(partial={"where": "here"})
        assert info.value.reason == "nodes"
        assert info.value.partial["where"] == "here"
        assert info.value.budget is budget
        assert "node budget 1" in str(info.value)

    def test_cache_cap(self):
        budget = Budget(max_cache_entries=2)
        budget.charge_cache()
        budget.charge_cache()
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_cache()
        assert info.value.reason == "cache"

    def test_depth_cap(self):
        budget = Budget(max_depth=2)
        budget.enter()
        budget.enter()
        with pytest.raises(BudgetExceeded) as info:
            budget.enter()
        assert info.value.reason == "recursion"
        budget.leave()
        assert budget.depth == 2

    def test_start_rearms(self):
        budget = Budget(max_nodes=1)
        budget.charge()
        assert budget.charge() == "nodes"
        budget.start()
        assert budget.charge() is None

    def test_remaining_and_elapsed(self):
        clock = FakeClock()
        budget = Budget(deadline_s=5.0, clock=clock)
        assert budget.elapsed() == 0.0
        budget.charge()
        clock.advance(2.0)
        assert budget.elapsed() == pytest.approx(2.0)
        assert budget.remaining() == pytest.approx(3.0)
        assert Budget(max_nodes=5).remaining() is None

    def test_as_dict_and_repr(self):
        budget = Budget(max_nodes=10)
        budget.charge(4)
        snapshot = budget.as_dict()
        assert snapshot["max_nodes"] == 10 and snapshot["nodes"] == 4
        assert snapshot["expired"] is None
        assert "max_nodes=10" in repr(budget)

    def test_ambient_scope_nesting(self):
        assert Budget.ambient() is None
        outer, inner = Budget(max_nodes=100), Budget(max_nodes=5)
        with outer.scope():
            assert Budget.ambient() is outer
            with inner.scope():
                assert Budget.ambient() is inner  # innermost wins
            assert Budget.ambient() is outer
        assert Budget.ambient() is None

    def test_resolve_budget_explicit_wins(self):
        ambient, explicit = Budget(), Budget()
        with ambient.scope():
            assert resolve_budget(None) is ambient
            assert resolve_budget(explicit) is explicit
        assert resolve_budget(None) is None


# -- budgets threaded through the engines --------------------------------------
class TestEngineBudgets:
    CNF = random_3cnf(20, 55, 7)

    def test_model_counter_node_budget(self):
        with pytest.raises(BudgetExceeded) as info:
            ModelCounter(budget=Budget(max_nodes=3)).count(self.CNF)
        assert info.value.reason == "nodes"
        assert info.value.partial["operation"] == "count"
        assert info.value.partial["decisions"] >= 0

    def test_model_counter_deadline_mid_count(self):
        budget = Budget(deadline_s=1.0, clock=SteppingClock(0.3))
        with pytest.raises(BudgetExceeded) as info:
            ModelCounter(budget=budget).count(self.CNF)
        assert info.value.reason == "deadline"

    def test_compiler_node_budget(self):
        with pytest.raises(BudgetExceeded) as info:
            DnnfCompiler(budget=Budget(max_nodes=3)).compile(self.CNF)
        assert info.value.reason == "nodes"
        assert info.value.partial["operation"] == "compile"

    def test_solver_budget(self):
        from repro.sat.dpll import solve
        with pytest.raises(BudgetExceeded) as info:
            solve(self.CNF, budget=Budget(max_nodes=1))
        assert info.value.partial["operation"] == "solve"

    def test_sdd_apply_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        from repro.sdd.compiler import compile_cnf_sdd
        with pytest.raises(BudgetExceeded) as info:
            compile_cnf_sdd(self.CNF, budget=Budget(max_nodes=5))
        assert info.value.partial["operation"] == "sdd-apply"

    def test_kernel_budget_via_ambient_scope(self):
        root = DnnfCompiler().compile(self.CNF)
        with pytest.raises(BudgetExceeded) as info:
            with Budget(max_nodes=1).scope():
                queries.model_count(root, range(1, 21))
        assert info.value.partial["operation"] == "kernel-pass"

    def test_ambient_scope_governs_compile(self):
        with pytest.raises(BudgetExceeded):
            with Budget(max_nodes=3).scope():
                DnnfCompiler().compile(self.CNF)
        # and the same compile succeeds outside the scope
        assert DnnfCompiler().compile(self.CNF) is not None

    def test_shared_budget_pools_across_engines(self):
        budget = Budget(max_nodes=10_000)
        ModelCounter(budget=budget).count(self.CNF)
        after_count = budget.nodes
        assert after_count > 0
        DnnfCompiler(budget=budget).compile(self.CNF)
        assert budget.nodes > after_count  # one shared pool


# -- anytime bounds ------------------------------------------------------------
class TestAnytime:
    def test_bounds_bracket_exact_on_many_cnfs(self):
        """The acceptance criterion: for ~100 random CNFs and every
        budget, lower <= exact <= upper; unbudgeted runs are exact."""
        counter = ModelCounter()
        for seed in range(100):
            cnf = random_3cnf(12, 30, seed)
            exact = counter.count(cnf)
            full = anytime_count(cnf)
            assert full.exact and full.lower == exact, seed
            assert full.reason is None
            for cap in (1, 5, 25):
                result = anytime_count(cnf, Budget(max_nodes=cap))
                assert result.lower <= exact <= result.upper, \
                    (seed, cap, result)

    def test_exhaustion_reports_reason(self):
        cnf = random_3cnf(20, 50, 3)
        result = anytime_count(cnf, Budget(max_nodes=2))
        assert result.reason == "nodes"
        assert not result.exact
        assert result.width > 0

    def test_unsat_is_exact_zero(self):
        cnf = Cnf([(1,), (-1,)], num_vars=1)
        result = anytime_count(cnf, Budget(max_nodes=1))
        assert (result.lower, result.upper) == (0, 0)

    def test_weighted_bounds_bracket_exact(self):
        from repro.nnf.queries import weighted_model_count
        rng = random.Random(5)
        for seed in range(10):
            cnf = random_3cnf(10, 24, seed)
            weights = {}
            for v in range(1, 11):
                p = rng.random()
                weights[v], weights[-v] = p, 1.0 - p
            root = DnnfCompiler().compile(cnf)
            exact = weighted_model_count(root, weights, range(1, 11))
            full = anytime_wmc(cnf, weights)
            assert full.lower == pytest.approx(exact)
            bounded = anytime_wmc(cnf, weights, Budget(max_nodes=3))
            assert bounded.lower <= exact + 1e-9
            assert exact <= bounded.upper + 1e-9

    def test_negative_weights_rejected(self):
        cnf = Cnf([(1, 2)], num_vars=2)
        weights = {1: 0.5, -1: -0.5, 2: 1.0, -2: 1.0}
        with pytest.raises(ValueError, match="non-negative"):
            anytime_wmc(cnf, weights)

    def test_result_as_dict(self):
        result = anytime_count(Cnf([(1,)], num_vars=1))
        snapshot = result.as_dict()
        assert snapshot["exact"] is True
        assert snapshot["lower"] == snapshot["upper"] == "1"

    def test_ambient_budget_governs_anytime(self):
        cnf = random_3cnf(20, 50, 3)
        with Budget(max_nodes=2).scope():
            result = anytime_count(cnf)
        assert result.reason == "nodes"


# -- fault injection -----------------------------------------------------------
class TestFaults:
    def test_fake_clock_rejects_rewind(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_skewed_clock_rate_validation(self):
        with pytest.raises(ValueError):
            SkewedClock(rate=0)

    def test_skewed_clock_jump_trips_deadline(self):
        clock = SkewedClock(base=FakeClock())
        budget = Budget(deadline_s=10.0, clock=clock)
        assert budget.charge() is None
        clock.jump(20.0)  # NTP-style correction mid-operation
        assert budget.charge() == "deadline"

    def test_skewed_rate_makes_deadlines_early(self):
        base = FakeClock()
        budget = Budget(deadline_s=10.0,
                        clock=SkewedClock(rate=3.0, base=base))
        budget.charge()
        base.advance(4.0)  # only 4 real seconds, 12 skewed ones
        assert budget.charge() == "deadline"

    def test_allocation_failure_raises_in_exact_engine(self):
        cnf = random_3cnf(20, 50, 3)
        with pytest.raises(BudgetExceeded) as info:
            ModelCounter(budget=failing_budget(3)).count(cnf)
        assert info.value.reason == "allocation"

    def test_allocation_failure_degrades_anytime(self):
        """An injected fault must never crash a query: the anytime
        path turns it into sound bounds."""
        cnf = random_3cnf(12, 30, 3)
        exact = ModelCounter().count(cnf)
        result = anytime_count(cnf, failing_budget(2))
        assert result.reason == "allocation"
        assert result.lower <= exact <= result.upper

    def test_clock_skew_degrades_anytime(self):
        cnf = random_3cnf(12, 30, 4)
        exact = ModelCounter().count(cnf)
        clock = SkewedClock(base=FakeClock())
        budget = Budget(deadline_s=5.0, clock=clock)
        budget.charge()  # arm, then the clock jumps past the deadline
        clock.jump(100.0)
        result = anytime_count(cnf, budget)
        assert result.reason == "deadline"
        assert result.lower <= exact <= result.upper

    def test_unknown_corruption_mode(self, tmp_path):
        from repro.ir.store import ArtifactStore
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_artifact(store, "00" * 32, "nnf", mode="nonsense")

    def test_corrupting_missing_artifact(self, tmp_path):
        from repro.ir.store import ArtifactStore
        store = ArtifactStore(tmp_path)
        with pytest.raises(FileNotFoundError):
            corrupt_artifact(store, "00" * 32, "nnf")


# -- the crash-proof cache -----------------------------------------------------
def _stored_keys(root, ext):
    return [path.rsplit("/", 1)[-1][:-len(ext) - 1]
            for path in glob.glob(f"{root}/*/*.{ext}")]


class TestCacheRobustness:
    CNF = random_3cnf(15, 35, 2)

    @pytest.mark.parametrize("mode", CORRUPT_MODES)
    def test_corrupted_nnf_recompiles(self, tmp_path, mode):
        """Every corruption mode on the .nnf load path: quarantined,
        counted, recompiled — never an exception to the caller."""
        from repro.ir.store import ArtifactStore
        store = ArtifactStore(tmp_path)
        baseline = queries.model_count(
            DnnfCompiler(store=None).compile(self.CNF), range(1, 16))
        DnnfCompiler(store=store).compile(self.CNF)
        (key,) = _stored_keys(tmp_path, "nnf")
        corrupted = corrupt_artifact(store, key, "nnf", mode=mode)
        root = DnnfCompiler(store=store).compile(self.CNF)
        assert queries.model_count(root, range(1, 16)) == baseline
        assert store.stats["artifact_corrupt"] == 1
        assert corrupted.with_suffix(".nnf.corrupt").exists()
        # the recompile rewrote a clean artifact: next load is a hit
        assert store.load_nnf(key) is not None

    @pytest.mark.parametrize("ext", ["sdd", "vtree"])
    def test_corrupted_sdd_pair_recompiles(self, tmp_path, ext):
        """Corrupting either half of the .sdd/.vtree pair quarantines
        both and recompiles."""
        from repro.ir.store import ArtifactStore
        from repro.sdd.compiler import compile_cnf_sdd
        from repro.sdd.queries import model_count as sdd_count
        store = ArtifactStore(tmp_path)
        root, _ = compile_cnf_sdd(self.CNF, store=store)
        baseline = sdd_count(root)
        (key,) = _stored_keys(tmp_path, "sdd")
        corrupt_artifact(store, key, ext, mode="garbage")
        again, _ = compile_cnf_sdd(self.CNF, store=store)
        assert sdd_count(again) == baseline
        assert store.stats["artifact_corrupt"] == 1
        assert store.load_sdd(key) is not None

    def test_load_nnf_direct_quarantine(self, tmp_path):
        from repro.ir.store import ArtifactStore
        store = ArtifactStore(tmp_path)
        path = store.path_for("ab" * 32, "nnf")
        path.parent.mkdir(parents=True)
        path.write_text("nnf not really\n")
        assert store.load_nnf("ab" * 32) is None
        assert not path.exists()  # moved aside, not deleted
        assert path.with_suffix(".nnf.corrupt").exists()
        assert store.stats["artifact_corrupt"] == 1
        assert store.stats["artifact_misses"] == 1

    def test_kill_then_rerun_warm_cache_equality(self, tmp_path):
        """A compile killed mid-run (budget as the kill signal) leaves
        no partial artifact; the rerun compiles clean, and a third run
        is served warm with the same circuit."""
        from repro.ir.store import ArtifactStore
        store = ArtifactStore(tmp_path)
        cnf = random_3cnf(20, 50, 9)
        baseline = queries.model_count(
            DnnfCompiler(store=None).compile(cnf), range(1, 21))
        with pytest.raises(BudgetExceeded):
            DnnfCompiler(store=store,
                         budget=Budget(max_nodes=5)).compile(cnf)
        assert _stored_keys(tmp_path, "nnf") == []  # nothing partial
        rerun = DnnfCompiler(store=store)
        assert queries.model_count(rerun.compile(cnf),
                                   range(1, 21)) == baseline
        warm = DnnfCompiler(store=store)
        assert queries.model_count(warm.compile(cnf),
                                   range(1, 21)) == baseline
        assert warm.stats["artifact_cache_hits"] == 1


# -- the restart driver --------------------------------------------------------
class TestRestarts:
    CNF = random_3cnf(20, 50, 3)

    def test_recovers_after_failed_attempts(self):
        single = DnnfCompiler(store=None)
        root = single.compile(self.CNF)
        exact = queries.model_count(root, range(1, 21))
        cap = max(2, single.decisions // 2)
        result = compile_with_restarts(self.CNF, max_nodes=cap,
                                       attempts=10, seed=1)
        assert result.winner > 0
        assert result.attempts[0]["outcome"].startswith("budget:")
        assert result.attempts[0]["strategy"] == "default-heuristic"
        assert result.attempts[-1]["outcome"] == "ok"
        assert queries.model_count(result.root, range(1, 21)) == exact

    def test_first_success_wins_by_default(self):
        result = compile_with_restarts(self.CNF, attempts=4)
        assert result.winner == 0
        assert len(result.attempts) == 1  # unbudgeted attempt 0 wins

    def test_keep_smallest_runs_every_attempt(self):
        result = compile_with_restarts(self.CNF, attempts=3,
                                       keep_smallest=True)
        assert len(result.attempts) == 3
        sizes = [r["size"] for r in result.attempts]
        assert result.size == min(sizes)
        assert result.attempts[result.winner]["size"] == result.size

    def test_total_failure_reraises_with_attempts(self):
        with pytest.raises(BudgetExceeded) as info:
            compile_with_restarts(self.CNF, max_nodes=1, attempts=3,
                                  backoff=1.0)
        assert len(info.value.partial["attempts"]) == 3
        assert all(r["outcome"].startswith("budget:")
                   for r in info.value.partial["attempts"])

    def test_sdd_format(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        from repro.sdd.queries import model_count as sdd_count
        cnf = random_3cnf(10, 24, 6)
        exact = ModelCounter().count(cnf)
        result = compile_with_restarts(cnf, format="sdd", attempts=10,
                                       max_nodes=20, seed=2)
        assert result.format == "sdd"
        assert result.manager is not None
        assert sdd_count(result.root) == exact

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            compile_with_restarts(self.CNF, format="zdd")
        with pytest.raises(ValueError):
            compile_with_restarts(self.CNF, attempts=0)


# -- CLI -----------------------------------------------------------------------
class TestCli:
    @pytest.fixture
    def cnf_file(self, tmp_path):
        cnf = random_3cnf(20, 50, 3)
        lines = [f"p cnf {cnf.num_vars} {len(cnf.clauses)}"]
        lines += [" ".join(map(str, clause)) + " 0"
                  for clause in cnf.clauses]
        path = tmp_path / "instance.cnf"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def _run(self, argv, capsys):
        from repro.cli import main
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_budget_exceeded_exit_code(self, cnf_file, capsys):
        from repro.cli import EXIT_BUDGET
        code, _out, err = self._run(
            ["compile", cnf_file, "--max-nodes", "3"], capsys)
        assert code == EXIT_BUDGET == 3
        assert "budget exceeded" in err
        assert "c partial operation compile" in err

    def test_query_deadline_exit_code(self, cnf_file, capsys):
        code, _out, err = self._run(
            ["query", cnf_file, "--timeout", "1e-9"], capsys)
        assert code == 3
        assert "c partial operation" in err

    def test_anytime_degrades_to_bounds(self, cnf_file, capsys):
        code, out, _err = self._run(
            ["query", cnf_file, "--anytime", "--max-nodes", "2"],
            capsys)
        assert code == 0
        assert "c anytime reason nodes" in out
        assert "s bounds " in out

    def test_anytime_exact_matches_normal_path(self, cnf_file, capsys):
        code, normal, _ = self._run(["query", cnf_file], capsys)
        assert code == 0
        code, anytime, _ = self._run(
            ["query", cnf_file, "--anytime"], capsys)
        assert code == 0
        assert "c anytime reason complete" in anytime
        mc = [l for l in normal.splitlines() if l.startswith("s mc ")]
        assert mc and mc[0] in anytime

    def test_anytime_rejects_mpe(self, cnf_file, capsys):
        code, _out, err = self._run(
            ["query", cnf_file, "--query", "mpe", "--anytime"], capsys)
        assert code == 2
        assert "--anytime supports count and wmc" in err

    def test_malformed_weight_spec(self, cnf_file, capsys):
        code, _out, err = self._run(
            ["query", cnf_file, "--query", "wmc", "--weight", "abc"],
            capsys)
        assert code == 2
        assert "bad weight spec 'abc'" in err

    def test_out_of_range_weight_literal(self, cnf_file, capsys):
        code, _out, err = self._run(
            ["query", cnf_file, "--query", "wmc", "--weight", "99=0.5"],
            capsys)
        assert code == 2
        assert "literal 99 outside 1..20" in err

    def test_restart_driver_recovers(self, cnf_file, tmp_path, capsys):
        out_path = str(tmp_path / "out.nnf")
        code, out, _err = self._run(
            ["compile", cnf_file, "--restarts", "8",
             "--max-nodes", "20", "-o", out_path], capsys)
        assert code == 0
        assert "c attempt 0 default-heuristic budget:nodes" in out
        assert "c winner attempt" in out


# -- multi-process store races -------------------------------------------------
def _race_compile_worker(cache_root, dimacs, barrier, results):
    """One racing writer: cold-compile the shared CNF into the shared
    store directory, then report (model count, store counters)."""
    from repro.compile.dnnf_compiler import DnnfCompiler
    from repro.ir.store import ArtifactStore
    from repro.logic.cnf import Cnf
    cnf = Cnf.from_dimacs(dimacs)
    store = ArtifactStore(cache_root)
    barrier.wait(timeout=60)  # maximize write overlap
    root = DnnfCompiler(store=store).compile(cnf)
    results.put((queries.model_count(root, range(1, cnf.num_vars + 1)),
                 store.stats.as_dict()))


def _race_killed_worker(cache_root, dimacs, barrier, results):
    """A racing writer whose budget kills it mid-compile."""
    from repro.compile.dnnf_compiler import DnnfCompiler
    from repro.ir.store import ArtifactStore
    from repro.logic.cnf import Cnf
    cnf = Cnf.from_dimacs(dimacs)
    store = ArtifactStore(cache_root)
    barrier.wait(timeout=60)
    try:
        DnnfCompiler(store=store, budget=Budget(max_nodes=4)).compile(cnf)
        results.put(("completed", store.stats.as_dict()))
    except BudgetExceeded:
        results.put(("killed", store.stats.as_dict()))


class TestMultiProcessStoreRaces:
    """N processes cold-compiling the same content key concurrently:
    one artifact, identical bytes, no quarantines — the extension of
    the kill-then-rerun pattern to parallel writers."""

    N_PROCS = 4

    @staticmethod
    def _spawn(target, cache_root, dimacs, count):
        import multiprocessing
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(count)
        results = context.Queue()
        procs = [context.Process(target=target,
                                 args=(cache_root, dimacs, barrier,
                                       results))
                 for _ in range(count)]
        for proc in procs:
            proc.start()
        collected = [results.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        return collected

    def test_parallel_cold_compiles_one_artifact(self, tmp_path):
        cnf = random_3cnf(20, 50, 21)
        dimacs = cnf.to_dimacs()
        exact = queries.model_count(
            DnnfCompiler(store=None).compile(cnf), range(1, 21))
        collected = self._spawn(_race_compile_worker, str(tmp_path),
                                dimacs, self.N_PROCS)
        # every racer computed the same count
        assert [c for c, _ in collected] == [exact] * self.N_PROCS
        # one artifact file per extension, no quarantines, no temp
        # droppings — atomic os.replace publication
        assert len(_stored_keys(tmp_path, "nnf")) == 1
        assert len(_stored_keys(tmp_path, "csr")) == 1
        assert glob.glob(f"{tmp_path}/*/*.corrupt") == []
        assert glob.glob(f"{tmp_path}/*/*.tmp") == []
        for _, stats in collected:
            assert stats.get("artifact_corrupt", 0) == 0

    def test_racing_writers_store_identical_bytes(self, tmp_path):
        """The surviving artifact is byte-identical to a solo compile
        of the same key (content addressing makes every racer's write
        interchangeable)."""
        from repro.ir.store import ArtifactStore
        cnf = random_3cnf(18, 42, 5)
        dimacs = cnf.to_dimacs()
        self._spawn(_race_compile_worker, str(tmp_path), dimacs, 3)
        (raced_path,) = glob.glob(f"{tmp_path}/*/*.nnf")
        solo_dir = tmp_path / "solo"
        DnnfCompiler(store=ArtifactStore(solo_dir)).compile(cnf)
        (solo_path,) = glob.glob(f"{solo_dir}/*/*.nnf")
        with open(raced_path, "rb") as raced, \
                open(solo_path, "rb") as solo:
            assert raced.read() == solo.read()

    def test_warm_load_after_race_counts_hits(self, tmp_path):
        """A fresh process after the race gets the full warm path:
        cache hit, certificate hit, and the mmap'd CSR sidecar."""
        from repro.ir.store import ArtifactStore
        cnf = random_3cnf(20, 50, 22)
        exact = queries.model_count(
            DnnfCompiler(store=None).compile(cnf), range(1, 21))
        self._spawn(_race_compile_worker, str(tmp_path),
                    cnf.to_dimacs(), self.N_PROCS)
        warm = DnnfCompiler(store=ArtifactStore(tmp_path))
        assert queries.model_count(warm.compile(cnf),
                                   range(1, 21)) == exact
        assert warm.stats["artifact_cache_hits"] == 1
        assert warm.store.stats["artifact_hits"] == 1
        assert warm.store.stats["artifact_mmap_hits"] == 1
        assert warm.store.stats["artifact_corrupt"] == 0

    def test_killed_writer_among_racers(self, tmp_path):
        """Racers mixed with a budget-killed writer: the killed one
        publishes nothing (atomicity) and the survivors' artifact
        still loads clean."""
        import multiprocessing
        from repro.ir.store import ArtifactStore
        cnf = random_3cnf(20, 50, 23)
        dimacs = cnf.to_dimacs()
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(3)
        results = context.Queue()
        procs = [
            context.Process(target=_race_compile_worker,
                            args=(str(tmp_path), dimacs, barrier,
                                  results)),
            context.Process(target=_race_compile_worker,
                            args=(str(tmp_path), dimacs, barrier,
                                  results)),
            context.Process(target=_race_killed_worker,
                            args=(str(tmp_path), dimacs, barrier,
                                  results)),
        ]
        for proc in procs:
            proc.start()
        collected = [results.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        outcomes = [c for c, _ in collected]
        assert "killed" in outcomes
        assert len(_stored_keys(tmp_path, "nnf")) == 1
        assert glob.glob(f"{tmp_path}/*/*.corrupt") == []
        store = ArtifactStore(tmp_path)
        (key,) = _stored_keys(tmp_path, "nnf")
        assert store.load_nnf(key) is not None
        assert store.stats["artifact_corrupt"] == 0

    def test_reader_racing_writer_never_quarantines(self, tmp_path):
        """A loop of readers concurrent with repeated re-publications
        of the same artifact never sees a torn file (the satellite's
        original failure mode: a reader racing a writer landed a good
        artifact in quarantine)."""
        import threading
        from repro.ir import nnf_to_ir
        from repro.ir.store import ArtifactStore
        cnf = random_3cnf(16, 36, 8)
        root = DnnfCompiler(store=None).compile(cnf)
        ir = nnf_to_ir(root)
        writer_store = ArtifactStore(tmp_path)
        key = "racing-key"
        writer_store.save_nnf(key, ir)
        stop = threading.Event()

        def rewrite():
            while not stop.is_set():
                writer_store.save_nnf(key, ir)

        writer = threading.Thread(target=rewrite, daemon=True)
        writer.start()
        try:
            reader_store = ArtifactStore(tmp_path)
            for _ in range(50):
                assert reader_store.load_nnf(key) is not None
        finally:
            stop.set()
            writer.join(timeout=30)
        assert reader_store.stats["artifact_corrupt"] == 0
        assert glob.glob(f"{tmp_path}/*/*.corrupt") == []
