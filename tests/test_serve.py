"""Tests for the compilation service: the serve package, the IR
facade it sits on, in-flight dedup, admission control, and the
serve-isolation lint rule."""

import importlib.util
import json
import os
import random
import threading

import pytest

from repro.ir.facade import (BoundsOutcome, CompileOutcome,
                             compile_or_bounds, compile_ticket,
                             compile_to_store, query_artifact)
from repro.ir.store import ArtifactStore
from repro.limits import Budget
from repro.logic.cnf import Cnf
from repro.sat.counter import ModelCounter
from repro.serve.app import Server, ServerConfig
from repro.serve.client import ServeClient
from repro.serve.loadgen import percentile, random_3cnf_text, run_load
from repro.serve.protocol import (ProtocolError, parse_compile_request,
                                  parse_query_request)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SMALL = "p cnf 4 3\n1 2 0\n-1 3 0\n2 -3 4 0\n"
SMALL_COUNT = 7  # by brute force


def hard_cnf(seed=3, n=120, m=510):
    """A 3-CNF big enough that tiny budgets expire mid-compile."""
    return random_3cnf_text(n, m, seed)


# -- the facade ----------------------------------------------------------------
class TestFacade:
    def test_ticket_canonicalises_formatting(self):
        messy = "c a comment\np cnf 4 3\n 1  2 0\n-1 3 0\n2 -3 4 0\n"
        assert compile_ticket(messy).key == compile_ticket(SMALL).key

    def test_ticket_rejects_bad_input(self):
        with pytest.raises(ValueError):
            compile_ticket("not dimacs at all")
        with pytest.raises(ValueError):
            compile_ticket(SMALL, {"no_such_knob": 1})
        with pytest.raises(ValueError):
            compile_ticket(SMALL, {"cache_mode": "wrong"})

    def test_config_forks_the_key(self):
        assert compile_ticket(SMALL).key != \
            compile_ticket(SMALL, {"use_components": False}).key

    def test_compile_and_query_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ticket = compile_ticket(SMALL)
        outcome = compile_to_store(ticket, store)
        assert isinstance(outcome, CompileOutcome)
        assert not outcome.cached
        assert compile_to_store(ticket, store).cached  # warm
        reply = query_artifact(store, ticket.key, "count", num_vars=4)
        assert reply["result"] == SMALL_COUNT
        assert query_artifact(store, "0" * 64, "count") is None

    def test_query_widens_free_variables(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ticket = compile_ticket(SMALL)
        compile_to_store(ticket, store)
        wide = query_artifact(store, ticket.key, "count", num_vars=6)
        assert wide["result"] == SMALL_COUNT * 4
        wmc = query_artifact(store, ticket.key, "wmc", num_vars=5,
                             weights={5: 0.25, -5: 0.25})
        plain = query_artifact(store, ticket.key, "wmc", num_vars=4)
        assert wmc["result"] == pytest.approx(plain["result"] * 0.5)

    def test_batched_wmc_matches_scalar(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ticket = compile_ticket(SMALL)
        compile_to_store(ticket, store)
        rows = [{1: 0.3, -1: 0.7}, {2: 0.9, -2: 0.1}, {}]
        batch = query_artifact(store, ticket.key, "wmc", num_vars=4,
                               weight_batch=rows)
        assert batch["batch"] == 3
        for row, value in zip(rows, batch["result"]):
            scalar = query_artifact(store, ticket.key, "wmc",
                                    num_vars=4, weights=row)
            assert value == pytest.approx(scalar["result"])

    def test_compile_or_bounds_brackets_exact(self, tmp_path):
        """An expiring budget degrades to a certified interval that
        brackets the exact count (the acceptance-criteria check)."""
        dimacs = random_3cnf_text(24, 55, seed=13)
        exact = ModelCounter().count(Cnf.from_dimacs(dimacs))
        ticket = compile_ticket(dimacs)
        outcome = compile_or_bounds(ticket, ArtifactStore(tmp_path),
                                    max_nodes=6)
        assert isinstance(outcome, BoundsOutcome)
        assert outcome.lower <= exact <= outcome.upper
        assert outcome.reason == "nodes"

    def test_compile_or_bounds_completes_in_budget(self, tmp_path):
        outcome = compile_or_bounds(compile_ticket(SMALL),
                                    ArtifactStore(tmp_path),
                                    deadline_s=60.0)
        assert isinstance(outcome, CompileOutcome)


class TestBudgetSlice:
    def test_scales_caps(self):
        sliced = Budget(deadline_s=10.0, max_nodes=100).slice(0.6)
        assert sliced.deadline_s == pytest.approx(6.0)
        assert sliced.max_nodes == 60

    def test_unlimited_stays_unlimited(self):
        sliced = Budget(deadline_s=None, max_nodes=None).slice(0.5)
        assert sliced.deadline_s is None and sliced.max_nodes is None

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Budget(deadline_s=1.0).slice(0.0)
        with pytest.raises(ValueError):
            Budget(deadline_s=1.0).slice(1.5)

    def test_shares_clock(self):
        ticks = iter([0.0, 0.0, 100.0])
        budget = Budget(deadline_s=50.0, clock=lambda: next(ticks))
        sliced = budget.slice(0.5)  # 25s on the fake clock
        assert sliced.charge() is None      # t=0
        assert sliced.charge() == "deadline"  # t=100 > 25


# -- the wire protocol ---------------------------------------------------------
class TestProtocol:
    def test_compile_request(self):
        request = parse_compile_request(json.dumps(
            {"dimacs": SMALL, "config": {"use_cache": False},
             "deadline_s": 2.5}).encode())
        assert request.dimacs == SMALL
        assert request.config == {"use_cache": False}
        assert request.deadline_s == 2.5

    def test_query_request_decodes_weights(self):
        request = parse_query_request(json.dumps(
            {"key": "k", "query": "wmc",
             "weights": {"1": 0.5, "-2": 0.25}}).encode())
        assert request.weights == {1: 0.5, -2: 0.25}

    @pytest.mark.parametrize("body", [
        b"not json", b"[1,2]", b"{}",
        json.dumps({"dimacs": ""}).encode(),
        json.dumps({"dimacs": "p cnf 1 0", "deadline_s": -1}).encode(),
        json.dumps({"dimacs": "p cnf 1 0", "config": []}).encode(),
    ])
    def test_bad_compile_bodies(self, body):
        with pytest.raises(ProtocolError):
            parse_compile_request(body)

    @pytest.mark.parametrize("body", [
        b"{}",
        json.dumps({"key": "k", "query": "nope"}).encode(),
        json.dumps({"key": "k", "weights": {"zero": 1}}).encode(),
        json.dumps({"key": "k", "weights": {"0": 1}}).encode(),
        json.dumps({"key": "k", "weights": {"1": 0.5},
                    "weight_batch": []}).encode(),
    ])
    def test_bad_query_bodies(self, body):
        with pytest.raises(ProtocolError):
            parse_query_request(body)


class TestPercentile:
    def test_basics(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        samples = [float(i) for i in range(1, 101)]
        random.Random(0).shuffle(samples)
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.99) == 99.0


# -- the live server -----------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    instance = Server(ServerConfig(port=0, workers=2, max_pending=64))
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture()
def client(server):
    handle = ServeClient(*server.address)
    yield handle
    handle.close()


class TestServer:
    def test_health_and_stats(self, client):
        assert client.health()
        stats = client.stats()
        assert stats["status"] == "ok"
        assert "dedup_hit_rate" in stats

    def test_compile_then_query(self, client):
        status, body = client.compile(SMALL)
        assert status == 200 and body["status"] == "ok"
        key = body["key"]
        status, body = client.query(key, "count", num_vars=4)
        assert status == 200
        assert int(body["result"]) == SMALL_COUNT

    def test_duplicate_compile_is_warm(self, client):
        client.compile(SMALL)
        status, body = client.compile(SMALL)
        assert status == 200
        assert body.get("cached") or body.get("deduplicated")

    def test_query_kinds_over_http(self, client):
        _, compiled = client.compile(SMALL)
        key = compiled["key"]
        _, sat = client.query(key, "sat")
        assert sat["result"] is True
        _, wmc = client.query(key, "wmc", num_vars=4,
                              weights={1: 0.5, -1: 0.5})
        assert wmc["result"] == pytest.approx(3.5)
        _, batch = client.query(key, "wmc", num_vars=4,
                                weight_batch=[{1: 0.5, -1: 0.5}, {}])
        assert batch["batch"] == 2
        assert batch["result"][0] == pytest.approx(3.5)
        _, mpe = client.query(key, "mpe", num_vars=4,
                              weights={1: 2.0})
        assert mpe["result"] == pytest.approx(2.0)
        _, marg = client.query(key, "marginals", num_vars=4)
        assert int(marg["count"]) == SMALL_COUNT
        negatives, positives = marg["result"]["1"]
        assert negatives + positives == SMALL_COUNT

    def test_unknown_key_is_404(self, client):
        status, body = client.query("f" * 64, "count")
        assert status == 404 and body["status"] == "not_found"

    def test_bad_requests_are_400(self, client):
        status, _ = client.compile("garbage")
        assert status == 400
        status, _ = client.request("POST", "/query", {"key": "k",
                                                      "query": "bad"})
        assert status == 400
        status, _ = client.request("POST", "/compile", None)
        assert status == 400

    def test_unknown_route_is_404(self, client):
        status, _ = client.request("GET", "/nope")
        assert status == 404

    def test_expiring_compile_returns_bounds(self, client):
        """The acceptance criterion: a deadline that expires mid-
        compile answers 200 with certified `s bounds L U` semantics
        (lower <= exact <= upper), never a 5xx."""
        dimacs = random_3cnf_text(26, 58, seed=29)
        exact = ModelCounter().count(Cnf.from_dimacs(dimacs))
        status, body = client.compile(dimacs, max_nodes=6)
        assert status == 200
        assert body["status"] == "bounds"
        assert body["lower"] <= exact <= body["upper"]

    def test_concurrent_duplicates_dedup_to_one_compile(self, server):
        """N concurrent requests for one fresh CNF: every reply
        carries the same key, and the workers ran one compilation."""
        dimacs = random_3cnf_text(22, 52, seed=97)
        replies = []

        def fire():
            handle = ServeClient(*server.address)
            try:
                replies.append(handle.compile(dimacs))
            finally:
                handle.close()

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(replies) == 8
        assert all(status == 200 for status, _ in replies)
        keys = {body["key"] for _, body in replies}
        assert len(keys) == 1
        shared = sum(1 for _, body in replies
                     if body.get("deduplicated") or body.get("cached"))
        assert shared >= 7  # one leader did the work


class TestAdmissionControl:
    def test_saturated_queue_answers_429(self):
        """With one worker and max_pending=1, concurrent distinct
        compiles overflow admission: 429 + Retry-After, no backlog."""
        instance = Server(ServerConfig(port=0, workers=1,
                                       max_pending=1))
        host, port = instance.start()
        try:
            outcomes = []

            def fire(seed):
                handle = ServeClient(host, port)
                try:
                    status, body = handle.compile(
                        random_3cnf_text(55, 230, seed=500 + seed),
                        deadline_s=5.0)
                    outcomes.append((status, body.get("status")))
                finally:
                    handle.close()

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            statuses = sorted(s for s, _ in outcomes)
            assert 429 in statuses
            assert all(s in (200, 429) for s in statuses)  # never 5xx
        finally:
            instance.stop()

    def test_retry_after_header(self):
        import http.client
        instance = Server(ServerConfig(port=0, workers=0,
                                       max_pending=1))
        host, port = instance.start()
        try:
            blocker = threading.Event()
            original = instance._admit
            instance._admit = lambda: False  # force saturation
            try:
                conn = http.client.HTTPConnection(host, port,
                                                  timeout=30)
                conn.request("POST", "/query", json.dumps(
                    {"key": "k", "query": "count"}).encode(),
                    {"Content-Type": "application/json"})
                response = conn.getresponse()
                assert response.status == 429
                assert response.getheader("Retry-After") is not None
                response.read()
                conn.close()
            finally:
                instance._admit = original
                blocker.set()
        finally:
            instance.stop()


class TestLoadGenerator:
    def test_duplicate_heavy_mix_dedups(self):
        instance = Server(ServerConfig(port=0, workers=2,
                                       max_pending=128))
        host, port = instance.start()
        try:
            report = run_load(host, port, distinct=2, duplicates=6,
                              queries=18, threads=4, num_vars=14,
                              num_clauses=32, seed=11)
        finally:
            instance.stop()
        assert report["server_5xx"] == 0
        assert report["dedup_hit_rate"] > 0.8
        assert report["compile_requests"] == 12
        assert report["query_requests"] == 18
        assert report["query_p99_ms"] >= report["query_p50_ms"] > 0
        assert report["rps"] > 0


# -- the serve-isolation lint rule ---------------------------------------------
class TestServeIsolationLint:
    @staticmethod
    def _lint():
        path = os.path.join(REPO_ROOT, "tools", "lint_invariants.py")
        spec = importlib.util.spec_from_file_location("lint_inv", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_repo_is_clean(self):
        lint = self._lint()
        violations = [v for v in lint.collect_violations(
            os.path.join(REPO_ROOT, "src", "repro"))
            if v[2] == "serve-isolation"]
        assert violations == []

    def test_engine_import_is_flagged(self, tmp_path):
        lint = self._lint()
        package = tmp_path / "serve"
        package.mkdir()
        (package / "bad.py").write_text(
            "from repro.compile.dnnf_compiler import DnnfCompiler\n")
        (package / "worse.py").write_text(
            "def f():\n    from repro.sat.dpll import is_satisfiable\n")
        (package / "fine.py").write_text(
            "from repro.ir.store import ArtifactStore\n"
            "from repro.limits.budget import Budget\n"
            "from .protocol import ProtocolError\n")
        violations = [v for v in lint.collect_violations(str(tmp_path))
                      if v[2] == "serve-isolation"]
        flagged_files = sorted({os.path.basename(v[0])
                                for v in violations})
        assert flagged_files == ["bad.py", "worse.py"]
