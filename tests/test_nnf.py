"""Tests for NNF circuits: nodes, properties, queries, transforms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Cnf, VarMap, iter_assignments, parse
from repro.compile import compile_cnf
from repro.nnf import (NnfManager, check_properties, classify,
                       condition, condition_evaluate, enumerate_models,
                       from_formula, is_decision_dnnf, is_decomposable,
                       is_deterministic, is_satisfiable_dnnf, is_smooth,
                       marginal_counts, model_count, mpe, negate_decision,
                       sat_model_dnnf, smooth, supported_queries,
                       to_formula, weighted_model_count)
from repro.vtree import balanced_vtree
from repro.nnf.properties import is_structured


@pytest.fixture
def manager():
    return NnfManager()


def decision_circuit(manager):
    """f = (x1 ∧ x2) ∨ (¬x1 ∧ x3): a small decision-DNNF."""
    return manager.disjoin(
        manager.conjoin(manager.literal(1), manager.literal(2)),
        manager.conjoin(manager.literal(-1), manager.literal(3)))


# -- node / manager -------------------------------------------------------------

def test_hash_consing(manager):
    a = manager.conjoin(manager.literal(1), manager.literal(2))
    b = manager.conjoin(manager.literal(1), manager.literal(2))
    assert a is b


def test_constant_simplification(manager):
    lit = manager.literal(1)
    assert manager.conjoin(lit, manager.true()) is lit
    assert manager.conjoin(lit, manager.false()).is_false
    assert manager.disjoin(lit, manager.false()) is lit
    assert manager.disjoin(lit, manager.true()).is_true
    assert manager.conjoin().is_true
    assert manager.disjoin().is_false


def test_literal_zero_rejected(manager):
    with pytest.raises(ValueError):
        manager.literal(0)


def test_variables_and_counts(manager):
    f = decision_circuit(manager)
    assert f.variables() == frozenset({1, 2, 3})
    assert f.node_count() == 7  # 4 literals + 2 ands + 1 or
    assert f.edge_count() == 6


def test_evaluate(manager):
    f = decision_circuit(manager)
    assert f.evaluate({1: True, 2: True, 3: False})
    assert f.evaluate({1: False, 2: False, 3: True})
    assert not f.evaluate({1: True, 2: False, 3: True})


def test_topological_children_first(manager):
    f = decision_circuit(manager)
    order = f.topological()
    position = {n.id: i for i, n in enumerate(order)}
    for node in order:
        for child in node.children:
            assert position[child.id] < position[node.id]


# -- properties -----------------------------------------------------------------

def test_decomposability(manager):
    good = decision_circuit(manager)
    assert is_decomposable(good)
    bad = manager.conjoin(manager.literal(1),
                          manager.disjoin(manager.literal(1),
                                          manager.literal(2)))
    assert not is_decomposable(bad)


def test_determinism(manager):
    det = decision_circuit(manager)
    assert is_deterministic(det)
    nondet = manager.disjoin(manager.literal(1), manager.literal(2))
    assert not is_deterministic(nondet)


def test_determinism_refuses_huge(manager):
    f = manager.disjoin(*(manager.literal(v) for v in range(1, 30)))
    with pytest.raises(ValueError):
        is_deterministic(f)


def test_smoothness(manager):
    f = decision_circuit(manager)
    assert not is_smooth(f)  # children mention {1,2} vs {1,3}
    sf = smooth(f)
    assert is_smooth(sf)
    # smoothing preserves the function
    for assignment in iter_assignments([1, 2, 3]):
        assert f.evaluate(assignment) == sf.evaluate(assignment)
    # and preserves decomposability/determinism
    assert is_decomposable(sf)
    assert is_deterministic(sf)


def test_structuredness(manager):
    vtree = balanced_vtree([1, 2])
    f = manager.disjoin(
        manager.conjoin(manager.literal(1), manager.literal(2)),
        manager.conjoin(manager.literal(-1), manager.literal(-2)))
    assert is_structured(f, vtree)
    g = manager.conjoin(manager.literal(1), manager.literal(2),
                        manager.literal(3))
    assert not is_structured(g, balanced_vtree([1, 2, 3]))


def test_decision_dnnf_detection(manager):
    assert is_decision_dnnf(decision_circuit(manager))
    nondecision = manager.disjoin(
        manager.conjoin(manager.literal(1), manager.literal(2)),
        manager.conjoin(manager.literal(3), manager.literal(4)))
    assert not is_decision_dnnf(nondecision)


def test_check_properties_bundle(manager):
    props = check_properties(decision_circuit(manager))
    assert props["decomposable"] and props["deterministic"]
    assert props["decision"]
    assert not props["smooth"]


# -- queries ---------------------------------------------------------------------

def test_sat_queries(manager):
    f = decision_circuit(manager)
    assert is_satisfiable_dnnf(f)
    model = sat_model_dnnf(f)
    assert f.evaluate({**{v: False for v in (1, 2, 3)}, **model})
    assert not is_satisfiable_dnnf(manager.false())
    assert sat_model_dnnf(manager.false()) is None


def test_model_count_gap_scaling(manager):
    f = decision_circuit(manager)
    # models over {1,2,3}: 1,2,* (2 models) + 0,*,3... -> (x1&x2): x3 free -> 2; (~x1&x3): x2 free -> 2
    assert model_count(f) == 4
    assert model_count(f, [1, 2, 3, 4]) == 8


def test_model_count_requires_cover(manager):
    f = decision_circuit(manager)
    with pytest.raises(ValueError):
        model_count(f, [1, 2])


def test_weighted_model_count(manager):
    f = decision_circuit(manager)
    weights = {1: 0.3, -1: 0.7, 2: 0.5, -2: 0.5, 3: 0.9, -3: 0.1}
    expected = 0.3 * 0.5 + 0.7 * 0.9  # P(x1,x2) + P(~x1,x3)
    assert weighted_model_count(f, weights) == pytest.approx(expected)


def test_wmc_on_unit_weights_equals_count(manager):
    f = decision_circuit(manager)
    weights = {l: 1.0 for v in (1, 2, 3) for l in (v, -v)}
    assert weighted_model_count(f, weights) == pytest.approx(
        model_count(f))


def test_enumerate_models(manager):
    f = decision_circuit(manager)
    models = list(enumerate_models(f))
    assert len(models) == 4
    for m in models:
        assert f.evaluate(m)


def test_mpe(manager):
    f = decision_circuit(manager)
    weights = {1: 0.3, -1: 0.7, 2: 0.5, -2: 0.5, 3: 0.9, -3: 0.1}
    value, assignment = mpe(f, weights)
    assert f.evaluate(assignment)
    # brute force check
    best = max(
        (weights[1 if a[1] else -1] * weights[2 if a[2] else -2]
         * weights[3 if a[3] else -3])
        for a in iter_assignments([1, 2, 3]) if f.evaluate(a))
    assert value == pytest.approx(best)


def test_marginal_counts(manager):
    f = smooth(decision_circuit(manager))
    counts = marginal_counts(f)
    # brute force marginals
    for lit, count in counts.items():
        brute = sum(1 for a in iter_assignments([1, 2, 3])
                    if f.evaluate(a) and a[abs(lit)] == (lit > 0))
        assert count == brute


def test_marginal_counts_requires_smooth(manager):
    with pytest.raises(ValueError):
        marginal_counts(decision_circuit(manager))


def test_condition_evaluate(manager):
    f = decision_circuit(manager)
    weights = {l: 1.0 for v in (1, 2, 3) for l in (v, -v)}
    # models with x1=True: (1,2,3),(1,2,~3) -> 2
    assert condition_evaluate(f, {1: True}, weights) == pytest.approx(2.0)


# -- transforms -------------------------------------------------------------------

def test_condition_transform(manager):
    f = decision_circuit(manager)
    g = condition(f, {1: True})
    for assignment in iter_assignments([1, 2, 3]):
        if assignment[1]:
            assert g.evaluate(assignment) == f.evaluate(assignment)
    assert 1 not in g.variables()


def test_formula_roundtrip(manager):
    vm = VarMap()
    formula = parse("(A | ~C) & (B | C) & (A | B)", vm)
    circuit = from_formula(formula, manager)
    for assignment in iter_assignments([1, 2, 3]):
        assert circuit.evaluate(assignment) == formula.evaluate(assignment)
    back = to_formula(circuit)
    assert back.equivalent(formula)


def test_negate_decision(manager):
    cnf = Cnf([(1, 2), (-1, 3), (2, -3)])
    root = compile_cnf(cnf, manager=manager)
    neg = negate_decision(root)
    assert is_decomposable(neg)
    assert is_deterministic(neg)
    for assignment in iter_assignments([1, 2, 3]):
        assert neg.evaluate(assignment) == (not root.evaluate(assignment))


# -- taxonomy ---------------------------------------------------------------------

def test_classify_decision_circuit(manager):
    cnf = Cnf([(1, 2), (-1, 3)])
    root = compile_cnf(cnf, manager=manager)
    languages = classify(root)
    assert "DNNF" in languages and "d-DNNF" in languages
    assert "Decision-DNNF" in languages


def test_classify_plain_nnf(manager):
    f = manager.disjoin(manager.literal(1), manager.literal(2))
    assert classify(f) == ["NNF", "DNNF"]


def test_supported_queries(manager):
    f = decision_circuit(manager)
    info = supported_queries(f)
    assert "#SAT" in info["queries"]
    # the tiny decision circuit is OBDD-shaped, the most specific language
    assert info["language"] == "OBDD"
    assert info["unlocks"] in ("PP", "NP^PP", "PP^PP")


# -- property-based: compiled circuits are correct --------------------------------

def cnfs(max_var=5, max_clauses=7):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


@settings(max_examples=80, deadline=None)
@given(cnfs())
def test_smoothing_preserves_counts(cnf):
    root = compile_cnf(cnf)
    smoothed = smooth(root)
    assert is_smooth(smoothed)
    full = range(1, cnf.num_vars + 1)
    assert model_count(root, full) == model_count(smoothed, full)


@settings(max_examples=80, deadline=None)
@given(cnfs())
def test_negation_complements_count(cnf):
    root = compile_cnf(cnf)
    mentioned = sorted(root.variables())
    if not mentioned:
        return
    neg = negate_decision(root)
    assert model_count(root, mentioned) + model_count(neg, mentioned) == \
        2 ** len(mentioned)
