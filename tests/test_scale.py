"""Moderate-scale stress tests: the engines on classic formula families
beyond toy size (still seconds, not minutes)."""

import math
import random


from repro.compile import DnnfCompiler
from repro.logic import (pair_biconditionals, parity_chain, pigeonhole,
                         random_kcnf)
from repro.nnf import is_satisfiable_dnnf, model_count
from repro.sat import count_models, is_satisfiable
from repro.sdd import compile_cnf_sdd, model_count as sdd_count
from repro.spaces import SubsetSpace
from repro.vtree import Vtree
from repro.classifiers import threshold_obdd
from repro.obdd import ObddManager, model_count as obdd_count


def test_big_parity_chain():
    cnf = parity_chain(40)  # 79 variables with the auxiliaries
    root = DnnfCompiler().compile(cnf)
    assert model_count(root, range(1, cnf.num_vars + 1)) == 2 ** 39


def test_pigeonhole_compiles_to_false():
    cnf = pigeonhole(5)  # 6 pigeons, 5 holes, 30 variables
    root = DnnfCompiler().compile(cnf)
    assert root.is_false
    assert not is_satisfiable(cnf)


def test_long_biconditional_chain_paired_vtree():
    n = 24
    cnf = pair_biconditionals(n)
    pairs = [Vtree.internal(Vtree.leaf(2 * i - 1), Vtree.leaf(2 * i))
             for i in range(1, n + 1)]

    def build(lo, hi):
        if hi - lo == 1:
            return pairs[lo]
        mid = (lo + hi + 1) // 2
        return Vtree.internal(build(lo, mid), build(mid, hi))

    root, _manager = compile_cnf_sdd(cnf, vtree=build(0, n))
    assert sdd_count(root) == 2 ** n
    assert root.size() <= 8 * n  # linear in n with the right structure


def test_random_3cnf_counting_20_vars():
    rng = random.Random(99)
    cnf = random_kcnf(20, 40, k=3, rng=rng)
    count = count_models(cnf)
    root = DnnfCompiler().compile(cnf)
    assert model_count(root, range(1, 21)) == count
    assert is_satisfiable_dnnf(root) == (count > 0)


def test_large_threshold_function():
    n = 40
    manager = ObddManager(range(1, n + 1))
    node = threshold_obdd(manager, range(1, n + 1), [1.0] * n, 20.0)
    expected = sum(math.comb(n, k) for k in range(20, n + 1))
    assert obdd_count(node) == expected
    # majority over n variables has a quadratic-size OBDD
    assert node.size() <= n * n


def test_large_subset_space():
    space = SubsetSpace(30, 4)
    assert sdd_count(space.sdd) == math.comb(30, 4)
    assert space.sdd.size() <= 12 * 30 * 5  # O(n·k)
