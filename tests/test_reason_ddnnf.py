"""Tests for the Decision-DNNF reason-circuit construction and the
NNF → OBDD bridge."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.compile import compile_cnf
from repro.explain import (all_sufficient_reasons, reason_circuit_ddnnf,
                           reason_prime_implicants)
from repro.logic import Cnf, iter_assignments
from repro.obdd import (ObddManager, compile_cnf_obdd, compile_nnf_obdd,
                        model_count)


def cnfs(max_var=5, max_clauses=7):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=1, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


@settings(max_examples=80, deadline=None)
@given(cnfs(), st.integers(0, 31))
def test_ddnnf_reasons_match_obdd_route(cnf, bits):
    instance = {v: bool((bits >> (v - 1)) & 1)
                for v in range(1, cnf.num_vars + 1)}
    if not cnf.evaluate(instance):
        return  # the ddnnf construction covers positive triggers
    obdd, _m = compile_cnf_obdd(cnf)
    if obdd.is_terminal:
        return
    ddnnf = compile_cnf(cnf)
    circuit = reason_circuit_ddnnf(ddnnf, instance)
    assert set(reason_prime_implicants(circuit)) == \
        set(all_sufficient_reasons(obdd, instance))


def test_ddnnf_reasons_reject_unsatisfied_instance():
    cnf = Cnf([(1,), (2,)], num_vars=2)
    ddnnf = compile_cnf(cnf)
    with pytest.raises(ValueError):
        reason_circuit_ddnnf(ddnnf, {1: False, 2: True})


def test_ddnnf_reason_on_multi_component_circuit():
    # two independent components force a real and-decomposition
    cnf = Cnf([(1, 2), (3, 4)], num_vars=4)
    ddnnf = compile_cnf(cnf)
    instance = {1: True, 2: False, 3: True, 4: True}
    circuit = reason_circuit_ddnnf(ddnnf, instance)
    reasons = set(reason_prime_implicants(circuit))
    # component reasons combine: {1} × {3}, {1} × {4}
    assert reasons == {frozenset({1, 3}), frozenset({1, 4})}


@settings(max_examples=60, deadline=None)
@given(cnfs())
def test_nnf_to_obdd_bridge(cnf):
    root = compile_cnf(cnf)
    manager = ObddManager(range(1, cnf.num_vars + 1))
    node = compile_nnf_obdd(root, manager)
    for a in iter_assignments(range(1, cnf.num_vars + 1)):
        assert node.evaluate(a) == cnf.evaluate(a)
    assert model_count(node) == cnf.model_count()


# -- regression: decision-gate guards in arbitrary conjunct positions ---------

def permuted_decision_gate():
    """(1 ∧ 3) ∨ (2 ∧ ¬3): the guard ±3 is the *second* conjunct of
    each branch — compilers and hand-built figures order freely."""
    from repro.nnf.node import NnfManager
    manager = NnfManager()
    first = manager.conjoin(manager.literal(1), manager.literal(3))
    second = manager.conjoin(manager.literal(2), manager.literal(-3))
    return manager, manager.disjoin(first, second)


def test_is_decision_node_guard_not_first():
    """is_decision_node used to require the guard literal in child
    position 0 (regression)."""
    from repro.nnf.properties import is_decision_dnnf, is_decision_node
    _manager, gate = permuted_decision_gate()
    assert [c.literal for c in gate.children[0].children] == [1, 3]
    assert is_decision_node(gate) == 3
    assert is_decision_dnnf(gate)


def test_reason_ddnnf_guard_not_first():
    """reason_circuit_ddnnf extracts guard/rest wherever the guard
    sits, matching the OBDD route (regression)."""
    _manager, gate = permuted_decision_gate()
    instance = {1: True, 2: True, 3: True}
    circuit = reason_circuit_ddnnf(gate, instance)
    manager = ObddManager([1, 2, 3])
    obdd = (manager.literal(1) & manager.literal(3)) | \
        (manager.literal(2) & manager.literal(-3))
    assert set(reason_prime_implicants(circuit)) == \
        set(all_sufficient_reasons(obdd, instance)) == \
        {frozenset({1, 2}), frozenset({1, 3})}
