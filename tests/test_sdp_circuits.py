"""Tests for same-decision probability via constrained circuits."""

import random

import pytest

from repro.bayesnet import medical_network, random_network, sdp
from repro.wmc import same_decision_probability


def test_matches_dedicated_on_medical():
    network = medical_network()
    for encoding in ("binary", "multistate"):
        got = same_decision_probability(network, "c", 1, 0.9,
                                        ["T1", "T2"], encoding=encoding)
        assert got == pytest.approx(sdp(network, "c", 1, 0.9,
                                        ["T1", "T2"]))


def test_matches_with_evidence():
    network = medical_network()
    got = same_decision_probability(network, "c", 1, 0.5, ["T2"],
                                    {"T1": 1})
    assert got == pytest.approx(sdp(network, "c", 1, 0.5, ["T2"],
                                    {"T1": 1}))


def test_matches_on_random_networks():
    rng = random.Random(21)
    checked = 0
    for trial in range(8):
        network = random_network(5, rng=rng,
                                 zero_fraction=0.3 if trial % 2 else 0.0)
        names = network.variables
        decision_var = names[-1]
        observables = rng.sample(names[:-1], 2)
        threshold = rng.uniform(0.2, 0.8)
        try:
            want = sdp(network, decision_var, 1, threshold, observables)
        except ZeroDivisionError:
            continue
        got = same_decision_probability(
            network, decision_var, 1, threshold, observables,
            exploit_determinism=bool(trial % 2))
        assert got == pytest.approx(want)
        checked += 1
    assert checked >= 4


def test_single_observable():
    network = medical_network()
    got = same_decision_probability(network, "c", 1, 0.9, ["T1"])
    assert got == pytest.approx(sdp(network, "c", 1, 0.9, ["T1"]))


def test_trivial_threshold_gives_sdp_one():
    network = medical_network()
    # threshold 0 makes the decision always positive: nothing can flip it
    got = same_decision_probability(network, "c", 1, 1e-12,
                                    ["T1", "T2"])
    assert got == pytest.approx(1.0)


def test_validation():
    network = medical_network()
    with pytest.raises(ValueError):
        same_decision_probability(network, "c", 1, 0.9, ["c", "T1"])
    with pytest.raises(ValueError):
        same_decision_probability(network, "c", 1, 0.9, ["T1"],
                                  {"T1": 1})
    with pytest.raises(ValueError):
        same_decision_probability(network, "c", 1, 0.9, ["T1"],
                                  encoding="weird")
