"""Property-based suite for the flattened IR core.

Three properties, each over hundreds of random circuits:

* **cross-check** — every family's IR-kernel query path agrees with
  the seed's per-family legacy walker (model count, WMC, MPE, batch
  WMC) — in total well over 500 random circuits;
* **round-trip** — the canonical serializations (c2d ``.nnf``, libsdd
  ``.sdd``/``.vtree``) are byte-stable under write∘read and preserve
  model counts;
* **freshness** — the content-addressed store returns results
  identical to a cold compile, and kernel memos never serve stale
  values (parameter updates, conditioning, explicit invalidation).
"""

import random

import pytest

from repro.compile.dnnf_compiler import DnnfCompiler
from repro.ir import (CircuitIR, ir_kernel, nnf_to_ir, psdd_to_ir,
                      sdd_to_ir)
from repro.ir.serialize import (ir_from_nnf_text, ir_to_nnf_text,
                                read_sdd_file, read_vtree_text,
                                write_sdd_file, write_vtree_text)
from repro.logic.cnf import Cnf
from repro.nnf import queries, queries_legacy
from repro.nnf.kernel import get_kernel


def random_cnf(rng, max_vars=7):
    n = rng.randint(3, max_vars)
    m = rng.randint(n, 3 * n)
    clauses = []
    for _ in range(m):
        width = rng.randint(1, 3)
        vs = rng.sample(range(1, n + 1), width)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in vs))
    return Cnf(clauses, num_vars=n)


def random_weights(rng, variables):
    weights = {}
    for v in variables:
        weights[v] = rng.uniform(0.1, 1.0)
        weights[-v] = rng.uniform(0.1, 1.0)
    return weights


# -- cross-checks: IR kernel vs the seed's legacy walkers --------------------

def test_nnf_kernel_matches_legacy_walkers():
    """200 random d-DNNFs: count, WMC, MPE and batch WMC through the
    IR kernel equal the seed's recursive walkers."""
    rng = random.Random(1405)
    for _ in range(200):
        cnf = random_cnf(rng)
        root = DnnfCompiler().compile(cnf)
        variables = range(1, cnf.num_vars + 1)
        weights = random_weights(rng, variables)

        assert queries.model_count(root, variables) == \
            queries_legacy.model_count(root, variables)
        assert queries.weighted_model_count(root, weights, variables) \
            == pytest.approx(queries_legacy.weighted_model_count(
                root, weights, variables))

        value, model = queries.mpe(root, weights, variables)
        legacy_value, _ = queries_legacy.mpe(root, weights, variables)
        assert value == pytest.approx(legacy_value)
        # the argmax may differ under ties, but its weight may not:
        # complete the traceback model greedily and re-score it
        if value != float("-inf"):
            full = dict(model)
            for var in variables:
                if var not in full:
                    full[var] = weights[var] >= weights[-var]
            assert _model_weight(full, weights) == pytest.approx(value)

        maps = [random_weights(rng, variables) for _ in range(3)]
        batch = queries.weighted_model_count_batch(root, maps, variables)
        for j, column in enumerate(maps):
            assert batch[j] == pytest.approx(
                queries_legacy.weighted_model_count(root, column,
                                                    variables))


def _model_weight(model, weights):
    value = 1.0
    for var, positive in model.items():
        value *= weights[var if positive else -var]
    return value


def test_obdd_kernel_matches_legacy_walkers():
    """100 random OBDDs: IR-backed count/WMC equal the seed passes."""
    from repro.obdd import ops
    rng = random.Random(2711)
    for _ in range(100):
        cnf = random_cnf(rng, max_vars=6)
        node, manager = ops.compile_cnf_obdd(cnf)
        variables = range(1, cnf.num_vars + 1)
        weights = random_weights(rng, variables)
        assert ops.model_count(node, variables) == \
            ops.model_count_legacy(node, variables)
        assert ops.weighted_model_count(node, weights, variables) == \
            pytest.approx(ops.weighted_model_count_legacy(
                node, weights, variables))


def test_sdd_kernel_matches_legacy_walkers():
    """100 random SDDs: IR-backed count/WMC equal the seed's
    plan-based passes."""
    from repro.sdd import queries as sdd_queries
    from repro.sdd.compiler import compile_cnf_sdd
    rng = random.Random(3307)
    for _ in range(100):
        cnf = random_cnf(rng, max_vars=6)
        root, manager = compile_cnf_sdd(cnf)
        weights = random_weights(rng, manager.vtree.variables)
        assert sdd_queries.model_count(root) == \
            sdd_queries.model_count_legacy(root)
        assert sdd_queries.weighted_model_count(root, weights) == \
            pytest.approx(sdd_queries.weighted_model_count_legacy(
                root, weights))


def test_psdd_kernel_matches_legacy_walker():
    """60 random PSDDs (random structure + random evidence): the
    parameterised IR path equals the seed's recursive marginal."""
    from repro.psdd import psdd_from_sdd
    from repro.psdd.queries import marginal, marginal_legacy
    from repro.sdd.compiler import compile_cnf_sdd
    rng = random.Random(4211)
    built = 0
    while built < 60:
        cnf = random_cnf(rng, max_vars=5)
        root, manager = compile_cnf_sdd(cnf)
        if root.is_false or root.is_true:
            continue
        psdd = psdd_from_sdd(root)
        built += 1
        variables = sorted(manager.vtree.variables)
        picked = rng.sample(variables, rng.randint(0, len(variables)))
        evidence = {v: rng.random() < 0.5 for v in picked}
        assert marginal(psdd, evidence) == \
            pytest.approx(marginal_legacy(psdd, evidence))


def test_ac_kernel_matches_evaluate():
    """40 random arithmetic circuits: the lowered IR's WMC equals the
    AC's own evaluator."""
    from repro.wmc.arithmetic_circuit import ArithmeticCircuit
    rng = random.Random(5903)
    for _ in range(40):
        cnf = random_cnf(rng, max_vars=6)
        root = DnnfCompiler().compile(cnf)
        variables = list(range(1, cnf.num_vars + 1))
        ac = ArithmeticCircuit(root, variables)
        weights = random_weights(rng, variables)
        ir = ac.to_ir()
        value = ir_kernel(ir).wmc(weights)
        for var in set(variables) - ir.variables():
            value *= weights[var] + weights[-var]
        assert value == pytest.approx(ac.evaluate(weights))


# -- to_ir() coverage: every family lowers ----------------------------------

def test_every_family_lowers_to_circuit_ir():
    from repro.obdd import ops as obdd_ops
    from repro.psdd import psdd_from_sdd
    from repro.sdd.compiler import compile_cnf_sdd
    from repro.wmc.arithmetic_circuit import ArithmeticCircuit
    cnf = Cnf([(1, 2), (-1, 3), (2, -3)], num_vars=3)

    nnf_root = DnnfCompiler().compile(cnf)
    assert isinstance(nnf_root.to_ir(), CircuitIR)

    obdd_root, _ = obdd_ops.compile_cnf_obdd(cnf)
    assert isinstance(obdd_root.to_ir(), CircuitIR)

    sdd_root, _ = compile_cnf_sdd(cnf)
    assert isinstance(sdd_root.to_ir(), CircuitIR)

    psdd = psdd_from_sdd(sdd_root)
    psdd_ir, params = psdd.to_ir()
    assert isinstance(psdd_ir, CircuitIR)
    assert params and all(isinstance(p, float) for p in params)

    ac = ArithmeticCircuit(nnf_root, [1, 2, 3])
    assert isinstance(ac.to_ir(), CircuitIR)

    # every lowering agrees on the model count (same formula)
    reference = queries.model_count(nnf_root, [1, 2, 3])
    for ir in (obdd_root.to_ir(), sdd_root.to_ir()):
        kernel = ir_kernel(ir)
        count = kernel.model_count() << (3 - len(ir.variables()))
        assert count == reference


# -- canonical serialization round-trips ------------------------------------

def test_nnf_text_roundtrip_byte_stable():
    """write∘read is the identity on .nnf texts, and counts survive."""
    rng = random.Random(6113)
    for _ in range(30):
        cnf = random_cnf(rng)
        root = DnnfCompiler().compile(cnf)
        ir = nnf_to_ir(root)
        text = ir_to_nnf_text(ir)
        parsed = ir_from_nnf_text(text)
        assert ir_to_nnf_text(parsed) == text
        assert ir_kernel(parsed).model_count() == \
            ir_kernel(ir).model_count()
        assert parsed.flags == ir.flags


def test_nnf_text_roundtrip_preserves_dead_nodes():
    """Files may contain unreferenced nodes (c2d emits them); the
    reader must keep them so the write-back is byte-identical."""
    text = "nnf 5 4 2\nL 1\nL -1\nL 2\nA 2 0 2\nA 2 1 2\n"
    parsed = ir_from_nnf_text(text)
    assert parsed.n == 5
    assert ir_to_nnf_text(parsed) == text
    assert ir_kernel(parsed).model_count() == 1


def test_nnf_text_rejects_malformed():
    for bad in ("", "nnf 1 0 0\n", "nnf 1 0 1\nX 1\n",
                "nnf 2 1 1\nL 1\nA 1 5\n",
                "nnf 2 0 1\nL 1\n"):
        with pytest.raises(ValueError):
            ir_from_nnf_text(bad)


def test_sdd_file_roundtrip_byte_stable():
    """write∘read is the identity on .sdd/.vtree texts, and counts
    survive the rebuild."""
    from repro.sdd import queries as sdd_queries
    from repro.sdd.compiler import compile_cnf_sdd
    rng = random.Random(7411)
    done = 0
    while done < 20:
        cnf = random_cnf(rng, max_vars=6)
        root, manager = compile_cnf_sdd(cnf)
        if root.is_false or root.is_true:
            continue
        done += 1
        sdd_text = write_sdd_file(root)
        vtree_text = write_vtree_text(manager.vtree)
        assert write_vtree_text(read_vtree_text(vtree_text)) == vtree_text
        reread, manager2 = read_sdd_file(sdd_text, vtree_text)
        assert write_sdd_file(reread) == sdd_text
        assert sdd_queries.model_count(reread) == \
            sdd_queries.model_count(root)


# -- the content-addressed store --------------------------------------------

def test_store_warm_equals_cold(tmp_path):
    from repro.ir.store import ArtifactStore
    rng = random.Random(8117)
    cnf = random_cnf(rng)
    variables = range(1, cnf.num_vars + 1)
    weights = random_weights(rng, variables)

    cold_root = DnnfCompiler(store=None).compile(cnf)
    store = ArtifactStore(tmp_path)
    miss_compiler = DnnfCompiler(store=store)
    miss_compiler.compile(cnf)
    assert store.stats["artifact_misses"] == 1
    assert store.stats["artifact_writes"] == 1

    hit_compiler = DnnfCompiler(store=store)
    warm_root = hit_compiler.compile(cnf)
    assert store.stats["artifact_hits"] == 1
    assert hit_compiler.stats["artifact_cache_hits"] == 1
    assert store.hit_rate() == pytest.approx(0.5)

    assert queries.model_count(warm_root, variables) == \
        queries.model_count(cold_root, variables)
    assert queries.weighted_model_count(warm_root, weights, variables) \
        == pytest.approx(queries.weighted_model_count(
            cold_root, weights, variables))


def test_store_key_separates_configs(tmp_path):
    from repro.ir.store import artifact_key
    dimacs = Cnf([(1, 2)], num_vars=2).to_dimacs()
    base = artifact_key(dimacs, "dnnf", {"propagator": "watched"})
    assert base == artifact_key(dimacs, "dnnf", {"propagator": "watched"})
    assert base != artifact_key(dimacs, "dnnf", {"propagator": "legacy"})
    assert base != artifact_key(dimacs, "sdd", {"propagator": "watched"})
    assert base != artifact_key(dimacs + "\nc x", "dnnf",
                                {"propagator": "watched"})


# -- kernel freshness (memo staleness regressions) ---------------------------

def test_conditioning_does_not_poison_memos():
    """The seed's walker cached per-(node, query) values that a
    conditioned query could leave stale; the kernel keeps weighted
    passes un-memoised, so an interleaved condition_evaluate must not
    change later counts."""
    cnf = Cnf([(1, 2, 3), (-1, 2), (-2, 3), (1, -3)], num_vars=3)
    root = DnnfCompiler().compile(cnf)
    variables = [1, 2, 3]
    weights = {v: 0.5 for v in variables}
    weights.update({-v: 0.5 for v in variables})
    before = queries.model_count(root, variables)
    queries.condition_evaluate(root, {1: True}, weights)
    queries.condition_evaluate(root, {1: False, 2: True}, weights)
    assert queries.model_count(root, variables) == before
    assert queries.weighted_model_count(root, weights, variables) == \
        pytest.approx(before * 0.5 ** 3)


def test_psdd_parameter_update_is_reflected():
    """θ updates mutate PSDD nodes in place; the structural IR is
    cached but parameters are re-read per query — learning must never
    serve stale marginals."""
    from repro.logic import VarMap, parse, to_cnf
    from repro.psdd import learn_parameters, psdd_from_sdd
    from repro.psdd.queries import marginal, marginal_legacy
    from repro.sdd.compiler import compile_cnf_sdd
    vm = VarMap()
    f = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    root, _ = compile_cnf_sdd(to_cnf(f))
    psdd = psdd_from_sdd(root)

    ir_before, params_before = psdd_to_ir(psdd)
    before = marginal(psdd, {1: True})

    data = [({1: True, 2: True, 3: True, 4: True}, 5),
            ({1: True, 2: False, 3: True, 4: False}, 3),
            ({1: False, 2: True, 3: False, 4: False}, 2)]
    learn_parameters(psdd, data)

    ir_after, params_after = psdd_to_ir(psdd)
    assert ir_after is ir_before  # structure cache survives updates
    assert params_after != params_before  # parameters do not
    after = marginal(psdd, {1: True})
    assert after != pytest.approx(before)
    assert after == pytest.approx(marginal_legacy(psdd, {1: True}))


def test_kernel_invalidate_drops_pure_memos():
    cnf = Cnf([(1, 2), (-1, 2, 3)], num_vars=3)
    root = DnnfCompiler().compile(cnf)
    kernel = get_kernel(root)
    count = kernel.model_count()
    assert kernel._model_count == count
    kernel.sat()
    kernel.invalidate()
    assert kernel._model_count is None
    assert kernel._sat is None
    assert kernel._derivatives is None
    assert kernel.model_count() == count


def test_interned_irs_share_kernels_and_memos():
    """Structurally identical circuits intern to one IR object, so the
    kernel (and its memoised count) is computed once."""
    cnf = Cnf([(1, 2), (-2, 3)], num_vars=3)
    ir_a = nnf_to_ir(DnnfCompiler().compile(cnf))
    ir_b = nnf_to_ir(DnnfCompiler().compile(cnf))
    assert ir_a is ir_b
    assert ir_kernel(ir_a) is ir_kernel(ir_b)
