"""Tests for CNF generators, subset spaces and PSDD EM."""

import math
import random

import pytest

from repro.logic import (iter_assignments, pair_biconditionals,
                         parity_chain, pigeonhole, random_kcnf)
from repro.psdd import (em_learn, incomplete_log_likelihood,
                        learn_parameters, log_likelihood, marginal,
                        psdd_from_sdd)
from repro.sat import count_models, is_satisfiable
from repro.sdd import compile_cnf_sdd, model_count
from repro.spaces import SubsetSpace, exactly_k_sdd
from repro.sdd import SddManager
from repro.vtree import balanced_vtree


# -- generators -------------------------------------------------------------------

def test_random_kcnf_shape():
    rng = random.Random(0)
    cnf = random_kcnf(10, 20, k=3, rng=rng)
    assert cnf.num_vars == 10
    assert len(cnf) == 20
    for clause in cnf:
        assert len(clause) == 3
        assert len({abs(l) for l in clause}) == 3
    with pytest.raises(ValueError):
        random_kcnf(2, 5, k=3)


def test_pigeonhole_unsat():
    for holes in (1, 2, 3):
        assert not is_satisfiable(pigeonhole(holes))
    with pytest.raises(ValueError):
        pigeonhole(0)


def test_parity_chain_counts():
    for n in (1, 2, 3, 5):
        cnf = parity_chain(n)
        # aux variables are determined, so the count is 2^(n-1)
        assert count_models(cnf) == 2 ** (n - 1)
        # and models restricted to x have odd parity
        for model in cnf.models():
            parity = sum(model[v] for v in range(1, n + 1)) % 2
            assert parity == 1


def test_pair_biconditionals_counts():
    for pairs in (1, 2, 4):
        cnf = pair_biconditionals(pairs)
        assert count_models(cnf) == 2 ** pairs


# -- subset spaces ------------------------------------------------------------------

def test_exactly_k_counts():
    manager = SddManager(balanced_vtree(range(1, 7)))
    for k in range(0, 7):
        node = exactly_k_sdd(manager, range(1, 7), k)
        assert model_count(node) == math.comb(6, k)
    with pytest.raises(ValueError):
        exactly_k_sdd(manager, range(1, 7), 9)


def test_exactly_k_sdd_size_is_linear():
    """The DP gives O(n·k) circuits on the right-linear vtree that
    matches its order — the [77] tractability claim."""
    from repro.vtree import right_linear_vtree
    sizes = []
    for n in (8, 12, 16):
        manager = SddManager(right_linear_vtree(range(1, n + 1)))
        node = exactly_k_sdd(manager, range(1, n + 1), 3)
        sizes.append(node.size())
    # arithmetic (linear) growth: equal increments for equal n steps
    assert sizes[1] - sizes[0] == sizes[2] - sizes[1]
    assert sizes[2] <= 8 * 16  # well within O(n·k)


def test_subset_space_roundtrip():
    space = SubsetSpace(6, 2)
    assignment = space.subset_assignment([2, 5])
    assert space.assignment_subset(assignment) == [2, 5]
    assert space.sdd.evaluate(assignment)
    with pytest.raises(ValueError):
        space.subset_assignment([1])
    with pytest.raises(ValueError):
        space.subset_assignment([1, 9])
    bad = {v: v <= 3 for v in space.variables()}  # 3 items, not 2
    assert not space.sdd.evaluate(bad)
    with pytest.raises(ValueError):
        space.assignment_subset(bad)


def test_subset_space_learning():
    space = SubsetSpace(5, 2)
    psdd = space.psdd()
    data = [(space.subset_assignment([1, 2]), 6),
            (space.subset_assignment([1, 3]), 3),
            (space.subset_assignment([4, 5]), 1)]
    learn_parameters(psdd, data)
    total = sum(psdd.probability(a)
                for a in iter_assignments(space.variables())
                if space.sdd.evaluate(a))
    assert total == pytest.approx(1.0)
    # item 1 appears in 9 of 10 observed subsets
    assert marginal(psdd, {1: True}) == pytest.approx(0.9)


# -- EM for incomplete data ------------------------------------------------------------

def _enrollment_psdd():
    from repro.logic import VarMap, parse, to_cnf
    vm = VarMap()
    f = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    root, _m = compile_cnf_sdd(to_cnf(f))
    return psdd_from_sdd(root)


def test_em_matches_closed_form_on_complete_data():
    data = [({1: True, 2: True, 3: True, 4: True}, 6),
            ({1: True, 2: True, 3: False, 4: False}, 54),
            ({1: True, 2: False, 3: True, 4: False}, 10),
            ({1: False, 2: True, 3: False, 4: False}, 30)]
    closed = _enrollment_psdd()
    learn_parameters(closed, data)
    em = _enrollment_psdd()
    trace = em_learn(em, data, iterations=50, alpha=0.0)
    assert trace[-1] == pytest.approx(log_likelihood(closed, data))


def test_em_is_monotone_on_incomplete_data():
    psdd = _enrollment_psdd()
    data = [({1: True, 2: True}, 20), ({3: False}, 10),
            ({1: False, 4: False}, 8), ({2: True, 4: True}, 5)]
    trace = em_learn(psdd, data, iterations=40, alpha=0.01)
    for before, after in zip(trace, trace[1:]):
        assert after >= before - 1e-9
    # trace entries are computed before each M-step, so the final
    # parameters can only be at least as good as the last entry
    assert incomplete_log_likelihood(psdd, data) >= trace[-1] - 1e-9


def test_em_improves_over_uniform_start():
    psdd = _enrollment_psdd()
    data = [({1: True, 2: True}, 15), ({1: True, 3: False}, 10)]
    before = incomplete_log_likelihood(psdd, data)
    em_learn(psdd, data, iterations=25, alpha=0.01)
    after = incomplete_log_likelihood(psdd, data)
    assert after > before


def test_em_rejects_impossible_evidence():
    psdd = _enrollment_psdd()
    # P=0, L=0 violates (P | L): marginal 0
    with pytest.raises(ValueError):
        em_learn(psdd, [({1: False, 2: False}, 1)], iterations=2)


def test_em_with_fully_observed_and_missing_mixture():
    psdd = _enrollment_psdd()
    data = [({1: True, 2: True, 3: True, 4: True}, 5),
            ({1: True}, 10), ({2: True, 3: False}, 3)]
    trace = em_learn(psdd, data, iterations=30, alpha=0.05)
    assert trace[-1] >= trace[0]
    total = sum(psdd.probability(a) for a in iter_assignments([1, 2, 3, 4]))
    assert total == pytest.approx(1.0)
