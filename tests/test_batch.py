"""Property-based cross-checks for the batched evaluation layer.

Every batched numpy path introduced by the vectorized-evaluation PR
must agree with its scalar oracle: kernel WMC / evaluation /
derivatives (linear and log space), arithmetic-circuit queries,
pipeline marginals, PSDD marginals, classifier dataset scoring, and
OBDD counterfactual probes.  The scalar implementations are kept
precisely to serve as these oracles, so the comparisons below run over
hundreds of randomly generated circuits, weight vectors, and evidence
sets — including batch size 1 and zero-probability weights.
"""

import os
import random
import subprocess
import sys

import numpy as np
import pytest

from repro.bayesnet.examples import random_network
from repro.classifiers import (BinarizedNeuralNetwork, BnClassifier,
                               NaiveBayesClassifier, RandomForest,
                               compile_bnn)
from repro.compile.dnnf_compiler import DnnfCompiler
from repro.explain import decision_sticks, decision_sticks_batch
from repro.logic.cnf import Cnf
from repro.nnf import queries
from repro.nnf.kernel import pack_weight_batch
from repro.psdd import (learn_parameters, marginal, marginal_batch,
                        psdd_from_sdd, sample_dataset,
                        variable_marginals)
from repro.psdd.queries import variable_marginals_legacy
from repro.sdd import compile_cnf_sdd
from repro.wmc.arithmetic_circuit import ArithmeticCircuit
from repro.wmc.pipeline import WmcPipeline

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RTOL = 1e-9


def random_3cnf(num_vars, num_clauses, rng):
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        clauses.append(tuple(v if rng.random() < 0.5 else -v
                             for v in chosen))
    return Cnf(clauses, num_vars=num_vars)


def random_weights(variables, rng, zero_fraction=0.0):
    weights = {}
    for var in variables:
        for lit in (var, -var):
            weights[lit] = 0.0 if rng.random() < zero_fraction \
                else rng.uniform(0.1, 2.0)
    return weights


def assert_close(got, want, context=""):
    assert got == pytest.approx(want, rel=RTOL, abs=1e-12), \
        f"{context}: {got} != {want}"


def compiled_circuits(count, num_vars=8, num_clauses=14, first_seed=0):
    circuits = []
    for seed in range(first_seed, first_seed + count):
        rng = random.Random(seed)
        cnf = random_3cnf(num_vars, num_clauses, rng)
        root = DnnfCompiler().compile(cnf)
        circuits.append((root, rng))
    return circuits


class TestKernelBatches:
    """Raw kernel passes against the scalar kernel, many random cases."""

    def test_wmc_batch_matches_scalar(self):
        cases = 0
        for root, rng in compiled_circuits(10):
            variables = sorted(root.variables() | {90, 91})
            maps = [random_weights(variables, rng,
                                   zero_fraction=0.1 * (j % 3))
                    for j in range(20)]
            batch = queries.weighted_model_count_batch(
                root, maps, variables=variables)
            for j, weights in enumerate(maps):
                scalar = queries.weighted_model_count(
                    root, weights, variables=variables)
                assert_close(batch[j], scalar, f"case {cases}")
                cases += 1
        assert cases == 200

    def test_wmc_log_batch_matches_scalar(self):
        for root, rng in compiled_circuits(6, first_seed=20):
            variables = sorted(root.variables())
            maps = [random_weights(variables, rng,
                                   zero_fraction=0.15 * (j % 2))
                    for j in range(12)]
            log_batch = queries.weighted_model_count_log_batch(
                root, maps, variables=variables)
            for j, weights in enumerate(maps):
                scalar = queries.weighted_model_count(
                    root, weights, variables=variables)
                if scalar == 0.0:
                    assert log_batch[j] == -np.inf
                else:
                    assert_close(np.exp(log_batch[j]), scalar, f"log {j}")

    def test_evaluate_batch_matches_indicator_wmc(self):
        for root, rng in compiled_circuits(5, first_seed=40):
            variables = sorted(root.variables())
            assignments = [{v: rng.random() < 0.5 for v in variables}
                           for _ in range(25)]
            results = queries.evaluate_batch(root, assignments)
            for j, assignment in enumerate(assignments):
                indicator = {lit: 1.0 if assignment[abs(lit)] == (lit > 0)
                             else 0.0
                             for v in variables for lit in (v, -v)}
                scalar = queries.weighted_model_count(root, indicator)
                assert bool(results[j]) == (scalar > 0.5)

    def test_batch_of_one_and_prepacked(self):
        (root, rng), = compiled_circuits(1, first_seed=60)
        variables = sorted(root.variables())
        weights = random_weights(variables, rng)
        batch = queries.weighted_model_count_batch(root, [weights])
        assert batch.shape == (1,)
        assert_close(batch[0], queries.weighted_model_count(root, weights))
        packed = pack_weight_batch([weights, weights], variables)
        twice = queries.weighted_model_count_batch(root, packed)
        assert twice.shape == (2,)
        assert_close(twice[0], twice[1])

    def test_empty_batch_yields_empty_result(self):
        (root, _), = compiled_circuits(1, first_seed=61)
        result = queries.weighted_model_count_batch(root, [])
        assert result.shape == (0,)
        # a batch with no columns at all is unrecoverable: no way to
        # infer the batch size
        kernel = queries.get_kernel(root)
        with pytest.raises(ValueError):
            kernel.wmc_batch({})


class TestArithmeticCircuitBatches:
    """AC-level batches, including free (unmentioned) variables."""

    def circuits(self):
        out = []
        for root, rng in compiled_circuits(5, first_seed=80):
            # two variables beyond the circuit's support => free vars
            variables = sorted(root.variables() | {95, 96})
            out.append((ArithmeticCircuit(root, variables), rng))
        return out

    def test_evaluate_batch(self):
        for ac, rng in self.circuits():
            maps = [random_weights(ac.variables, rng) for _ in range(10)]
            batch = ac.evaluate_batch(maps)
            for j, weights in enumerate(maps):
                assert_close(batch[j], ac.evaluate(weights), f"eval {j}")

    def test_evaluate_log_batch(self):
        for ac, rng in self.circuits():
            maps = [random_weights(ac.variables, rng) for _ in range(6)]
            log_batch = ac.evaluate_log_batch(maps)
            for j, weights in enumerate(maps):
                assert_close(np.exp(log_batch[j]), ac.evaluate(weights),
                             f"logeval {j}")

    def test_derivatives_batch(self):
        cases = 0
        for ac, rng in self.circuits():
            maps = [random_weights(ac.variables, rng) for _ in range(8)]
            batch = ac.derivatives_batch(maps)
            for j, weights in enumerate(maps):
                scalar = ac.derivatives(weights)
                assert set(batch) == set(scalar)
                for lit, column in batch.items():
                    assert_close(column[j], scalar[lit],
                                 f"d case {cases} lit {lit}")
                cases += 1
        assert cases == 40

    def test_literal_marginals_batch(self):
        for ac, rng in self.circuits()[:3]:
            maps = [random_weights(ac.variables, rng) for _ in range(5)]
            batch = ac.literal_marginals_batch(maps)
            for j, weights in enumerate(maps):
                scalar = ac.literal_marginals(weights)
                for lit in scalar:
                    assert_close(batch[lit][j], scalar[lit],
                                 f"marg lit {lit}")


class TestPipelineBatches:
    """WmcPipeline: batched evidence probabilities and marginals."""

    def networks(self):
        return [random_network(8, rng=random.Random(1)),
                random_network(11, max_parents=3,
                               rng=random.Random(5))]

    def evidence_batch(self, network, rng, count):
        names = network.variables
        batch = []
        for _ in range(count):
            chosen = rng.sample(names, rng.randint(0, len(names) // 2))
            batch.append({name: rng.randint(0, 1) for name in chosen})
        batch[0] = {}  # always include the no-evidence query
        return batch

    def test_probability_of_evidence_batch(self):
        for network in self.networks():
            pipeline = WmcPipeline(network)
            rng = random.Random(2)
            evidence = self.evidence_batch(network, rng, 25)
            batch = pipeline.probability_of_evidence_batch(evidence)
            log_batch = pipeline.probability_of_evidence_batch(
                evidence, log_space=True)
            for j, e in enumerate(evidence):
                scalar = pipeline.probability_of_evidence(e)
                assert_close(batch[j], scalar, f"poe {j}")
                assert_close(np.exp(log_batch[j]), scalar, f"poe-log {j}")

    def test_marginals_batch(self):
        cases = 0
        for network in self.networks():
            pipeline = WmcPipeline(network)
            rng = random.Random(3)
            evidence = self.evidence_batch(network, rng, 15)
            batch = pipeline.marginals_batch(evidence)
            assert len(batch) == len(evidence)
            for j, e in enumerate(evidence):
                scalar = pipeline.marginals(e)
                assert set(batch[j]) == set(scalar)
                for name, states in scalar.items():
                    for state, p in states.items():
                        assert_close(batch[j][name][state], p,
                                     f"marg {j} {name}={state}")
                cases += 1
        assert cases == 30

    def test_marginals_batch_of_one(self):
        pipeline = WmcPipeline(random_network(6, rng=random.Random(9)))
        (result,) = pipeline.marginals_batch([{}])
        scalar = pipeline.marginals({})
        for name, states in scalar.items():
            for state, p in states.items():
                assert_close(result[name][state], p)


class TestPsddBatches:
    """PSDD one-pass marginals and batched evidence marginals."""

    def learned_psdds(self, count):
        psdds = []
        for seed in range(count):
            rng = random.Random(100 + seed)
            cnf = random_3cnf(8, 14, rng)
            sdd, _manager = compile_cnf_sdd(cnf)
            psdd = psdd_from_sdd(sdd)
            data = sample_dataset(psdd, 60, rng)
            learn_parameters(psdd, data, alpha=0.5)
            psdds.append((psdd, rng))
        return psdds

    def test_variable_marginals_matches_legacy(self):
        for psdd, _rng in self.learned_psdds(8):
            new = variable_marginals(psdd)
            old = variable_marginals_legacy(psdd)
            assert set(new) == set(old)
            for var in new:
                assert_close(new[var], old[var], f"var {var}")

    def test_marginal_batch_matches_scalar(self):
        cases = 0
        for psdd, rng in self.learned_psdds(5):
            variables = sorted(psdd.variables())
            evidence = []
            for _ in range(20):
                chosen = rng.sample(variables,
                                    rng.randint(0, len(variables)))
                evidence.append({v: rng.random() < 0.5 for v in chosen})
            evidence[0] = {}
            batch = marginal_batch(psdd, evidence)
            for j, e in enumerate(evidence):
                assert_close(batch[j], marginal(psdd, e), f"psdd {cases}")
                cases += 1
        assert cases == 100


class TestClassifierBatches:
    """Dataset scoring through the batched classifier paths."""

    def dataset(self, count, num_features, seed):
        rng = random.Random(seed)
        features = list(range(1, num_features + 1))
        instances = [{v: rng.random() < 0.5 for v in features}
                     for _ in range(count)]
        labels = [sum(instance.values()) % 2 == 0
                  for instance in instances]
        return instances, labels, rng

    def test_naive_bayes(self):
        instances, labels, _rng = self.dataset(120, 10, seed=11)
        classifier = NaiveBayesClassifier.fit(instances, labels)
        posteriors = classifier.posterior_batch(instances)
        decisions = classifier.decide_batch(instances)
        for j, instance in enumerate(instances):
            assert_close(posteriors[j], classifier.posterior(instance))
            assert bool(decisions[j]) == classifier.decide(instance)
        expected = sum(classifier.decide(x) == y
                       for x, y in zip(instances, labels)) / len(labels)
        assert_close(classifier.accuracy(instances, labels), expected)

    def test_binarized_network(self):
        instances, labels, _rng = self.dataset(100, 12, seed=12)
        network = BinarizedNeuralNetwork.train(
            instances, labels, hidden=(4,), seed=3, passes=2)
        forward = network.forward_batch(instances)
        for j, instance in enumerate(instances):
            assert bool(forward[j]) == network.forward(instance)
        expected = sum(network.forward(x) == y
                       for x, y in zip(instances, labels)) / len(labels)
        assert_close(network.accuracy(instances, labels), expected)

    def test_random_forest(self):
        instances, labels, rng = self.dataset(150, 9, seed=13)
        forest = RandomForest.fit(instances[:100], labels[:100],
                                  num_trees=5, max_depth=4, rng=rng)
        votes = forest.votes_batch(instances)
        decisions = forest.decide_batch(instances)
        for j, instance in enumerate(instances):
            assert int(votes[j]) == forest.votes(instance)
            assert bool(decisions[j]) == forest.decide(instance)

    def test_bn_classifier(self):
        network = random_network(6, rng=random.Random(21))
        names = network.variables
        classifier = BnClassifier(network, names[-1], names[:-1])
        rng = random.Random(22)
        instances = [{name: rng.randint(0, 1) for name in names[:-1]}
                     for _ in range(40)]
        posteriors = classifier.posterior_batch(instances)
        decisions = classifier.decide_batch(instances)
        for j, instance in enumerate(instances):
            assert_close(posteriors[j], classifier.posterior(instance))
            assert bool(decisions[j]) == classifier.decide(instance)


class TestCounterfactualBatch:
    """Batched OBDD probes: fig-28 style per-pixel sweeps."""

    def test_decision_sticks_batch(self):
        rng = random.Random(31)
        instances, labels, _ = TestClassifierBatches().dataset(
            60, 9, seed=31)
        network = BinarizedNeuralNetwork.train(
            instances, labels, hidden=(3,), seed=2, passes=2)
        circuit, _layers = compile_bnn(network)
        instance = instances[0]
        variables = sorted(instance)
        flip_sets = [[v] for v in variables] + \
            [rng.sample(variables, 3) for _ in range(10)] + [[]]
        batch = decision_sticks_batch(circuit, instance, flip_sets)
        assert batch == [decision_sticks(circuit, instance, flips)
                         for flips in flip_sets]

    def test_obdd_evaluate_batch(self):
        rng = random.Random(32)
        instances, labels, _ = TestClassifierBatches().dataset(
            80, 8, seed=32)
        network = BinarizedNeuralNetwork.train(
            instances, labels, hidden=(3,), seed=4, passes=2)
        circuit, _layers = compile_bnn(network)
        results = circuit.evaluate_batch(instances)
        for j, instance in enumerate(instances):
            assert bool(results[j]) == circuit.evaluate(instance)


def test_kernel_imports_without_numpy_side_effects():
    """The kernel module must import (and keep its scalar paths usable)
    even when numpy is unusable — the batch layer imports numpy lazily,
    so merely importing ``repro`` touches no numpy attribute."""
    code = "\n".join([
        "import sys, types",
        "class Poison(types.ModuleType):",
        "    def __getattr__(self, name):",
        "        raise AssertionError('numpy.%s touched at import "
        "time' % name)",
        "sys.modules['numpy'] = Poison('numpy')",
        "import repro",
        "import repro.nnf.kernel as kernel",
        "import repro.nnf.queries",
        "assert hasattr(kernel.CircuitKernel, 'wmc_batch')",
        "from repro.logic.cnf import Cnf",
        "from repro.compile.dnnf_compiler import DnnfCompiler",
        "root = DnnfCompiler().compile(Cnf([(1, 2), (-1, 2)],"
        " num_vars=2))",
        "assert repro.nnf.queries.model_count(root) == 2",
        "print('OK')",
    ])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout
