"""Tests for the SDD package: apply, canonicity, counting, export."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Cnf, VarMap, iter_assignments, parse, to_cnf
from repro.nnf import (is_decomposable, is_deterministic,
                       model_count as nnf_model_count)
from repro.nnf.properties import is_structured
from repro.sdd import (SddManager, compile_cnf_sdd,
                       compile_terms_sdd, enumerate_models, model_count,
                       sdd_to_nnf, weighted_model_count)
from repro.vtree import (balanced_vtree, random_vtree, right_linear_vtree)


@pytest.fixture
def manager():
    return SddManager(balanced_vtree([1, 2, 3, 4]))


def test_constants(manager):
    assert manager.true.is_true
    assert manager.false.is_false
    assert manager.constant(True) is manager.true
    assert manager.true.negation is manager.false


def test_literals(manager):
    x = manager.literal(1)
    assert x.is_literal and x.literal == 1
    assert manager.literal(1) is x  # interned
    assert x.evaluate({1: True})
    assert not x.evaluate({1: False})
    with pytest.raises(KeyError):
        manager.literal(9)


def test_apply_truth_tables(manager):
    a, b = manager.literal(1), manager.literal(3)
    conj = manager.conjoin(a, b)
    disj = manager.disjoin(a, b)
    for assignment in iter_assignments([1, 2, 3, 4]):
        assert conj.evaluate(assignment) == \
            (assignment[1] and assignment[3])
        assert disj.evaluate(assignment) == \
            (assignment[1] or assignment[3])


def test_apply_same_variable(manager):
    x, nx = manager.literal(1), manager.literal(-1)
    assert manager.conjoin(x, nx) is manager.false
    assert manager.disjoin(x, nx) is manager.true
    assert manager.conjoin(x, x) is x


def test_negation_is_involution(manager):
    f = manager.disjoin(manager.conjoin(manager.literal(1),
                                        manager.literal(2)),
                        manager.literal(-3))
    g = manager.negate(f)
    for assignment in iter_assignments([1, 2, 3, 4]):
        assert g.evaluate(assignment) == (not f.evaluate(assignment))
    assert manager.negate(g) is f


def test_canonicity_same_function_same_node(manager):
    # (1 & 2) | (2 & 1) built differently must intern to the same node
    f = manager.conjoin(manager.literal(1), manager.literal(2))
    g = manager.conjoin(manager.literal(2), manager.literal(1))
    assert f is g
    # de Morgan: ~(1 & 2) == ~1 | ~2
    lhs = manager.negate(f)
    rhs = manager.disjoin(manager.literal(-1), manager.literal(-2))
    assert lhs is rhs


def test_term_and_clause(manager):
    t = manager.term([1, -2])
    c = manager.clause([1, -2])
    for assignment in iter_assignments([1, 2, 3, 4]):
        assert t.evaluate(assignment) == \
            (assignment[1] and not assignment[2])
        assert c.evaluate(assignment) == \
            (assignment[1] or not assignment[2])


def test_exactly(manager):
    node = manager.exactly({1: True, 2: False, 3: True, 4: False})
    assert model_count(node) == 1
    assert node.evaluate({1: True, 2: False, 3: True, 4: False})


def test_model_count_scaling(manager):
    x = manager.literal(1)
    assert model_count(x) == 8  # 2^3 free variables
    f = manager.conjoin(manager.literal(1), manager.literal(2))
    assert model_count(f) == 4


def test_model_count_scope_error(manager):
    f = manager.literal(4)
    with pytest.raises(ValueError):
        model_count(f, scope=manager.vtree.left)


def test_weighted_model_count(manager):
    f = manager.disjoin(manager.literal(1), manager.literal(2))
    weights = {1: 0.6, -1: 0.4, 2: 0.3, -2: 0.7,
               3: 1.0, -3: 0.0, 4: 1.0, -4: 0.0}
    assert weighted_model_count(f, weights) == pytest.approx(1 - 0.4 * 0.7)


def test_enumerate_models(manager):
    f = manager.conjoin(manager.literal(1), manager.literal(-3))
    models = list(enumerate_models(f))
    assert len(models) == 4
    keys = {tuple(sorted(m.items())) for m in models}
    assert len(keys) == 4
    for m in models:
        assert f.evaluate(m)


def test_paper_fig13_circuit():
    """Fig 13's SDD (the enrollment constraint) has 9 satisfying inputs."""
    vm = VarMap()
    f = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    root, manager = compile_cnf_sdd(to_cnf(f))
    assert model_count(root) == 9


def test_sdd_to_nnf_is_structured_ddnnf():
    vm = VarMap()
    f = parse("(A | ~C) & (B | C) & (A | B)", vm)
    root, manager = compile_cnf_sdd(to_cnf(f))
    circuit = sdd_to_nnf(root)
    assert is_decomposable(circuit)
    assert is_deterministic(circuit)
    assert is_structured(circuit, manager.vtree)
    assert nnf_model_count(circuit, [1, 2, 3]) == model_count(root)


def test_compile_terms(manager):
    terms = [(1, 2, -3, -4), (-1, -2, 3, 4)]
    node = compile_terms_sdd(terms, manager)
    assert model_count(node) == 2


def test_size_reported(manager):
    f = manager.conjoin(manager.literal(1), manager.literal(2))
    assert f.size() > 0
    assert manager.literal(1).size() == 0


def test_apply_invalid_op(manager):
    with pytest.raises(ValueError):
        manager.apply(manager.literal(1), manager.literal(2), "xor")


# -- property-based -------------------------------------------------------------

def cnfs(max_var=5, max_clauses=7):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(literal, min_size=1, max_size=3).map(tuple)
    return st.lists(clause, min_size=0, max_size=max_clauses).map(
        lambda cs: Cnf(cs, num_vars=max_var))


@settings(max_examples=80, deadline=None)
@given(cnfs())
def test_sdd_compilation_equivalence(cnf):
    root, manager = compile_cnf_sdd(cnf)
    for assignment in iter_assignments(range(1, cnf.num_vars + 1)):
        assert root.evaluate(assignment) == cnf.evaluate(assignment)
    assert model_count(root) == cnf.model_count()


@settings(max_examples=40, deadline=None)
@given(cnfs(max_var=4), st.randoms(use_true_random=False))
def test_sdd_count_invariant_to_vtree(cnf, rng):
    """Model counts agree across vtrees (sizes may differ wildly)."""
    reference = cnf.model_count()
    for vtree in (balanced_vtree([1, 2, 3, 4]),
                  right_linear_vtree([4, 2, 3, 1]),
                  random_vtree([1, 2, 3, 4], rng=rng)):
        root, manager = compile_cnf_sdd(cnf, vtree=vtree)
        assert model_count(root) == reference


@settings(max_examples=50, deadline=None)
@given(cnfs(max_var=4))
def test_sdd_negation_partitions_space(cnf):
    root, manager = compile_cnf_sdd(cnf)
    neg = manager.negate(root)
    assert model_count(root) + model_count(neg) == 2 ** cnf.num_vars
    assert manager.conjoin(root, neg) is manager.false
    assert manager.disjoin(root, neg) is manager.true


@settings(max_examples=40, deadline=None)
@given(cnfs(max_var=4), cnfs(max_var=4))
def test_sdd_apply_distributes(cnf_a, cnf_b):
    """apply agrees with the semantic conjunction/disjunction."""
    vtree = balanced_vtree([1, 2, 3, 4])
    manager = SddManager(vtree)
    a, _ = compile_cnf_sdd(cnf_a, manager=manager)
    b, _ = compile_cnf_sdd(cnf_b, manager=manager)
    conj = manager.conjoin(a, b)
    disj = manager.disjoin(a, b)
    for assignment in iter_assignments([1, 2, 3, 4]):
        assert conj.evaluate(assignment) == \
            (cnf_a.evaluate(assignment) and cnf_b.evaluate(assignment))
        assert disj.evaluate(assignment) == \
            (cnf_a.evaluate(assignment) or cnf_b.evaluate(assignment))


@settings(max_examples=40, deadline=None)
@given(cnfs(max_var=4))
def test_sdd_canonicity_across_compilation_orders(cnf):
    root, manager = compile_cnf_sdd(cnf)
    again = manager.conjoin_all(manager.clause(c)
                                for c in reversed(cnf.clauses))
    assert root is again
