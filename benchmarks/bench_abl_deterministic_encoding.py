"""ABL4 — exploiting 0/1 parameters in the BN → CNF reduction.

Section 2: "These reduction-based approaches are the state of the art
on certain problems; for example, when the Bayesian network has an
abundance of 0/1 probabilities".  We encode the same networks with and
without the determinism refinement and compare encoding/circuit sizes
across the fraction of deterministic CPT rows, checking all queries
stay identical.
"""

import random

from repro.bayesnet import mar, medical_network, random_network
from repro.wmc import WmcPipeline


def _experiment():
    rows = []
    # the medical network: AGREE is fully deterministic
    plain = WmcPipeline(medical_network())
    optimized = WmcPipeline(medical_network(), exploit_determinism=True)
    rows.append(("medical (Fig 2)", plain.encoding.cnf.num_vars,
                 optimized.encoding.cnf.num_vars,
                 plain.circuit_size(), optimized.circuit_size()))
    rng = random.Random(44)
    agreements = []
    for zero_fraction in (0.0, 0.3, 0.6, 0.9):
        network = random_network(7, rng=rng,
                                 zero_fraction=zero_fraction)
        plain = WmcPipeline(network)
        optimized = WmcPipeline(network, exploit_determinism=True)
        rows.append((f"random, {zero_fraction:.0%} deterministic",
                     plain.encoding.cnf.num_vars,
                     optimized.encoding.cnf.num_vars,
                     plain.circuit_size(), optimized.circuit_size()))
        for name in network.variables:
            exact = mar(network, {name: 1})
            agreements.append(abs(plain.mar({name: 1}) - exact))
            agreements.append(abs(optimized.mar({name: 1}) - exact))
    return rows, max(agreements)


def test_abl4_deterministic_encoding(benchmark, table):
    rows, worst_error = benchmark.pedantic(_experiment, rounds=1,
                                           iterations=1)

    table("ABL4: encoding/circuit sizes, plain vs 0/1-aware reduction",
          [[name, pv, ov, pc, oc, f"{pc / oc:.2f}x"]
           for name, pv, ov, pc, oc in rows],
          headers=["network", "vars (plain)", "vars (0/1-aware)",
                   "circuit (plain)", "circuit (0/1-aware)", "gain"])
    print(f"\n  worst query disagreement vs VE: {worst_error:.2e}")

    assert worst_error < 1e-9
    for _name, pv, ov, pc, oc in rows:
        assert ov <= pv
        assert oc <= pc * 1.05  # never meaningfully worse
    # the win grows with the deterministic fraction
    gains = [pc / oc for _n, _pv, _ov, pc, oc in rows[1:]]
    assert gains[-1] > gains[0]
