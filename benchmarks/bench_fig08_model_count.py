"""FIG8 — linear-time model counting on d-DNNF circuits.

The running circuit of Figs 5–8 (the enrollment constraint over
K, L, A, P) must count exactly 9 satisfying inputs of 16, via both the
Decision-DNNF compiler and the SDD compiler; smoothing must not change
the count; and WMC with unit weights must equal #SAT (the paper's
remark that #SAT is the W≡1 special case).
"""

from repro.logic import VarMap, parse, to_cnf
from repro.compile import compile_cnf
from repro.nnf import (is_smooth, model_count, smooth,
                       weighted_model_count)
from repro.sdd import compile_cnf_sdd, model_count as sdd_model_count

CONSTRAINT = "(P | L) & (A -> P) & (K -> (A | L))"


def _count_everything():
    vm = VarMap()
    cnf = to_cnf(parse(CONSTRAINT, vm))
    full = range(1, cnf.num_vars + 1)

    ddnnf = compile_cnf(cnf)
    smoothed = smooth(ddnnf)
    sdd, _manager = compile_cnf_sdd(cnf)
    unit = {lit: 1.0 for v in full for lit in (v, -v)}
    return {
        "ddnnf_count": model_count(ddnnf, full),
        "smooth_count": model_count(smoothed, full),
        "smooth_is_smooth": is_smooth(smoothed),
        "sdd_count": sdd_model_count(sdd),
        "wmc_unit": weighted_model_count(ddnnf, unit, full),
        "ddnnf_edges": ddnnf.edge_count(),
        "smooth_edges": smoothed.edge_count(),
        "sdd_size": sdd.size(),
    }


def test_fig8_model_count(benchmark, table):
    results = benchmark(_count_everything)

    table("Fig 8: model counts of the K/L/A/P circuit (paper: 9 of 16)",
          [["Decision-DNNF", results["ddnnf_count"],
            results["ddnnf_edges"]],
           ["smoothed d-DNNF", results["smooth_count"],
            results["smooth_edges"]],
           ["SDD", results["sdd_count"], results["sdd_size"]],
           ["WMC, unit weights", f"{results['wmc_unit']:.1f}", "-"]],
          headers=["route", "count", "size"])

    assert results["ddnnf_count"] == 9
    assert results["smooth_count"] == 9
    assert results["sdd_count"] == 9
    assert results["wmc_unit"] == 9.0
    assert results["smooth_is_smooth"]
    # smoothing may only add gates
    assert results["smooth_edges"] >= results["ddnnf_edges"]
