"""ABL2 — what makes model counters / compilers fast (Section 3).

The paper's compilers inherit sharpSAT's machinery: component
decomposition and component caching.  We count the same formulas with
each switch off and compare decision counts (the machine-independent
cost measure), plus the equivalence of counter and compiler answers
(the "language of search" correspondence [38]).
"""

import random

from repro.compile import DnnfCompiler
from repro.logic import Cnf
from repro.nnf import model_count
from repro.sat import ModelCounter


def _random_cnf(num_vars, num_clauses, rng):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(2, 3)
        variables = rng.sample(range(1, num_vars + 1), size)
        clauses.append(tuple(v if rng.random() < 0.5 else -v
                             for v in variables))
    return Cnf(clauses, num_vars=num_vars)


def _chain_cnf(n):
    """(x_i ∨ x_{i+1}) chains decompose heavily after conditioning."""
    return Cnf([(i, i + 1) for i in range(1, n)], num_vars=n)


def _experiment():
    rng = random.Random(2)
    instances = [("chain-20", _chain_cnf(20)),
                 ("chain-40", _chain_cnf(40)),
                 ("random-14", _random_cnf(14, 28, rng)),
                 ("random-16", _random_cnf(16, 32, rng))]
    rows = []
    for name, cnf in instances:
        decisions = {}
        reference = None
        for components in (True, False):
            for cache in (True, False):
                counter = ModelCounter(use_components=components,
                                       use_cache=cache)
                count = counter.count(cnf)
                if reference is None:
                    reference = count
                assert count == reference
                decisions[(components, cache)] = counter.decisions
        compiler = DnnfCompiler()
        circuit = compiler.compile(cnf)
        compiled_count = model_count(circuit,
                                     range(1, cnf.num_vars + 1))
        assert compiled_count == reference
        rows.append((name, reference,
                     decisions[(True, True)], decisions[(True, False)],
                     decisions[(False, True)], decisions[(False, False)],
                     circuit.edge_count()))
    return rows


def test_abl2_compiler_features(benchmark, table):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    table("ABL2: #SAT search decisions under optimisation switches",
          [[name, count, full, no_cache, no_comp, neither, edges]
           for name, count, full, no_cache, no_comp, neither, edges
           in rows],
          headers=["instance", "#models", "comp+cache", "comp only",
                   "cache only", "neither", "d-DNNF edges"])

    for _name, _count, full, _no_cache, _no_comp, neither, _e in rows:
        # the full stack is never worse than plain DPLL
        assert full <= neither
    # the big chain shows a dramatic (exponential-to-linear) gap, and
    # component caching is the lever that produces it
    chain40 = rows[1]
    assert chain40[2] * 50 < chain40[5]      # full vs neither
    assert chain40[4] * 50 < chain40[5]      # cache-only vs neither
