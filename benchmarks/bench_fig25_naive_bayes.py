"""FIG25 — compiling a naive Bayes classifier into a decision graph.

Regenerates: exact input-output agreement between the probabilistic
classifier and the compiled ODD on all 8 instances, Susan's posterior,
her two sufficient reasons ({S}, {B, U}), and a threshold sweep showing
how the compiled graph tracks the decision boundary.
"""

from repro.classifiers import (PREGNANCY_FEATURES, compile_naive_bayes,
                               pregnancy_classifier)
from repro.explain import all_sufficient_reasons
from repro.logic import iter_assignments

NAMES = {v: k for k, v in PREGNANCY_FEATURES.items()}


def _compile_and_check():
    classifier = pregnancy_classifier(threshold=0.9)
    circuit = compile_naive_bayes(classifier)
    rows = []
    agreement = True
    for a in iter_assignments([1, 2, 3]):
        decision = classifier.decide(a)
        compiled = circuit.evaluate(a)
        agreement &= (decision == compiled)
        rows.append((tuple(int(a[v]) for v in (1, 2, 3)),
                     classifier.posterior(a), decision, compiled))
    susan = {1: True, 2: True, 3: True}
    reasons = all_sufficient_reasons(circuit, susan)
    sweep = []
    for threshold in (0.3, 0.5, 0.7, 0.9, 0.99):
        clf = pregnancy_classifier(threshold)
        node = compile_naive_bayes(clf)
        positives = sum(1 for a in iter_assignments([1, 2, 3])
                        if node.evaluate(a))
        ok = all(node.evaluate(a) == clf.decide(a)
                 for a in iter_assignments([1, 2, 3]))
        sweep.append((threshold, positives, node.size(), ok))
    return rows, circuit, reasons, sweep


def test_fig25_naive_bayes(benchmark, table):
    rows, circuit, reasons, sweep = benchmark(_compile_and_check)

    table("Fig 25: classifier vs compiled decision graph (threshold 0.9)",
          [[f"B={b} U={u} S={s}", f"{post:.4f}", dec, comp]
           for (b, u, s), post, dec, comp in rows],
          headers=["instance", "posterior", "NB decision", "ODD output"])
    pretty = [" & ".join(f"{NAMES[abs(l)]}=+ve" for l in sorted(r, key=abs))
              for r in reasons]
    table("Susan (+,+,+): sufficient reasons (paper: S; and B & U)",
          [[p] for p in pretty])
    table("threshold sweep",
          [[t, pos, size, ok] for t, pos, size, ok in sweep],
          headers=["threshold", "positive instances", "OBDD size",
                   "exact agreement"])

    assert all(dec == comp for _i, _p, dec, comp in rows)
    assert set(reasons) == {frozenset({PREGNANCY_FEATURES["S"]}),
                            frozenset({PREGNANCY_FEATURES["B"],
                                       PREGNANCY_FEATURES["U"]})}
    assert all(ok for _t, _p, _s, ok in sweep)
    # raising the threshold can only shrink the positive region
    positives = [p for _t, p, _s, _ok in sweep]
    assert positives == sorted(positives, reverse=True)
