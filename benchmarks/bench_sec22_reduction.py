"""SEC2.2 — the MAR → WMC reduction on the Fig 4 network (A → B, A → C).

Regenerates the eight-row joint table of Fig 4 from the *weighted
models* of the Section 2.2 encoding, and checks every query agrees with
variable elimination.
"""

from repro.bayesnet import chain_network, mar
from repro.sat import enumerate_models
from repro.wmc import WmcPipeline, encode_binary

THETA_A = 0.6
THETA_B = (0.2, 0.9)
THETA_C = (0.7, 0.3)


def _run_reduction():
    network = chain_network(THETA_A, THETA_B, THETA_C)
    encoding = encode_binary(network)
    rows = []
    for model in enumerate_models(encoding.cnf):
        weight = 1.0
        for var, value in model.items():
            weight *= encoding.weights[var if value else -var]
        state = encoding.state_of_model(model)
        rows.append((state["A"], state["B"], state["C"], weight))
    rows.sort(reverse=True)
    pipeline = WmcPipeline(network, encoding="binary")
    queries = {}
    for name in ("A", "B", "C"):
        queries[name] = (pipeline.mar({name: 1}), mar(network, {name: 1}))
    conditional = (pipeline.mar({"B": 1}, {"C": 1}),
                   mar(network, {"B": 1}, {"C": 1}))
    return network, rows, queries, conditional, encoding


def test_sec22_reduction(benchmark, table):
    network, rows, queries, conditional, encoding = \
        benchmark(_run_reduction)

    table("Fig 4: the joint distribution from weighted models of Δ",
          [[a, b, c, f"{w:.4f}", f"{network.probability({'A': a, 'B': b, 'C': c}):.4f}"]
           for a, b, c, w in rows],
          headers=["A", "B", "C", "model weight", "BN probability"])
    table("Section 2.2: MAR via WMC vs variable elimination",
          [[f"Pr({name}=1)", f"{wmc:.4f}", f"{ve:.4f}"]
           for name, (wmc, ve) in queries.items()] +
          [["Pr(B=1 | C=1)", f"{conditional[0]:.4f}",
            f"{conditional[1]:.4f}"]],
          headers=["query", "WMC route", "VE route"])
    print(f"\n  encoding: {len(encoding.cnf)} clauses, "
          f"{encoding.cnf.num_vars} Boolean variables "
          f"({network.parameter_count()} parameter variables + 3)")

    # exactness: weights ARE the joint probabilities (expression (1))
    assert len(rows) == 8
    for a, b, c, w in rows:
        assert abs(w - network.probability({"A": a, "B": b, "C": c})) \
            < 1e-12
    for wmc, ve in queries.values():
        assert abs(wmc - ve) < 1e-9
    assert abs(conditional[0] - conditional[1]) < 1e-9
