"""FIG26 — prime implicants and sufficient reasons of a Boolean function.

Regenerates the figure exactly: the prime implicants of
f = (A + ¬C)(B + C)(A + B) and of its complement, the sufficient
reasons of the positive instance A,B,¬C (AB and B¬C) and of the
negative instance ¬A,B,C (the single reason ¬A∧C).
"""

from repro.explain import all_sufficient_reasons, reason_circuit, \
    reason_prime_implicants
from repro.logic import (Not, VarMap, parse,
                         prime_implicants_of_formula)
from repro.obdd import ObddManager, compile_formula

FUNCTION = "(A | ~C) & (B | C) & (A | B)"


def _analyse():
    vm = VarMap()
    f = parse(FUNCTION, vm)
    a, c, b = vm.index("A"), vm.index("C"), vm.index("B")
    manager = ObddManager([a, b, c])
    node = compile_formula(f, manager)

    pis = prime_implicants_of_formula(f)
    neg_pis = prime_implicants_of_formula(Not(f), sorted(f.variables()))
    positive_instance = {a: True, b: True, c: False}
    negative_instance = {a: False, b: True, c: True}
    pos_reasons = all_sufficient_reasons(node, positive_instance)
    neg_reasons = all_sufficient_reasons(node, negative_instance)
    pos_circuit_pis = reason_prime_implicants(
        reason_circuit(node, positive_instance))
    return (vm, pis, neg_pis, pos_reasons, neg_reasons,
            pos_circuit_pis, (a, b, c))


def test_fig26_prime_implicants(benchmark, table):
    (vm, pis, neg_pis, pos_reasons, neg_reasons, pos_circuit_pis,
     (a, b, c)) = benchmark(_analyse)

    def pretty(term):
        return "".join(("" if l > 0 else "~") + vm.name(abs(l))
                       for l in sorted(term, key=abs))

    table("Fig 26: f = (A + ~C)(B + C)(A + B)",
          [["prime implicants of f", ", ".join(map(pretty, pis))],
           ["prime implicants of ~f", ", ".join(map(pretty, neg_pis))]])
    table("instance A,B,~C (decision 1)",
          [["sufficient reasons", ", ".join(map(pretty, pos_reasons))],
           ["via reason circuit", ", ".join(map(pretty,
                                                pos_circuit_pis))]])
    table("instance ~A,B,C (decision 0)",
          [["sufficient reasons", ", ".join(map(pretty, neg_reasons))]])

    assert set(pis) == {frozenset({a, b}), frozenset({a, c}),
                        frozenset({b, -c})}
    assert set(neg_pis) == {frozenset({-a, -b}), frozenset({-b, -c}),
                            frozenset({-a, c})}
    # paper: reasons AB and B~C for the positive instance
    assert set(pos_reasons) == {frozenset({a, b}), frozenset({b, -c})}
    # paper: exactly one reason, ~A C, for the negative instance
    assert neg_reasons == [frozenset({-a, c})]
    assert set(pos_circuit_pis) == set(pos_reasons)
