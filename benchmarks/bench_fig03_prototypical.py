"""FIG3 — SAT, MAJSAT, E-MAJSAT and MAJMAJSAT on an example circuit,
each solved by compiling into the tractable language that unlocks its
complexity class, and cross-checked against brute force.
"""

from repro.logic import Cnf
from repro.solvers import (count_brute, emajsat_brute, emajsat_value,
                           majmajsat_brute, majsat_brute, sat_brute,
                           solve_count, solve_emajsat, solve_majmajsat,
                           solve_majsat, solve_sat, majmajsat_histogram)

# an example circuit Δ over 6 inputs (CNF form), Y = {1, 2, 3}
DELTA = Cnf([(1, 4), (-1, 5), (2, -5, 6), (3, 4, -6), (-2, -4)],
            num_vars=6)
Y_VARS = [1, 2, 3]


def _solve_all():
    results = {}
    results["SAT"] = solve_sat(DELTA)
    results["#SAT"] = solve_count(DELTA)
    results["MAJSAT"] = solve_majsat(DELTA)
    results["E-MAJSAT value"], results["witness"] = \
        emajsat_value(DELTA, Y_VARS)
    results["E-MAJSAT"] = solve_emajsat(DELTA, Y_VARS)
    results["MAJMAJSAT hist"] = majmajsat_histogram(DELTA, Y_VARS)
    results["MAJMAJSAT"] = solve_majmajsat(DELTA, Y_VARS)
    return results


def test_fig3_prototypical_problems(benchmark, table):
    results = benchmark(_solve_all)

    table("Fig 3: prototypical problems on the example circuit",
          [["SAT (NP)", results["SAT"], sat_brute(DELTA)],
           ["#SAT", results["#SAT"], count_brute(DELTA)],
           ["MAJSAT (PP)", results["MAJSAT"], majsat_brute(DELTA)],
           ["E-MAJSAT (NP^PP)", results["E-MAJSAT"],
            2 * emajsat_brute(DELTA, Y_VARS)[0] > 2 ** 3],
           ["MAJMAJSAT (PP^PP)", results["MAJMAJSAT"], "-"]],
          headers=["problem", "via compilation", "brute force"])
    table("E-MAJSAT detail",
          [[f"max_y #z = {results['E-MAJSAT value']}",
            f"witness y = {results['witness']}"]])
    table("MAJMAJSAT histogram {z-count: #y}",
          [[str(results["MAJMAJSAT hist"])]])

    # exactness checks against the oracles
    assert results["SAT"] == sat_brute(DELTA)
    assert results["#SAT"] == count_brute(DELTA)
    assert results["MAJSAT"] == majsat_brute(DELTA)
    brute_value, _w = emajsat_brute(DELTA, Y_VARS)
    assert results["E-MAJSAT value"] == brute_value
    brute_hist = {c: m for c, m in majmajsat_brute(DELTA, Y_VARS).items()
                  if c}
    assert results["MAJMAJSAT hist"] == brute_hist
