"""FIG12 — the (partial) taxonomy of NNF circuits.

Regenerates the knowledge-compilation-map placement of the circuits our
compilers produce: raw structural NNF, DNNF-but-not-deterministic,
Decision-DNNF, smoothed d-DNNF, SDD exports and OBDD exports — and the
queries each language unlocks.
"""

from repro.logic import VarMap, parse, to_cnf
from repro.compile import compile_cnf
from repro.nnf import (NnfManager, classify, from_formula, smooth,
                       supported_queries)
from repro.obdd import compile_cnf_obdd, obdd_to_nnf
from repro.sdd import compile_cnf_sdd, sdd_to_nnf

FORMULA = "(P | L) & (A -> P) & (K -> (A | L))"


def _build_zoo():
    vm = VarMap()
    formula = parse(FORMULA, vm)
    cnf = to_cnf(formula)
    manager = NnfManager()

    zoo = {}
    zoo["structural NNF (from formula)"] = from_formula(formula, manager)
    # a decomposable but non-deterministic circuit: an OR of disjoint-
    # variable terms that overlap semantically
    zoo["DNNF (hand-built)"] = manager.disjoin(
        manager.literal(1),
        manager.conjoin(manager.literal(2), manager.literal(3)))
    ddnnf = compile_cnf(cnf, manager=manager)
    zoo["Decision-DNNF (compiler)"] = ddnnf
    zoo["smoothed d-DNNF"] = smooth(ddnnf)
    sdd, sdd_manager = compile_cnf_sdd(cnf)
    zoo["SDD export"] = (sdd_to_nnf(sdd, manager), sdd_manager.vtree)
    obdd, _om = compile_cnf_obdd(cnf)
    zoo["OBDD export"] = obdd_to_nnf(obdd, manager)
    return zoo


def test_fig12_taxonomy(benchmark, table):
    zoo = benchmark(_build_zoo)

    rows = []
    classifications = {}
    for name, entry in zoo.items():
        if isinstance(entry, tuple):
            circuit, vtree = entry
            languages = classify(circuit, vtree=vtree)
            info = supported_queries(circuit, vtree=vtree)
        else:
            circuit = entry
            languages = classify(circuit)
            info = supported_queries(circuit)
        classifications[name] = languages
        rows.append((name, " ⊂ ".join(languages), info["language"],
                     info["unlocks"] or "-"))
    table("Fig 12: taxonomy placement of compiled circuits",
          [[name, langs, most, unlocks]
           for name, langs, most, unlocks in rows],
          headers=["circuit", "languages", "most specific", "unlocks"])

    # shape: the hierarchy NNF ⊇ DNNF ⊇ d-DNNF holds where expected
    assert classifications["structural NNF (from formula)"] == ["NNF"]
    assert classifications["DNNF (hand-built)"][-1] == "DNNF"
    assert "Decision-DNNF" in classifications["Decision-DNNF (compiler)"]
    assert "sd-DNNF" in classifications["smoothed d-DNNF"]
    assert "SDD" in classifications["SDD export"]
    assert "OBDD" in classifications["OBDD export"]
    # every language list starts at NNF and is a chain
    for languages in classifications.values():
        assert languages[0] == "NNF"
