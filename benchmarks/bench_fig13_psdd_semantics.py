"""FIG13/14 — PSDD semantics on the paper's running circuit.

Regenerates the Fig 14 table: a probability for each of the 9
satisfying inputs summing to exactly 1, probability 0 for each of the
7 unsatisfying inputs, and the compositional or-gate distributions.
"""

from repro.logic import VarMap, iter_assignments, parse, to_cnf
from repro.psdd import learn_parameters, psdd_from_sdd, support_size
from repro.sdd import compile_cnf_sdd

CONSTRAINT = "(P | L) & (A -> P) & (K -> (A | L))"


def _build_and_tabulate():
    vm = VarMap()
    formula = parse(CONSTRAINT, vm)
    cnf = to_cnf(formula)
    sdd, _manager = compile_cnf_sdd(cnf)
    psdd = psdd_from_sdd(sdd)
    # quantify with the Fig 15 data so the parameters are meaningful
    P, L, A, K = (vm.index(n) for n in "PLAK")
    data = [({L: 1, K: 1, P: 1, A: 1}, 6), ({L: 1, K: 1, P: 1, A: 0}, 10),
            ({L: 1, K: 0, P: 1, A: 1}, 4), ({L: 1, K: 0, P: 1, A: 0}, 54),
            ({L: 0, K: 1, P: 1, A: 1}, 8), ({L: 0, K: 0, P: 1, A: 1}, 4),
            ({L: 0, K: 0, P: 1, A: 0}, 114),
            ({L: 1, K: 1, P: 0, A: 0}, 10), ({L: 1, K: 0, P: 0, A: 0}, 30)]
    data = [({v: bool(s) for v, s in row.items()}, c) for row, c in data]
    learn_parameters(psdd, data)
    rows = []
    for assignment in iter_assignments([1, 2, 3, 4]):
        rows.append((tuple(int(assignment[v]) for v in (1, 2, 3, 4)),
                     formula.evaluate(assignment),
                     psdd.probability(assignment)))
    gate_distributions = [
        [round(theta, 4) for _p, _s, theta in node.elements]
        for node in psdd.descendants() if node.is_decision
        and len(node.elements) > 1]
    return vm, psdd, rows, gate_distributions


def test_fig13_psdd_semantics(benchmark, table):
    vm, psdd, rows, gates = benchmark(_build_and_tabulate)

    names = [vm.name(v) for v in (1, 2, 3, 4)]
    table("Fig 14: the PSDD distribution over all 16 inputs",
          [[" ".join(f"{n}={s}" for n, s in zip(names, state)),
            "sat" if sat else "unsat", f"{p:.4f}"]
           for state, sat, p in rows],
          headers=["input", "circuit", "Pr"])
    table("Fig 13: or-gate local distributions (each sums to 1)",
          [[str(g), f"{sum(g):.4f}"] for g in gates],
          headers=["thetas", "sum"])

    assert support_size(psdd) == 9
    total = sum(p for _s, _sat, p in rows)
    assert abs(total - 1.0) < 1e-12
    for _state, sat, p in rows:
        if not sat:
            assert p == 0.0
        else:
            assert p >= 0.0
    for gate in gates:
        assert abs(sum(gate) - 1.0) < 1e-9
    assert sum(1 for _s, sat, _p in rows if sat) == 9
