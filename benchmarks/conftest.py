"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark prints the rows/series of the paper artifact it
regenerates (run with ``pytest benchmarks/ --benchmark-only -s`` to see
them) and asserts the qualitative shape the paper reports.
"""

import pytest


def print_table(title, rows, headers=None):
    """Render a small aligned table to stdout."""
    print(f"\n## {title}")
    if headers:
        rows = [headers] + [["-" * len(h) for h in headers]] + \
            [list(map(str, row)) for row in rows]
    else:
        rows = [list(map(str, row)) for row in rows]
    widths = [max(len(str(row[i])) for row in rows)
              for i in range(len(rows[0]))]
    for row in rows:
        print("  " + "  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))


@pytest.fixture
def table():
    return print_table
