"""ABL3 — tractability across the probabilistic-circuit family
(Section 4: ACs [25], SPNs [68], PSDDs [44]; comparison in [13, 76]).

All three families answer MAR in linear time.  The separating query is
MPE: on deterministic circuits (ACs/PSDDs) the max-product pass is
exact; on non-deterministic SPNs it maximises over induced trees and
can return suboptimal assignments.  We learn an SPN and a PSDD on the
same data and measure both model quality and the MPE gap.
"""

import math
import random

from repro.logic import iter_assignments
from repro.pcircuits import learn_spn, psdd_to_circuit
from repro.psdd import learn_parameters, psdd_from_sdd
from repro.sdd import SddManager
from repro.vtree import balanced_vtree

VARIABLES = [1, 2, 3, 4, 5]


def _rows(n, rng):
    rows = []
    for _ in range(n):
        a = rng.random() < 0.65
        b = a if rng.random() < 0.85 else not a
        c = rng.random() < 0.4
        d = c if rng.random() < 0.75 else not c
        e = (a or c) if rng.random() < 0.7 else not (a or c)
        rows.append({1: a, 2: b, 3: c, 4: d, 5: e})
    return rows


def _experiment():
    rng = random.Random(33)
    train = _rows(800, rng)
    test = _rows(400, rng)

    spn = learn_spn(train, VARIABLES, rng=random.Random(5))
    manager = SddManager(balanced_vtree(VARIABLES))
    psdd = psdd_from_sdd(manager.true)  # unconstrained support
    counts = {}
    for row in train:
        key = tuple(sorted(row.items()))
        counts[key] = counts.get(key, 0) + 1
    learn_parameters(psdd, [(dict(k), c) for k, c in counts.items()],
                     alpha=1.0)
    psdd_circuit = psdd_to_circuit(psdd)

    def mean_ll(model):
        return sum(math.log(model(r)) for r in test) / len(test)

    rows = []
    mpe_gaps = {}
    for name, circuit in (("SPN (LearnSPN)", spn),
                          ("PSDD-as-circuit", psdd_circuit)):
        value, assignment = circuit.max_product()
        decoded = circuit.probability(assignment)
        true_max = max(circuit.probability(a)
                       for a in iter_assignments(VARIABLES))
        deterministic = circuit.is_deterministic()
        mpe_gaps[name] = (value, decoded, true_max, deterministic)
        rows.append((name, circuit.size(),
                     f"{mean_ll(circuit.probability):.4f}",
                     deterministic, f"{value:.5f}", f"{decoded:.5f}",
                     f"{true_max:.5f}"))
    return rows, mpe_gaps


def test_abl3_circuit_families(benchmark, table):
    rows, mpe_gaps = benchmark.pedantic(_experiment, rounds=1,
                                        iterations=1)

    table("ABL3: SPN vs PSDD on the same data (5 binary variables)",
          rows,
          headers=["circuit", "size", "test LL/ex", "deterministic",
                   "max-product value", "decoded Pr", "true max Pr"])

    spn_value, spn_decoded, spn_max, spn_det = mpe_gaps["SPN (LearnSPN)"]
    psdd_value, psdd_decoded, psdd_max, psdd_det = \
        mpe_gaps["PSDD-as-circuit"]
    # the structural split: SPN not deterministic, PSDD deterministic
    assert not spn_det
    assert psdd_det
    # max-product is exact on the deterministic circuit ...
    assert psdd_value == psdd_max == psdd_decoded
    # ... and only a lower bound on the SPN
    assert spn_value <= spn_max + 1e-12
    assert spn_decoded >= spn_value - 1e-12
    # both are proper distributions
    for name, circuit_size, _ll, _det, _v, _d, _t in rows:
        assert circuit_size > 0
