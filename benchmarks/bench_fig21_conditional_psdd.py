"""FIG21/24 — the paper's conditional PSDD and its two distributions.

Regenerates the right side of Fig 21: the conditional distribution
table for parent state a0,b0 (structured space x0 ∨ y0) and for the
remaining parent states (space x1 ∨ y1), plus the Fig 24 selection
behaviour.
"""

from repro.condpsdd import ConditionalPsdd
from repro.psdd import support_size
from repro.sdd import SddManager
from repro.vtree import balanced_vtree

A, B, X, Y = 1, 2, 3, 4


def _build_fig21():
    parent_manager = SddManager(balanced_vtree([A, B]))
    child_manager = SddManager(balanced_vtree([X, Y]))
    gate_a0b0 = parent_manager.term([-A, -B])
    gate_rest = parent_manager.negate(gate_a0b0)
    conditional = ConditionalPsdd(
        [(gate_a0b0, child_manager.clause([-X, -Y])),
         (gate_rest, child_manager.clause([X, Y]))],
        parent_manager, child_manager)
    data = [
        ({A: False, B: False}, {X: False, Y: False}, 4),
        ({A: False, B: False}, {X: False, Y: True}, 3),
        ({A: False, B: False}, {X: True, Y: False}, 1),
        ({A: True, B: False}, {X: True, Y: True}, 5),
        ({A: False, B: True}, {X: True, Y: False}, 2),
        ({A: True, B: True}, {X: False, Y: True}, 1),
    ]
    conditional.fit(data)
    tables = {}
    for label, parent in (("a0,b0", {A: False, B: False}),
                          ("a1,b0", {A: True, B: False}),
                          ("a0,b1", {A: False, B: True}),
                          ("a1,b1", {A: True, B: True})):
        rows = []
        for x in (False, True):
            for y in (False, True):
                rows.append((int(x), int(y),
                             conditional.probability({X: x, Y: y},
                                                     parent)))
        tables[label] = rows
    return conditional, tables


def test_fig21_conditional_psdd(benchmark, table):
    conditional, tables = benchmark(_build_fig21)

    for label, rows in tables.items():
        table(f"Fig 21/24: Pr(X, Y | {label})",
              [[x, y, f"{p:.4f}"] for x, y, p in rows],
              headers=["x", "y", "Pr"])

    # Fig 24: a0,b0 selects one distribution; all other states share
    # the other — so the three non-a0b0 tables must be identical
    assert tables["a1,b0"] == tables["a0,b1"] == tables["a1,b1"]
    assert tables["a0,b0"] != tables["a1,b0"]
    # structured spaces: x1,y1 impossible under a0,b0; x0,y0 impossible
    # elsewhere
    assert tables["a0,b0"][3][2] == 0.0
    assert tables["a1,b1"][0][2] == 0.0
    # each conditional distribution is normalized
    for rows in tables.values():
        assert abs(sum(p for _x, _y, p in rows) - 1.0) < 1e-9
    # both context spaces have 3 of the 4 assignments
    assert all(support_size(p) == 3 for p in conditional.psdds)
