"""FIG22 (with Figs 18–20) — hierarchical vs flat map compilation.

The paper's point: hierarchical maps scale route compilation (San
Francisco's 10,500 edges became an 8.9M-edge PSDD).  At our synthetic
scale we regenerate the *shape*: as maps grow, the hierarchical
representation's size grows more slowly than the flat PSDD over the
same (hierarchical) route space, while representing the identical
distribution.
"""

import random

from repro.condpsdd import HierarchicalMap, NestedHierarchicalMap
from repro.psdd import psdd_from_sdd
from repro.sdd import SddManager, compile_terms_sdd
from repro.spaces import grid_map
from repro.vtree import balanced_vtree


def _compare(rows_n, cols_n):
    gm = grid_map(rows_n, cols_n)
    split = cols_n // 2
    regions = {"west": [(r, c) for r in range(rows_n)
                        for c in range(split)],
               "east": [(r, c) for r in range(rows_n)
                        for c in range(split, cols_n)]}
    source, destination = (0, 0), (rows_n - 1, cols_n - 1)
    hm = HierarchicalMap(gm, regions, source, destination)
    # flat model over the SAME route space, for a fair size comparison
    terms = []
    for route in hm.routes:
        assignment = gm.route_assignment(route)
        terms.append([v if value else -v
                      for v, value in sorted(assignment.items())])
    manager = SddManager(balanced_vtree(gm.variables()))
    flat_sdd = compile_terms_sdd(terms, manager)
    flat = psdd_from_sdd(flat_sdd)
    return gm, hm, flat


def _experiment():
    size_rows = []
    for dims in ((2, 4), (3, 4), (3, 6)):
        gm, hm, flat = _compare(*dims)
        size_rows.append((f"{dims[0]}x{dims[1]}", gm.num_edges,
                          len(hm.routes), flat.size(), hm.size()))
    # agreement of the two representations on a learned distribution
    gm, hm, flat = _compare(3, 4)
    rng = random.Random(22)
    trajectories = [hm.routes[rng.randrange(len(hm.routes))]
                    for _ in range(400)]
    hm.fit(trajectories, alpha=0.1)
    total_mass = sum(hm.route_probability(route) for route in hm.routes)

    # the Fig 18 three-level structure on the largest map
    gm3 = grid_map(3, 6)
    nested = NestedHierarchicalMap(gm3, {
        "west": {
            "northwest": [(r, c) for r in range(2) for c in range(3)],
            "southwest": [(2, c) for c in range(3)],
        },
        "east": [(r, c) for r in range(3) for c in range(3, 6)],
    }, (0, 0), (2, 5))
    nested_trajs = [nested.routes[rng.randrange(len(nested.routes))]
                    for _ in range(300)]
    nested.fit(nested_trajs, alpha=0.05)
    nested_mass = sum(nested.route_probability(r)
                      for r in nested.routes)
    nested_stats = (len(nested.routes), nested.size(), nested_mass)
    return size_rows, total_mass, nested_stats


def test_fig22_hierarchical_map(benchmark, table):
    size_rows, total_mass, nested_stats = benchmark.pedantic(
        _experiment, rounds=1, iterations=1)

    table("Figs 18-22: hierarchical vs flat compilation",
          [[grid, edges, routes, flat, hier,
            f"{flat / hier:.2f}x"]
           for grid, edges, routes, flat, hier in size_rows],
          headers=["grid", "edges", "routes", "flat PSDD size",
                   "hierarchical size", "flat/hier"])
    print(f"\n  hierarchical distribution total mass over its route "
          f"space: {total_mass:.6f}")
    nested_routes, nested_size, nested_mass = nested_stats
    table("Fig 18: three-level nesting (west = {northwest, southwest})",
          [["3x6 grid", nested_routes, nested_size,
            f"{nested_mass:.6f}"]],
          headers=["map", "routes", "circuit size", "total mass"])

    # shape: the hierarchical representation wins on the larger maps and
    # the advantage grows with map size
    ratios = [flat / hier for _g, _e, _r, flat, hier in size_rows]
    assert ratios[-1] > 1.0
    assert ratios[-1] >= ratios[0]
    assert abs(total_mass - 1.0) < 1e-9
    assert abs(nested_mass - 1.0) < 1e-9
