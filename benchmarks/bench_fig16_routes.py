"""FIG16 — encoding and learning route distributions on grid maps.

Regenerates: valid-route counts per grid size, circuit sizes, the
degree-relaxation gap (why dedicated route compilation exists), and a
route-learning accuracy check (learned edge marginals match the
generating distribution).
"""

import random

from repro.sat import count_models
from repro.sdd import model_count
from repro.spaces import (RouteModel, degree_relaxation_cnf,
                          grid_map, route_space_sdd)


def _route_experiment():
    rows = []
    for rows_n, cols_n in ((2, 2), (2, 3), (3, 3), (3, 4)):
        gm = grid_map(rows_n, cols_n)
        source, destination = (0, 0), (rows_n - 1, cols_n - 1)
        sdd, _manager, routes = route_space_sdd(gm, source, destination)
        relaxation = count_models(degree_relaxation_cnf(
            gm, source, destination))
        rows.append((f"{rows_n}x{cols_n}", gm.num_edges, len(routes),
                     model_count(sdd), relaxation, sdd.size()))

    # learning: plant a distribution, learn from samples, compare
    gm = grid_map(3, 3)
    model = RouteModel(gm, (0, 0), (2, 2))
    rng = random.Random(16)
    weights = [3 if route[1] == (0, 1) else 1 for route in model.routes]
    trajectories = rng.choices(model.routes, weights=weights, k=2000)
    model.fit(trajectories, alpha=0.0)
    total = sum(weights)
    planted_edge = sum(w for route, w in zip(model.routes, weights)
                       if route[1] == (0, 1)) / total
    learned_edge = model.edge_marginal((0, 0), (0, 1))
    empirical_edge = sum(1 for t in trajectories
                         if t[1] == (0, 1)) / len(trajectories)
    return rows, planted_edge, learned_edge, empirical_edge


def test_fig16_routes(benchmark, table):
    rows, planted, learned, empirical = benchmark.pedantic(
        _route_experiment, rounds=1, iterations=1)

    table("Fig 16: route spaces on grids (corner to corner)",
          [[grid, edges, routes, sdd_models, relax, size]
           for grid, edges, routes, sdd_models, relax, size in rows],
          headers=["grid", "edges", "simple routes", "SDD models",
                   "degree-CNF models", "SDD size"])
    table("route learning on the 3x3 grid",
          [["Pr(first street is (0,0)-(0,1))", f"{planted:.3f}",
            f"{empirical:.3f}", f"{learned:.3f}"]],
          headers=["edge marginal", "planted", "empirical", "learned"])

    for _grid, _edges, routes, sdd_models, relax, _size in rows:
        assert sdd_models == routes           # SDD == exact space
        assert relax >= routes                # relaxation is a superset
    assert rows[2][2] == 12                   # 3x3 corner-to-corner
    # the 3x3 relaxation admits spurious cycle models
    assert rows[2][4] > rows[2][2]
    assert abs(learned - empirical) < 1e-9    # exact ML on full support
    assert abs(learned - planted) < 0.05
