"""FIG28 — explaining the decisions of a neural network on digit images.

The paper: a CNN classifying 0 vs 1 on 16x16 images (98.74% accurate)
compiled into a circuit; one correctly-classified image of digit 0 has
a sufficient reason of only 3 of 256 pixels.  We regenerate the shape
at 5x5 (see DESIGN.md substitutions): train a binarized net, compile it
exactly, and find a sufficient reason that pins only a small fraction
of the pixels.
"""

import random

from repro.classifiers import (BinarizedNeuralNetwork, compile_bnn,
                               digit_dataset, digit_template,
                               render_image)
from repro.explain import (decision_sticks_batch,
                           is_sufficient_reason,
                           minimal_sufficient_reason,
                           smallest_sufficient_reason)
from repro.obdd import model_count

SIZE = 5


def _experiment():
    rng = random.Random(28)
    instances, labels = digit_dataset(0, 1, 120, size=SIZE, noise=0.06,
                                      rng=rng)
    split = int(0.7 * len(instances))
    network = BinarizedNeuralNetwork.train(instances[:split],
                                           labels[:split], hidden=(4,),
                                           seed=1, passes=4)
    accuracy = network.accuracy(instances[split:], labels[split:])
    circuit, _layers = compile_bnn(network)
    # one batched circuit evaluation against one batched forward pass
    agreement = bool((circuit.evaluate_batch(instances) ==
                      network.forward_batch(instances)).all())

    image = digit_template(0, SIZE)
    classified_zero = circuit.evaluate(image)
    # counterfactual sweep: which single-pixel flips leave the decision
    # unchanged? — all 25 probes in one batched evaluation
    pixels_list = sorted(image)
    sticks = decision_sticks_batch(circuit, image,
                                   [[p] for p in pixels_list])
    robust_pixels = sum(sticks)
    reason = smallest_sufficient_reason(circuit, image, max_size=4)
    if reason is None:
        # random-restart greedy minimisation: the drop order matters
        order_rng = random.Random(7)
        variables = sorted(image)
        best = minimal_sufficient_reason(circuit, image)
        for _ in range(40):
            order = list(variables)
            order_rng.shuffle(order)
            candidate = minimal_sufficient_reason(circuit, image,
                                                  prefer_order=order)
            if len(candidate) < len(best):
                best = candidate
        reason = best
    positives = model_count(circuit)
    return (network, accuracy, agreement, circuit, image,
            classified_zero, reason, positives, robust_pixels)


def test_fig28_digit_explanations(benchmark, table):
    (network, accuracy, agreement, circuit, image, classified_zero,
     reason, positives, robust_pixels) = benchmark.pedantic(
         _experiment, rounds=1, iterations=1)

    pixels = SIZE * SIZE
    table("Fig 28: explaining a digit classifier "
          f"({SIZE}x{SIZE}; paper uses 16x16)",
          [["test accuracy", f"{accuracy:.2%}", "98.74% (paper)"],
           ["circuit/net agreement", agreement, "exact by construction"],
           ["compiled OBDD size", circuit.size(), "-"],
           [f"inputs classified 'digit 0'", positives,
            f"of {2 ** pixels}"],
           ["sufficient reason size", f"{len(reason)} of {pixels} pixels",
            "3 of 256 (paper)"],
           ["single-pixel-flip robust", f"{robust_pixels} of {pixels}",
            "-"]],
          headers=["metric", "ours", "paper"])
    print("\n  the image and its pinned pixels (*):")
    highlight = {v: False for v in image}
    for lit in reason:
        highlight[abs(lit)] = True
    img_lines = render_image(image, SIZE).splitlines()
    pin_lines = render_image(highlight, SIZE, on="*").splitlines()
    for a, b in zip(img_lines, pin_lines):
        print(f"    {a}    {b}")

    assert accuracy >= 0.9
    assert agreement
    assert classified_zero  # the clean digit-0 image is classified 0
    # the paper's point: far fewer pixels than the input dimension
    # suffice (3/256 ≈ 1% for a 16x16 CNN; our 5x5 space is much
    # denser, so the fraction is larger but still well under half)
    assert len(reason) <= pixels // 2
    assert is_sufficient_reason(circuit, image, reason,
                                check_minimal=False)
