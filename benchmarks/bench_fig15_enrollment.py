"""FIG15 — learning with vs without symbolic knowledge.

The paper's argument for using knowledge: it removes impossible
states, needs less data, and yields more robust estimates.  We compare
the constraint-aware PSDD against an unconstrained baseline (PSDD over
the full space, i.e. no knowledge) on (a) training-set likelihood per
parameter, (b) mass wasted on impossible combinations, and (c) test
log-likelihood when trained on small samples.
"""

import random

from repro.logic import VarMap, iter_assignments, parse, to_cnf
from repro.psdd import (learn_parameters, log_likelihood, psdd_from_sdd,
                        sample_dataset)
from repro.sdd import compile_cnf_sdd

CONSTRAINT = "(P | L) & (A -> P) & (K -> (A | L))"


def _dataset(vm):
    P, L, A, K = (vm.index(n) for n in "PLAK")
    rows = [({L: 1, K: 1, P: 1, A: 1}, 6), ({L: 1, K: 1, P: 1, A: 0}, 10),
            ({L: 1, K: 0, P: 1, A: 1}, 4), ({L: 1, K: 0, P: 1, A: 0}, 54),
            ({L: 0, K: 1, P: 1, A: 1}, 8), ({L: 0, K: 0, P: 1, A: 1}, 4),
            ({L: 0, K: 0, P: 1, A: 0}, 114),
            ({L: 1, K: 1, P: 0, A: 0}, 10),
            ({L: 1, K: 0, P: 0, A: 0}, 30)]
    return [({v: bool(s) for v, s in row.items()}, c) for row, c in rows]


def _experiment():
    vm = VarMap()
    formula = parse(CONSTRAINT, vm)
    cnf = to_cnf(formula)
    data = _dataset(vm)

    constrained_sdd, manager = compile_cnf_sdd(cnf)
    constrained = psdd_from_sdd(constrained_sdd)
    unconstrained = psdd_from_sdd(manager.true)
    learn_parameters(constrained, data, alpha=1.0)
    learn_parameters(unconstrained, data, alpha=1.0)

    constrained_ll = log_likelihood(constrained, data)
    unconstrained_ll = log_likelihood(unconstrained, data)
    wasted = sum(unconstrained.probability(a)
                 for a in iter_assignments([1, 2, 3, 4])
                 if not formula.evaluate(a))

    # small-sample robustness: train on n samples of the "truth" (the
    # constrained ML fit on all data), evaluate on a large test set
    rng = random.Random(15)
    truth = constrained
    test = sample_dataset(truth, 2000, rng)
    small_sample_rows = []
    for n in (10, 25, 50, 100):
        train = sample_dataset(truth, n, rng)
        with_knowledge = psdd_from_sdd(constrained_sdd)
        learn_parameters(with_knowledge, train, alpha=1.0)
        without = psdd_from_sdd(manager.true)
        learn_parameters(without, train, alpha=1.0)
        small_sample_rows.append(
            (n, log_likelihood(with_knowledge, test) / 2000,
             log_likelihood(without, test) / 2000))
    return {
        "params": (constrained.parameter_count(),
                   unconstrained.parameter_count()),
        "train_ll": (constrained_ll, unconstrained_ll),
        "wasted": wasted,
        "curve": small_sample_rows,
    }


def test_fig15_learning_with_knowledge(benchmark, table):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    cp, up = results["params"]
    cll, ull = results["train_ll"]
    table("Fig 15: constraint-aware PSDD vs no-knowledge baseline",
          [["free parameters", cp, up],
           ["support size", 9, 16],
           ["train log-likelihood", f"{cll:.2f}", f"{ull:.2f}"],
           ["mass on impossible states", "0.0000",
            f"{results['wasted']:.4f}"]],
          headers=["metric", "with knowledge", "without"])
    table("test log-likelihood per example vs training-set size",
          [[n, f"{with_k:.4f}", f"{without:.4f}"]
           for n, with_k, without in results["curve"]],
          headers=["n train", "with knowledge", "without"])

    # shape: knowledge wastes no mass, the baseline wastes some; with
    # small data the constrained model generalizes at least as well
    assert results["wasted"] > 0.01
    assert cll >= ull  # knowledge can only help the fit
    wins = sum(1 for _n, a, b in results["curve"] if a >= b - 1e-9)
    assert wins >= len(results["curve"]) - 1
