"""ABL1 — vtree sensitivity and the SDD/OBDD relationship (Section 3).

The paper: "The size of an SDD can be very sensitive to the underlying
vtree, ranging from linear to exponential" and "SDDs subsume OBDDs
[and] are exponentially more succinct".  We compile the same formulas
under balanced / right-linear / random vtrees and against OBDDs, and
measure the spread.

The separating family is the classic ⋀ᵢ (x_i ↔ y_i) with interleaved
variable pairing: a balanced vtree pairing each x_i with its y_i keeps
the SDD linear, while orders/vtrees separating the two halves blow up.
"""

import random

from repro.logic import Cnf
from repro.obdd import compile_cnf_obdd
from repro.sdd import compile_cnf_sdd, model_count
from repro.vtree import (Vtree, random_vtree,
                         right_linear_vtree)


def _pair_cnf(n):
    """⋀ᵢ (x_i ↔ y_i) with x_i = 2i-1, y_i = 2i."""
    clauses = []
    for i in range(1, n + 1):
        x, y = 2 * i - 1, 2 * i
        clauses.extend([(-x, y), (x, -y)])
    return Cnf(clauses, num_vars=2 * n)


def _paired_vtree(n):
    """Balanced over pair nodes (x_i, y_i) — the good structure."""
    pairs = [Vtree.internal(Vtree.leaf(2 * i - 1), Vtree.leaf(2 * i))
             for i in range(1, n + 1)]

    def build(lo, hi):
        if hi - lo == 1:
            return pairs[lo]
        mid = (lo + hi + 1) // 2
        return Vtree.internal(build(lo, mid), build(mid, hi))

    return build(0, n)


def _bad_order(n):
    """All x's before all y's — the separating order."""
    return [2 * i - 1 for i in range(1, n + 1)] + \
        [2 * i for i in range(1, n + 1)]


def _experiment():
    rng = random.Random(1)
    rows = []
    for n in (3, 4, 5, 6, 7):
        cnf = _pair_cnf(n)
        good, _m1 = compile_cnf_sdd(cnf, vtree=_paired_vtree(n))
        bad, _m2 = compile_cnf_sdd(
            cnf, vtree=right_linear_vtree(_bad_order(n)))
        rand, _m3 = compile_cnf_sdd(
            cnf, vtree=random_vtree(list(range(1, 2 * n + 1)), rng=rng))
        obdd_good, _m4 = compile_cnf_obdd(cnf)  # interleaved order
        from repro.obdd import ObddManager
        manager_bad = ObddManager(_bad_order(n))
        obdd_bad, _m5 = compile_cnf_obdd(cnf, manager=manager_bad)
        assert model_count(good) == model_count(bad) == 2 ** n
        rows.append((n, good.size(), bad.size(), rand.size(),
                     obdd_good.size(), obdd_bad.size()))
    return rows


def test_abl1_vtree_sensitivity(benchmark, table):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    table("ABL1: circuit size of ⋀(x_i ↔ y_i) under different structures",
          [[n, good, bad, rand, og, ob]
           for n, good, bad, rand, og, ob in rows],
          headers=["n pairs", "SDD (paired vtree)",
                   "SDD (separated right-linear)", "SDD (random)",
                   "OBDD (interleaved)", "OBDD (separated)"])
    growth_good = rows[-1][1] / rows[0][1]
    growth_bad = rows[-1][2] / rows[0][2]
    print(f"\n  size growth from n=3 to n=7: paired vtree "
          f"{growth_good:.1f}x vs separated {growth_bad:.1f}x")

    # shape: the good vtree grows linearly, the separated one
    # exponentially; OBDDs show the same split on variable orders
    assert rows[-1][1] < rows[-1][2]
    assert growth_bad > 4 * growth_good
    assert rows[-1][4] < rows[-1][5]
    # with the right structure, size is linear in n (≤ c·n)
    assert rows[-1][1] <= 10 * 7
