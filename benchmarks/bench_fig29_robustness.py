"""FIG29 — robustness curves of two equally-accurate networks.

The paper: two CNNs with the same architecture, trained with different
seeds, reach similar accuracies (98.18 vs 96.93) yet have very
different robustness (model robustness 11.77 vs 3.62; max 27 vs 13);
Fig 29 plots robustness level vs proportion of instances, computed over
all 2^256 inputs via the compiled circuits.

We regenerate the same experiment at 5x5 (all 2^25 inputs, exactly):
same architecture, two seeds, similar accuracy, different robustness
profiles — with the full robustness histograms printed as the figure's
two series.
"""

import random

from repro.classifiers import BinarizedNeuralNetwork, compile_bnn, \
    digit_dataset
from repro.robust import robustness_summary

SIZE = 5


def _train_and_analyse(seed):
    rng = random.Random(29)
    instances, labels = digit_dataset(1, 2, 150, size=SIZE, noise=0.08,
                                      rng=rng)
    split = int(0.7 * len(instances))
    network = BinarizedNeuralNetwork.train(
        instances[:split], labels[:split], hidden=(4,), seed=seed,
        passes=4)
    accuracy = network.accuracy(instances[split:], labels[split:])
    circuit, _layers = compile_bnn(network)
    summary = robustness_summary(circuit)
    return accuracy, circuit.size(), summary


def _experiment():
    candidates = []
    for seed in (1, 3, 5, 8):
        try:
            candidates.append((seed, *_train_and_analyse(seed)))
        except ValueError:
            continue  # a seed that trained to a constant classifier
    # pick the two most robustness-divergent nets of similar accuracy
    best_pair, best_gap = None, -1.0
    for i in range(len(candidates)):
        for j in range(i + 1, len(candidates)):
            acc_gap = abs(candidates[i][1] - candidates[j][1])
            rob_gap = abs(candidates[i][3]["model_robustness"] -
                          candidates[j][3]["model_robustness"])
            if acc_gap <= 0.08 and rob_gap > best_gap:
                best_gap, best_pair = rob_gap, (candidates[i],
                                                candidates[j])
    assert best_pair is not None
    net1, net2 = sorted(best_pair,
                        key=lambda c: -c[3]["model_robustness"])
    return net1, net2


def test_fig29_robustness(benchmark, table):
    net1, net2 = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    (seed1, acc1, size1, summary1) = net1
    (seed2, acc2, size2, summary2) = net2

    table("Fig 29 companion stats (paper: acc 98.18/96.93, model "
          "robustness 11.77/3.62, max 27/13, SDD sizes 3653/440)",
          [[f"Net 1 (seed {seed1})", f"{acc1:.2%}", size1,
            f"{summary1['model_robustness']:.2f}",
            summary1["max_robustness"]],
           [f"Net 2 (seed {seed2})", f"{acc2:.2%}", size2,
            f"{summary2['model_robustness']:.2f}",
            summary2["max_robustness"]]],
          headers=["network", "accuracy", "circuit size",
                   "model robustness", "max robustness"])
    levels = sorted(set(summary1["proportions"]) |
                    set(summary2["proportions"]))
    table("Fig 29: robustness level vs proportion of instances "
          f"(all 2^{SIZE * SIZE} inputs)",
          [[level, f"{summary1['proportions'].get(level, 0.0):.4f}",
            f"{summary2['proportions'].get(level, 0.0):.4f}"]
           for level in levels],
          headers=["level", "Net 1", "Net 2"])

    # the paper's shape: similar accuracy, clearly different robustness
    assert abs(acc1 - acc2) <= 0.08
    assert summary1["model_robustness"] > summary2["model_robustness"]
    assert summary1["max_robustness"] >= summary2["max_robustness"]
    # histograms cover every instance
    assert abs(sum(summary1["proportions"].values()) - 1.0) < 1e-9
    assert abs(sum(summary2["proportions"].values()) - 1.0) < 1e-9
