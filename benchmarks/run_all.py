"""Benchmark driver: figures, engine speed scenarios, regression gate.

Runs every ``bench_*.py`` figure reproduction (each as a pytest
subprocess, timed), then the three engine speed scenarios that the
hot-path layer optimises, each measured *paired* in one process against
its legacy configuration:

* ``sharp_sat`` — exact #SAT on a random 3-CNF: trail-based
  watched-literal counter vs the seed clause-list recursion
  (``ModelCounter(propagator="legacy", cache_mode="exact")``);
* ``dnnf_compile`` — CNF→Decision-DNNF compilation: trail-based
  compiler vs the seed recursion;
* ``repeated_wmc`` — many weighted model counts on one compiled
  circuit: dense-array kernel (:mod:`repro.nnf.kernel`) vs the seed
  recursive queries (:mod:`repro.nnf.queries_legacy`);
* ``batched_wmc`` — the same many-query load answered by **one**
  batched numpy pass (``weighted_model_count_batch``) vs the scalar
  kernel loop;
* ``batched_marginals`` — per-evidence posterior marginals through
  ``WmcPipeline.marginals_batch`` vs the scalar ``marginals`` loop;
* ``psdd_marginals`` — all-variable PSDD marginals by the single
  upward+downward pass vs the legacy per-variable evaluation loop;
* ``classifier_scoring`` — scoring a dataset through the batched
  classifier paths (binarized net + random forest) vs the per-instance
  Python loops;
* ``warm_compile`` — the content-addressed compilation cache
  (:mod:`repro.ir.store`): compiling a CNF served from a warm artifact
  store vs running the search cold.  ``--cache-dir DIR`` persists the
  store across runs (default: a throwaway temp directory); the
  scenario records the store's ``cache_hit_rate``;
* ``anytime_bounds`` — the anytime counter (:mod:`repro.limits`):
  certified lower/upper bounds under growing node budgets, recording
  the bounds-quality-vs-budget curve and checking every interval
  brackets the exact count;
* ``restart_compile`` — the budgeted restart driver vs a single-shot
  compile: the first attempt's budget is sized to fail, and the driver
  must recover by diversifying variable orders with exponential
  backoff;
* ``verify_overhead`` — serve-time certification
  (:mod:`repro.analyze` via the artifact store): warm loads served
  against the memoized ``.cert`` sidecar vs loads forced to re-run
  the property verifiers, plus the one-off certification cost;
* ``codegen_kernel`` — scalar WMC / #SAT through the per-circuit
  generated numpy evaluator (:mod:`repro.ir.codegen`) vs the
  interpreted kernel loops on one large compiled circuit;
* ``warm_mmap`` — warm artifact loads through the memory-mapped
  binary CSR sidecar vs the same loads forced onto the ``.nnf`` text
  parser;
* ``proof_overhead`` — proof-logged compilation
  (``DnnfCompiler(proof=True)``): the same CNFs compiled with and
  without equivalence-trace emission (the acceptance gate wants the
  overhead within 2×), plus the independent checker's replay
  throughput; every trace must come back ``PROVED`` with the exact
  model count;
* ``explain_throughput`` — sufficient-reason enumeration on compiled
  Decision-DNNF (:mod:`repro.explain.implicants`: reasons/sec and
  median inter-reason delay) plus dataset-scale sufficiency
  verification: the two-pass batched kernel check vs one scalar
  ``wmc`` per term.

Every scenario runs under a per-scenario wall-clock budget
(``--scenario-timeout``, ambient :class:`repro.limits.Budget` scope):
a hung scenario fails with ``BudgetExceeded`` and is recorded as a
failure instead of stalling the driver; figure subprocesses get the
same bound via ``subprocess`` timeouts.

Each scenario records wall times, the speedup, the operation counters
of the optimised engine, and an agreement check between both engines'
results.  Everything is serialised to ``BENCH_<timestamp>.json``; if an
earlier ``BENCH_*.json`` exists, the run is compared against the most
recent one and slowdowns beyond the noise threshold are flagged as
regressions.  Regressions make the driver exit non-zero (status 2), so
the gate is scriptable; ``--advisory`` restores the warn-only
behaviour for noisy shared machines.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--quick]
        [--skip-figures] [--output-dir DIR] [--advisory]
        [--cache-dir DIR]

``--quick`` shrinks the scenario instances (and is what the
``tier2_bench``-marked smoke test runs); the committed baseline should
come from a full run.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import random
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.compile.dnnf_compiler import DnnfCompiler  # noqa: E402
from repro.limits import Budget, BudgetExceeded  # noqa: E402
from repro.logic.cnf import Cnf  # noqa: E402
from repro.nnf import queries  # noqa: E402
from repro.sat.counter import ModelCounter  # noqa: E402

SCHEMA = "repro-bench/1"
# wall-time ratio above which a comparison counts as a regression
NOISE_THRESHOLD = 1.25

# scenarios faster than this (seconds) on both sides are below the
# scheduler-noise floor: a few ms of jitter trips any ratio gate, so
# the comparison only judges timings with signal in them
MIN_GATE_SECONDS = 0.05


def random_3cnf(n: int, m: int, seed: int) -> Cnf:
    rng = random.Random(seed)
    clauses = []
    for _ in range(m):
        vs = rng.sample(range(1, n + 1), 3)
        clauses.append(tuple(v * rng.choice([1, -1]) for v in vs))
    return Cnf(clauses, num_vars=n)


# -- figure benchmarks ---------------------------------------------------------
def run_figures(quick: bool, timeout: float | None = None):
    """Run every bench_*.py as its own pytest process, timed.

    ``timeout`` bounds each subprocess; a figure that exceeds it is
    killed and recorded as failed (not hung).
    """
    results = []
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    files = sorted(glob.glob(os.path.join(BENCH_DIR, "bench_*.py")))
    for path in files:
        name = os.path.basename(path)
        start = time.perf_counter()
        timed_out = False
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "pytest", path, "-q",
                 "--no-header"],
                cwd=REPO_ROOT, env=env, capture_output=True, text=True,
                timeout=timeout)
            passed = proc.returncode == 0
        except subprocess.TimeoutExpired:
            proc, passed, timed_out = None, False, True
        elapsed = time.perf_counter() - start
        results.append({
            "file": name,
            "seconds": round(elapsed, 3),
            "passed": passed,
            "timed_out": timed_out,
        })
        status = "ok" if passed else ("TIMEOUT" if timed_out else "FAIL")
        print(f"  figure {name:45s} {elapsed:7.2f}s  {status}")
        if proc is not None and proc.returncode != 0:
            print(proc.stdout[-2000:])
    return results


# -- engine speed scenarios ----------------------------------------------------
def scenario_sharp_sat(quick: bool):
    """#SAT on a random 3-CNF (n>=60 in the full run)."""
    n, m, seed = (50, 130, 42) if quick else (60, 150, 42)
    cnf = random_3cnf(n, m, seed)
    optimized = ModelCounter()
    legacy = ModelCounter(propagator="legacy", cache_mode="exact")
    start = time.perf_counter()
    new_count = optimized.count(cnf)
    mid = time.perf_counter()
    old_count = legacy.count(cnf)
    end = time.perf_counter()
    return {
        "instance": {"n": n, "m": m, "seed": seed, "count": new_count},
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3),
        "agree": new_count == old_count,
        "counters": {
            "optimized": optimized.stats.as_dict(),
            "legacy": legacy.stats.as_dict(),
        },
    }


def scenario_dnnf_compile(quick: bool):
    """CNF -> Decision-DNNF compilation."""
    n, m, seed = (40, 95, 11) if quick else (50, 120, 11)
    cnf = random_3cnf(n, m, seed)
    optimized = DnnfCompiler()
    legacy = DnnfCompiler(propagator="legacy", cache_mode="exact")
    full = range(1, n + 1)
    start = time.perf_counter()
    new_root = optimized.compile(cnf)
    mid = time.perf_counter()
    old_root = legacy.compile(cnf)
    end = time.perf_counter()
    return {
        "instance": {"n": n, "m": m, "seed": seed},
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3),
        "agree": queries.model_count(new_root, full)
        == queries.model_count(old_root, full),
        "circuit_nodes": {"optimized": new_root.node_count(),
                          "legacy": old_root.node_count()},
        "counters": {
            "optimized": optimized.stats.as_dict(),
            "legacy": legacy.stats.as_dict(),
        },
    }


def scenario_repeated_wmc(quick: bool):
    """K weighted model counts on one compiled circuit."""
    n, m, seed = (45, 110, 9)
    vectors = 40 if quick else 200
    cnf = random_3cnf(n, m, seed)
    root = DnnfCompiler().compile(cnf)
    rng = random.Random(1)
    weight_vectors = []
    for _ in range(vectors):
        weights = {}
        for v in range(1, n + 1):
            p = rng.random()
            weights[v], weights[-v] = p, 1.0 - p
        weight_vectors.append(weights)
    from repro.perf import Counter
    stats = Counter()
    start = time.perf_counter()
    new_values = [queries.weighted_model_count(root, w, stats=stats)
                  for w in weight_vectors]
    mid = time.perf_counter()
    # lazy: the legacy baseline stays off the module import path
    # (the legacy-isolation lint rule covers benchmarks too)
    from repro.nnf import queries_legacy
    old_values = [queries_legacy.weighted_model_count(root, w)
                  for w in weight_vectors]
    end = time.perf_counter()
    agree = all(abs(a - b) <= 1e-9 * max(1.0, abs(b))
                for a, b in zip(new_values, old_values))
    return {
        "instance": {"n": n, "m": m, "seed": seed, "vectors": vectors,
                     "circuit_nodes": root.node_count()},
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3),
        "agree": agree,
        "counters": {"optimized": stats.as_dict()},
    }


def scenario_batched_wmc(quick: bool):
    """K weighted model counts: one numpy batch vs the scalar kernel loop."""
    import numpy as np
    n, m, seed = (45, 110, 9)
    vectors = 40 if quick else 200
    cnf = random_3cnf(n, m, seed)
    root = DnnfCompiler().compile(cnf)
    rng = random.Random(1)
    weight_vectors = []
    for _ in range(vectors):
        weights = {}
        for v in range(1, n + 1):
            p = rng.random()
            weights[v], weights[-v] = p, 1.0 - p
        weight_vectors.append(weights)
    from repro.perf import Counter
    stats = Counter()
    queries.weighted_model_count(root, weight_vectors[0])  # build kernel
    start = time.perf_counter()
    batched = queries.weighted_model_count_batch(root, weight_vectors,
                                                 stats=stats)
    mid = time.perf_counter()
    scalar = [queries.weighted_model_count(root, w)
              for w in weight_vectors]
    end = time.perf_counter()
    agree = bool(np.allclose(batched, scalar, rtol=1e-9))
    return {
        "instance": {"n": n, "m": m, "seed": seed, "vectors": vectors,
                     "circuit_nodes": root.node_count()},
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3),
        "agree": agree,
        "counters": {"optimized": stats.as_dict()},
    }


def scenario_batched_marginals(quick: bool):
    """Per-evidence posterior marginals: marginals_batch vs scalar loop."""
    from repro.bayesnet.examples import random_network
    from repro.wmc.pipeline import WmcPipeline
    num_vars = 10 if quick else 12
    vectors = 20 if quick else 200
    network = random_network(num_vars, rng=random.Random(12))
    pipeline = WmcPipeline(network)
    rng = random.Random(3)
    names = network.variables
    evidence = []
    for _ in range(vectors):
        chosen = rng.sample(names, rng.randint(1, 3))
        evidence.append({name: rng.randint(0, 1) for name in chosen})
    pipeline.marginals(evidence[0])  # build the AC + kernel untimed
    start = time.perf_counter()
    batched = pipeline.marginals_batch(evidence)
    mid = time.perf_counter()
    scalar = [pipeline.marginals(e) for e in evidence]
    end = time.perf_counter()
    agree = all(
        abs(batched[j][name][state] - scalar[j][name][state]) <= 1e-9
        for j in range(vectors)
        for name in scalar[j]
        for state in scalar[j][name])
    return {
        "instance": {"num_vars": num_vars, "vectors": vectors,
                     "circuit_nodes": pipeline.circuit.node_count()},
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3),
        "agree": agree,
        "counters": {},
    }


def scenario_psdd_marginals(quick: bool):
    """All-variable PSDD marginals: one derivative pass vs |vars| evals."""
    from repro.psdd import psdd_from_sdd
    from repro.psdd.queries import (variable_marginals,
                                    variable_marginals_legacy)
    from repro.sdd import compile_cnf_sdd
    n, m, seed = (12, 22, 4) if quick else (16, 30, 4)
    repeats = 5 if quick else 20
    cnf = random_3cnf(n, m, seed)
    sdd, _manager = compile_cnf_sdd(cnf)
    psdd = psdd_from_sdd(sdd)
    start = time.perf_counter()
    for _ in range(repeats):
        new = variable_marginals(psdd)
    mid = time.perf_counter()
    for _ in range(repeats):
        old = variable_marginals_legacy(psdd)
    end = time.perf_counter()
    agree = set(new) == set(old) and \
        all(abs(new[v] - old[v]) <= 1e-9 for v in new)
    return {
        "instance": {"n": n, "m": m, "seed": seed, "repeats": repeats,
                     "psdd_size": psdd.size()},
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3),
        "agree": agree,
        "counters": {},
    }


def scenario_classifier_scoring(quick: bool):
    """Dataset scoring: batched classifier passes vs per-instance loops."""
    import numpy as np
    from repro.classifiers import BinarizedNeuralNetwork, RandomForest
    count = 400 if quick else 2000
    rng = random.Random(7)
    num_features = 25
    features = list(range(1, num_features + 1))
    instances = [{v: rng.random() < 0.5 for v in features}
                 for _ in range(count)]
    labels = [sum(x.values()) >= num_features // 2 for x in instances]
    net = BinarizedNeuralNetwork(
        [[[rng.choice((-1, 1)) for _ in features] for _ in range(8)],
         [[rng.choice((-1, 1)) for _ in range(8)]]],
        [[rng.randint(0, 12) - 0.5 for _ in range(8)],
         [rng.randint(0, 4) - 0.5]], features)
    forest = RandomForest.fit(instances[:200], labels[:200],
                              num_trees=7, rng=random.Random(5))
    start = time.perf_counter()
    net_batch = net.forward_batch(instances)
    forest_batch = forest.decide_batch(instances)
    mid = time.perf_counter()
    net_loop = [net.forward(x) for x in instances]
    forest_loop = [forest.decide(x) for x in instances]
    end = time.perf_counter()
    agree = list(net_batch) == net_loop and \
        list(forest_batch) == forest_loop
    return {
        "instance": {"instances": count, "features": num_features,
                     "forest_trees": len(forest.trees)},
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3),
        "agree": agree,
        "counters": {},
    }


#: directory of the warm_compile scenario's artifact store; set from
#: --cache-dir in main(), None means a throwaway temp directory
_CACHE_DIR = None


def scenario_warm_compile(quick: bool):
    """Compilation served from the content-addressed artifact store:
    a warm-cache compile (disk read + .nnf parse + lift) vs running
    the Decision-DNNF search cold."""
    import shutil
    import tempfile
    from repro.ir.store import ArtifactStore
    # near the 3-SAT phase transition (m/n ≈ 4): the search is hard
    # but the compiled circuit stays compact, which is exactly the
    # regime a compilation cache is for
    n, m, seed = (80, 320, 11) if quick else (90, 360, 11)
    cnf = random_3cnf(n, m, seed)
    cache_dir = _CACHE_DIR
    temp = cache_dir is None
    if temp:
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        store = ArtifactStore(cache_dir)
        full = range(1, n + 1)
        start = time.perf_counter()
        cold_root = DnnfCompiler(store=None).compile(cnf)
        mid = time.perf_counter()
        # populate the store (a no-op when --cache-dir is already warm)
        DnnfCompiler(store=store).compile(cnf)
        warm_compiler = DnnfCompiler(store=store)
        warm_start = time.perf_counter()
        warm_root = warm_compiler.compile(cnf)
        end = time.perf_counter()
        return {
            "instance": {"n": n, "m": m, "seed": seed,
                         "persistent_cache": not temp},
            "optimized_s": round(end - warm_start, 4),
            "legacy_s": round(mid - start, 4),
            "speedup": round((mid - start) / (end - warm_start), 3),
            "agree": queries.model_count(warm_root, full)
            == queries.model_count(cold_root, full),
            "cache_hit_rate": round(store.hit_rate(), 3),
            "counters": {"optimized": {
                **warm_compiler.stats.as_dict(),
                **store.stats.as_dict()}},
        }
    finally:
        if temp:
            shutil.rmtree(cache_dir, ignore_errors=True)


def scenario_anytime_bounds(quick: bool):
    """Bounds-quality-vs-budget curve of the anytime counter: certified
    (lower, upper) intervals under growing node budgets, every one
    checked against the exact count; the unbudgeted anytime run must
    come back exact and is timed against ModelCounter."""
    from repro.limits import anytime_count
    n, m, seed = (30, 78, 21) if quick else (40, 104, 21)
    cnf = random_3cnf(n, m, seed)
    counter = ModelCounter()
    start = time.perf_counter()
    exact = counter.count(cnf)
    mid = time.perf_counter()
    full = anytime_count(cnf)
    sound = full.exact and full.lower == exact
    curve = []
    for cap in (1, 4, 16, 64, 256, 1024):
        result = anytime_count(cnf, Budget(max_nodes=cap))
        sound = sound and result.lower <= exact <= result.upper
        curve.append({
            "max_nodes": cap,
            "lower": result.lower,
            "upper": result.upper,
            "exact": result.exact,
            # interval width as a fraction of the trivial 2^n interval:
            # 1.0 means the budget bought nothing, 0.0 a point answer
            "width_fraction": round(
                float(result.upper - result.lower) / float(1 << n), 6),
            "elapsed_s": round(result.elapsed_s, 5),
        })
    return {
        "instance": {"n": n, "m": m, "seed": seed, "count": exact},
        "optimized_s": round(full.elapsed_s, 4),
        "legacy_s": round(mid - start, 4),
        "speedup": round((mid - start) / max(full.elapsed_s, 1e-9), 3),
        "agree": sound,
        "curve": curve,
        "counters": {"optimized": {"decisions": full.decisions}},
    }


def scenario_restart_compile(quick: bool):
    """Restart driver vs single-shot compilation: the first attempt's
    node budget is deliberately sized below the single-shot decision
    count, so the driver must recover through diversified variable
    orders and exponential backoff."""
    from repro.limits import compile_with_restarts
    n, m, seed = (35, 88, 13) if quick else (45, 112, 13)
    cnf = random_3cnf(n, m, seed)
    single = DnnfCompiler(store=None)
    start = time.perf_counter()
    root = single.compile(cnf)
    mid = time.perf_counter()
    cap = max(2, single.decisions // 2)
    result = compile_with_restarts(cnf, max_nodes=cap, attempts=10,
                                   seed=3)
    end = time.perf_counter()
    full = range(1, n + 1)
    return {
        "instance": {"n": n, "m": m, "seed": seed,
                     "initial_max_nodes": cap,
                     "single_shot_decisions": single.decisions},
        "optimized_s": round(end - mid, 4),
        "legacy_s": round(mid - start, 4),
        "speedup": round((mid - start) / max(end - mid, 1e-9), 3),
        "agree": queries.model_count(result.root, full)
        == queries.model_count(root, full),
        "attempts": [{key: record.get(key) for key in
                      ("attempt", "strategy", "outcome")}
                     for record in result.attempts],
        "winner": result.winner,
        "circuit_nodes": {"single_shot": root.node_count(),
                          "restart": result.size},
        "counters": {"optimized": single.stats.as_dict()},
    }


def scenario_verify_overhead(quick: bool):
    """Serve-time certification cost (:mod:`repro.analyze`): warm
    artifact loads answered against the memoized ``.cert`` sidecar
    (digest check + parse) vs the same loads forced to re-run the
    property verifiers, plus the one-off cost of certifying the
    compiled circuit from scratch."""
    import shutil
    import tempfile
    from repro.analyze import certify
    from repro.ir import (FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC,
                          ir_kernel, nnf_to_ir)
    from repro.ir.store import ArtifactStore
    n, m, seed = (60, 240, 13) if quick else (80, 320, 13)
    reps = 20
    cnf = random_3cnf(n, m, seed)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cert-")
    try:
        root = DnnfCompiler(store=None).compile(cnf)
        claimed = FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC
        ir = nnf_to_ir(root, flags=claimed)
        cert_start = time.perf_counter()
        cert = certify(ir, flags=claimed)
        certify_s = time.perf_counter() - cert_start
        covered = cert.verified_mask & claimed == claimed
        key = "verify-overhead"
        store = ArtifactStore(cache_dir)
        store.save_nnf(key, ir)
        # cert-hit loads: digest check + parse, no verification
        warm = ArtifactStore(cache_dir)
        start = time.perf_counter()
        for _ in range(reps):
            hit = warm.load_nnf(key, flags=claimed)
        mid = time.perf_counter()
        # re-verify loads: drop the sidecar so every load re-certifies
        cold = ArtifactStore(cache_dir)
        cold_s = 0.0
        for _ in range(reps):
            cold.path_for(key, "cert").unlink()
            tick = time.perf_counter()
            reverified = cold.load_nnf(key, flags=claimed)
            cold_s += time.perf_counter() - tick
        warm_s = mid - start
        return {
            "instance": {"n": n, "m": m, "seed": seed, "reps": reps,
                         "circuit_nodes": ir.n},
            "optimized_s": round(warm_s, 4),
            "legacy_s": round(cold_s, 4),
            "speedup": round(cold_s / max(warm_s, 1e-9), 3),
            "agree": covered and hit is not None
            and reverified is not None
            and ir_kernel(hit).model_count()
            == ir_kernel(ir).model_count(),
            "certify_s": round(certify_s, 4),
            "certificate": cert.summary(),
            "counters": {"optimized": warm.stats.as_dict(),
                         "legacy": cold.stats.as_dict()},
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def scenario_codegen_kernel(quick: bool):
    """Scalar WMC / #SAT through the generated-code backend
    (:mod:`repro.ir.codegen`) vs the interpreted kernel loops, on one
    large compiled circuit.  The codegen compile happens once, untimed
    (it is cached on the kernel and, with a store, on disk); the timed
    region is pure evaluation.  52 variables keeps exact #SAT inside
    the generated code's float64-exact range (2^52)."""
    n, m, seed = (52, 128, 2)
    reps = 5 if quick else 25
    cnf = random_3cnf(n, m, seed)
    root = DnnfCompiler().compile(cnf)
    from repro.nnf.kernel import get_kernel
    kernel = get_kernel(root)
    rng = random.Random(1)
    weight_vectors = []
    for _ in range(reps):
        weights = {}
        for v in range(1, n + 1):
            p = rng.random()
            weights[v], weights[-v] = p, 1.0 - p
        weight_vectors.append(weights)
    kernel.set_backend("codegen")
    kernel.wmc(weight_vectors[0])  # warm: plan + generate + compile
    start = time.perf_counter()
    codegen_values = [kernel.wmc(w) for w in weight_vectors]
    for _ in range(reps):
        kernel._model_count = None  # defeat the memo: time the pass
        codegen_count = kernel.model_count()
    mid = time.perf_counter()
    codegen_stats = kernel._codegen.stats.as_dict()
    kernel.set_backend("interp")
    interp_values = [kernel.wmc(w) for w in weight_vectors]
    for _ in range(reps):
        kernel._model_count = None
        interp_count = kernel.model_count()
    end = time.perf_counter()
    agree = codegen_count == interp_count and all(
        abs(a - b) <= 1e-9 * max(1.0, abs(b))
        for a, b in zip(codegen_values, interp_values))
    kernel.set_backend(None)
    return {
        "instance": {"n": n, "m": m, "seed": seed, "reps": reps,
                     "circuit_nodes": kernel.n,
                     "count": codegen_count},
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3),
        "agree": agree,
        "counters": {"optimized": codegen_stats},
    }


def scenario_warm_mmap(quick: bool):
    """Warm artifact loads through the memory-mapped binary CSR
    sidecar vs the same loads forced onto the ``.nnf`` text parser
    (sidecar removed).  Both sides pay the identical ``.cert``
    digest check; the difference is decode cost."""
    import shutil
    import tempfile
    from repro.ir import nnf_to_ir
    from repro.ir.store import ArtifactStore
    n, m, seed = (40, 95, 11) if quick else (45, 110, 9)
    reps = 20 if quick else 50
    cnf = random_3cnf(n, m, seed)
    root = DnnfCompiler(store=None).compile(cnf)
    ir = nnf_to_ir(root)
    key = "warm-mmap"
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-mmap-")
    try:
        ArtifactStore(cache_dir).save_nnf(key, ir)
        mmap_store = ArtifactStore(cache_dir)
        start = time.perf_counter()
        for _ in range(reps):
            via_mmap = mmap_store.load_nnf(key)
        mid = time.perf_counter()
        # force the text path: quarantine-free sidecar removal
        os.unlink(mmap_store.path_for(key, "csr"))
        text_store = ArtifactStore(cache_dir)
        for _ in range(reps):
            via_text = text_store.load_nnf(key)
        end = time.perf_counter()
        agree = (via_mmap is not None and via_text is not None
                 and via_mmap.digest() == ir.digest()
                 and mmap_store.stats["artifact_mmap_hits"] == reps)
        return {
            "instance": {"n": n, "m": m, "seed": seed, "reps": reps,
                         "circuit_nodes": ir.n},
            "optimized_s": round(mid - start, 4),
            "legacy_s": round(end - mid, 4),
            "speedup": round((end - mid) / (mid - start), 3),
            "agree": agree,
            "counters": {"optimized": mmap_store.stats.as_dict(),
                         "legacy": text_store.stats.as_dict()},
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def scenario_serve_throughput(quick: bool):
    """The compilation service under a duplicate-heavy mixed burst.

    An in-process :class:`repro.serve.app.Server` (multiprocess
    workers, shared ArtifactStore) takes ``distinct × duplicates``
    concurrent compile requests plus a warm query storm; the load
    generator reports p50/p99 latency, requests/sec, the in-flight +
    store dedup rate, and the workers' warm-cache hit rate.  The
    legacy side performs the same logical work sequentially through
    the facade in this process — what a client doing its own
    compilation would pay.  ``direct_warm_query_ms`` prices one
    single-process warm query (store load + kernel query) for the
    served-latency comparison in the acceptance gate.
    """
    import tempfile
    import shutil
    from repro.ir import facade
    from repro.ir.store import ArtifactStore
    from repro.serve.app import Server, ServerConfig
    from repro.serve.loadgen import random_3cnf_text, run_load
    # client-thread counts sized for small hosts: past ~4 concurrent
    # clients per core, the latency percentiles measure queueing, not
    # the serving path
    if quick:
        distinct, duplicates, queries, threads = 3, 8, 60, 4
        n, m = 20, 50
    else:
        distinct, duplicates, queries, threads = 5, 30, 300, 6
        n, m = 24, 60
    seed = 17
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    try:
        server = Server(ServerConfig(
            port=0, workers=2, cache_dir=cache_dir,
            max_pending=max(64, distinct * duplicates + queries)))
        host, port = server.start()
        try:
            load = run_load(host, port, distinct=distinct,
                            duplicates=duplicates, queries=queries,
                            threads=threads, num_vars=n,
                            num_clauses=m, seed=seed)
        finally:
            server.stop()

        # the same logical work, sequentially, no server: every
        # duplicate pays at least a ticket + store hit, every query a
        # fresh warm load — the "no service" client-side cost
        direct_store = ArtifactStore(cache_dir)
        tickets = [facade.compile_ticket(
            random_3cnf_text(n, m, seed + i)) for i in range(distinct)]
        start = time.perf_counter()
        counts = {}
        for i, ticket in enumerate(tickets):
            for _ in range(duplicates):
                facade.compile_to_store(ticket, direct_store)
        q0 = time.perf_counter()
        for q in range(queries):
            ticket = tickets[q % distinct]
            reply = facade.query_artifact(
                direct_store, ticket.key, "count",
                num_vars=ticket.num_vars)
            counts[ticket.key] = reply["result"]
        legacy_elapsed = time.perf_counter() - start
        direct_warm_query_ms = (time.perf_counter() - q0) / max(
            1, queries) * 1000.0

        # agreement: the served counts match direct evaluation
        agree = load["server_5xx"] == 0 and bool(load["keys"])
        for ticket in tickets:
            if ticket.key in counts and ticket.key in \
                    set(load["keys"].values()):
                served = facade.query_artifact(
                    direct_store, ticket.key, "count",
                    num_vars=ticket.num_vars)
                agree = agree and served["result"] == counts[ticket.key]
        return {
            "instance": {"n": n, "m": m, "seed": seed,
                         "distinct": distinct,
                         "duplicates": duplicates,
                         "queries": queries, "threads": threads},
            "optimized_s": load["wall_s"],
            "legacy_s": round(legacy_elapsed, 4),
            "speedup": round(legacy_elapsed / load["wall_s"], 3)
            if load["wall_s"] else 0.0,
            "agree": agree,
            "p50_ms": load["query_p50_ms"],
            "p99_ms": load["query_p99_ms"],
            "compile_p50_ms": load["compile_p50_ms"],
            "compile_p99_ms": load["compile_p99_ms"],
            "rps": load["rps"],
            "dedup_hit_rate": load["dedup_hit_rate"],
            "warm_hit_rate": load["warm_hit_rate"],
            "direct_warm_query_ms": round(direct_warm_query_ms, 3),
            "counters": {
                "statuses": load["statuses"],
                "server": load.get("server_stats", {}).get(
                    "frontend", {}),
                "dedup": load.get("server_stats", {}).get("dedup", {}),
                "workers": load.get("server_stats", {}).get(
                    "workers", {}),
            },
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def scenario_minimize(quick: bool):
    """The certified optimization pass pipeline on Tseitin-heavy CNFs.

    Random nested formulas are Tseitin-encoded (half the variables are
    auxiliaries), compiled to Decision-DNNF, then pushed through the
    default pass pipeline (const-fold, CSE, Tseitin-auxiliary
    pruning).  Columns: node count before/after (the acceptance gate
    wants >= 30% reduction), repeated-WMC query time on the optimized
    vs the unoptimized circuit (deleted nodes are free speed — query
    cost is linear in circuit size), the one-off pipeline cost, and
    ``agree`` checking the 2^k-corrected counts and WMC against the
    unoptimized circuit on every instance.
    """
    from repro.ir import facade
    from repro.ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC
    from repro.ir.kernel import ir_kernel
    from repro.ir.lower import nnf_to_ir
    from repro.ir.passes import PassManager
    from repro.logic.formula import And, Iff, Lit, Not, Or
    from repro.logic.tseitin import tseitin

    instances = 6 if quick else 12
    depth = 4 if quick else 5
    num_vars = 8 if quick else 10
    vectors = 40 if quick else 150
    rng = random.Random(29)

    def formula(d):
        if d == 0 or rng.random() < 0.25:
            lit = Lit(rng.randint(1, num_vars))
            return Not(lit) if rng.random() < 0.5 else lit
        op = rng.choice([And, Or, Iff])
        if op is Iff:
            return Iff(formula(d - 1), formula(d - 1))
        return op(*[formula(d - 1) for _ in range(rng.randint(2, 3))])

    pairs = []  # (base ir, optimized result, aux count)
    optimize_cost = 0.0
    agree = True
    nodes_before = nodes_after = 0
    for _ in range(instances):
        cnf, _root = tseitin(formula(depth), num_vars=num_vars)
        root = DnnfCompiler(store=None).compile(cnf)
        ir = nnf_to_ir(root,
                       flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
        start = time.perf_counter()
        result = PassManager(aux_vars=cnf.aux_vars).run(ir)
        optimize_cost += time.perf_counter() - start
        nodes_before += result.before_nodes
        nodes_after += result.after_nodes
        base_count = facade.query_ir(
            ir, "count", num_vars=cnf.num_vars)["result"]
        opt_count = facade.query_ir(
            result.ir, "count", num_vars=cnf.num_vars,
            forgotten=result.forgotten)["result"]
        agree = agree and base_count == opt_count
        pairs.append((ir, result, cnf))

    def weight_vector(n, seed):
        vrng = random.Random(seed)
        weights = {}
        for v in range(1, n + 1):
            weights[v] = vrng.uniform(0.2, 1.0)
            weights[-v] = vrng.uniform(0.2, 1.0)
        return weights

    # repeated WMC: the query-many side of pay-once economics — the
    # same weight vectors on the optimized vs the unoptimized circuit
    batches = [
        (ir, result, [weight_vector(cnf.num_vars, i)
                      for i in range(vectors)])
        for ir, result, cnf in pairs]
    start = time.perf_counter()
    opt_values = []
    for ir, result, vecs in batches:
        kernel = ir_kernel(result.ir)
        for weights in vecs:
            opt_values.append(kernel.wmc(weights))
    mid = time.perf_counter()
    base_values = []
    for ir, result, vecs in batches:
        kernel = ir_kernel(ir)
        for weights in vecs:
            base_values.append(kernel.wmc(weights))
    end = time.perf_counter()
    # aux weights are not 1.0 in the timing vectors, so those WMCs are
    # not comparable across base/optimized; spot-check agreement with
    # unit auxiliary weights on the first instance instead
    ir0, result0, cnf0 = pairs[0]
    aux0 = set(cnf0.aux_vars)
    wrng = random.Random(97)
    w0 = {}
    for v in range(1, cnf0.num_vars + 1):
        if v in aux0:
            w0[v] = w0[-v] = 1.0
        else:
            w0[v] = wrng.uniform(0.2, 1.0)
            w0[-v] = wrng.uniform(0.2, 1.0)
    base_wmc = facade.query_ir(ir0, "wmc", weights=w0,
                               num_vars=cnf0.num_vars)["result"]
    opt_wmc = facade.query_ir(result0.ir, "wmc", weights=w0,
                              num_vars=cnf0.num_vars,
                              forgotten=result0.forgotten)["result"]
    agree = agree and abs(base_wmc - opt_wmc) <= 1e-9 * max(
        1.0, abs(base_wmc))

    node_reduction = (1.0 - nodes_after / nodes_before) \
        if nodes_before else 0.0
    return {
        "instance": {"instances": instances, "depth": depth,
                     "num_vars": num_vars, "vectors": vectors,
                     "aux_vars": sum(len(c.aux_vars)
                                     for _, _, c in pairs)},
        "nodes_before": nodes_before,
        "nodes_after": nodes_after,
        "node_reduction": round(node_reduction, 4),
        "optimize_cost_s": round(optimize_cost, 4),
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3)
        if (mid - start) else 0.0,
        "agree": agree,
        "counters": {
            "forgotten": sum(len(r.forgotten) for _, r, _ in pairs),
            "pipelines_changed": sum(1 for _, r, _ in pairs
                                     if r.changed),
        },
    }


def scenario_proof_overhead(quick: bool):
    """Proof-logged compilation vs plain compilation, plus checker
    replay.  Three instances are summed to keep single-run jitter out
    of the overhead ratio; ``optimized_s`` is the proof-logged side
    (the new feature under measurement), ``legacy_s`` the plain
    compile, so ``speedup`` < 1 *is* the emission overhead.  ``agree``
    demands every trace replays to ``PROVED`` with the exact model
    count and the summed overhead stays within the 2× acceptance
    bound."""
    from repro.proof import check_proof
    n, m = (35, 84) if quick else (45, 110)
    seeds = (11, 12, 13)
    instances = [random_3cnf(n, m, seed) for seed in seeds]
    full = range(1, n + 1)

    plain = DnnfCompiler(store=None)
    start = time.perf_counter()
    plain_counts = [queries.model_count(plain.compile(cnf), full)
                    for cnf in instances]
    mid = time.perf_counter()

    logged = DnnfCompiler(store=None, proof=True)
    traces = []
    proof_s = 0.0
    logged_counts = []
    for cnf in instances:
        tick = time.perf_counter()
        root = logged.compile(cnf)
        proof_s += time.perf_counter() - tick
        logged_counts.append(queries.model_count(root, full))
        traces.append(logged.last_proof)

    check_start = time.perf_counter()
    results = [check_proof(cnf.to_dimacs(), trace)
               for cnf, trace in zip(instances, traces)]
    check_s = time.perf_counter() - check_start

    plain_s = mid - start
    overhead = proof_s / max(plain_s, 1e-9)
    steps = sum(result.steps for result in results)
    agree = (all(result.verdict == "PROVED" for result in results)
             and [result.model_count for result in results]
             == plain_counts == logged_counts
             and overhead <= 2.0)
    return {
        "instance": {"n": n, "m": m, "seeds": list(seeds),
                     "trace_lines": sum(t.count("\n") for t in traces)},
        "optimized_s": round(proof_s, 4),
        "legacy_s": round(plain_s, 4),
        "speedup": round(plain_s / max(proof_s, 1e-9), 3),
        "overhead_ratio": round(overhead, 3),
        "check_s": round(check_s, 4),
        "checker_steps_per_s": round(steps / max(check_s, 1e-9), 1),
        "agree": agree,
        "counters": {"optimized": logged.stats.as_dict(),
                     "legacy": plain.stats.as_dict()},
    }


def scenario_explain_throughput(quick: bool):
    """Sufficient-reason enumeration plus dataset-scale verification.

    Random 3-CNFs compile to Decision-DNNF; satisfying instances are
    discovered with one ``evaluate_batch`` sweep per circuit; the
    prime-implicant enumerator (:mod:`repro.explain.implicants`)
    lists every sufficient reason of every decision, timing the
    inter-reason delay.  The enumerated reasons — plus their
    one-literal-short strict subsets, which minimality says must all
    be refuted — are then verified as one dataset: optimized is the
    two-pass batched sufficiency check (``evaluate_batch`` +
    0/1-weight ``wmc_batch``), legacy is the same check one scalar
    ``kernel.wmc`` at a time.  Extra columns: ``reasons_per_s``
    (enumeration throughput) and ``p50_delay_ms`` (median delay
    between consecutive reasons).  ``agree`` wants batch == scalar,
    every reason confirmed sufficient, every strict subset refuted.
    """
    import numpy as np

    from repro.analyze.gate import gate_scope
    from repro.explain.implicants import (check_sufficient_batch,
                                          iter_sufficient_reasons)
    from repro.ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC
    from repro.ir.kernel import ir_kernel
    from repro.ir.lower import nnf_to_ir
    from repro.perf.instrument import Counter

    # few circuits, many decisions each: the verification batch is
    # per circuit, so width (rows per batch) is what the numpy route
    # gets paid for
    circuits = 3 if quick else 5
    n, clause_ratio = (10, 2.4) if quick else (13, 2.3)
    per_circuit = 16 if quick else 56
    samples = 512 if quick else 2048
    rng = random.Random(61)
    stats = Counter()

    jobs = []  # (ir, kernel, mentioned, instance)
    for i in range(circuits):
        cnf = random_3cnf(n, int(n * clause_ratio), seed=1000 + i)
        root = DnnfCompiler(store=None).compile(cnf)
        ir = nnf_to_ir(root,
                       flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
        kernel = ir_kernel(ir)
        mentioned = sorted(kernel.varsets[kernel.n - 1]) \
            if kernel.n else []
        if not mentioned:
            continue
        assignment = {
            v: np.array([rng.random() < 0.5 for _ in range(samples)])
            for v in mentioned}
        sat = kernel.evaluate_batch(assignment)
        picked = 0
        for j in range(samples):
            if picked >= per_circuit:
                break
            if bool(sat[j]):
                jobs.append((ir, kernel, mentioned,
                             {v: bool(assignment[v][j])
                              for v in mentioned}))
                picked += 1

    # enumeration: every reason of every decision, delays recorded
    delays = []
    dataset = {}  # id(ir) -> (ir, kernel, mentioned, rows)
    total_reasons = 0
    enum_start = time.perf_counter()
    for ir, kernel, mentioned, inst in jobs:
        rows = dataset.setdefault(
            id(ir), (ir, kernel, mentioned, []))[3]
        last = time.perf_counter()
        for reason in iter_sufficient_reasons(ir, inst, stats=stats):
            now = time.perf_counter()
            delays.append(now - last)
            last = now
            total_reasons += 1
            term = sorted(reason, key=abs)
            rows.append((inst, term, True))
            if term:
                # a strict subset of a subset-minimal implicant can
                # never be an implicant
                rows.append((inst, term[1:], False))
    enum_elapsed = time.perf_counter() - enum_start

    def scalar_check(kernel, mentioned, inst, term):
        term_set = set(term)
        decision = kernel.evaluate({v: inst[v] for v in mentioned})
        weights = {}
        for v in mentioned:
            weights[v] = 0.0 if -v in term_set else 1.0
            weights[-v] = 0.0 if v in term_set else 1.0
        with gate_scope("repair"):
            count = kernel.wmc(weights)
        free = sum(1 for v in mentioned
                   if v not in term_set and -v not in term_set)
        return count == (float(2 ** free) if decision else 0.0)

    start = time.perf_counter()
    batch_verdicts = []
    for ir, _kernel, _mentioned, rows in dataset.values():
        batch_verdicts.extend(check_sufficient_batch(
            ir, [inst for inst, _t, _e in rows],
            [term for _i, term, _e in rows], stats=stats))
    mid = time.perf_counter()
    scalar_verdicts = []
    for _ir, kernel, mentioned, rows in dataset.values():
        for inst, term, _expected in rows:
            scalar_verdicts.append(
                scalar_check(kernel, mentioned, inst, term))
    end = time.perf_counter()

    expected = [e for _i, _t, e in
                (row for _, _, _, rows in dataset.values()
                 for row in rows)]
    agree = batch_verdicts == scalar_verdicts == expected
    delays_ms = sorted(d * 1000.0 for d in delays)
    p50_delay_ms = delays_ms[len(delays_ms) // 2] if delays_ms else 0.0
    return {
        "instance": {"circuits": circuits, "num_vars": n,
                     "decisions": len(jobs),
                     "checks": len(batch_verdicts)},
        "reasons": total_reasons,
        "reasons_per_s": round(total_reasons /
                               max(enum_elapsed, 1e-9), 2),
        "p50_delay_ms": round(p50_delay_ms, 4),
        "optimized_s": round(mid - start, 4),
        "legacy_s": round(end - mid, 4),
        "speedup": round((end - mid) / (mid - start), 3)
        if (mid - start) else 0.0,
        "agree": agree,
        "counters": {
            "explain_probes": int(stats["explain_probes"]),
            "explain_evals": int(stats["explain_evals"]),
        },
    }


SCENARIOS = {
    "sharp_sat": scenario_sharp_sat,
    "dnnf_compile": scenario_dnnf_compile,
    "repeated_wmc": scenario_repeated_wmc,
    "batched_wmc": scenario_batched_wmc,
    "batched_marginals": scenario_batched_marginals,
    "psdd_marginals": scenario_psdd_marginals,
    "classifier_scoring": scenario_classifier_scoring,
    "warm_compile": scenario_warm_compile,
    "anytime_bounds": scenario_anytime_bounds,
    "restart_compile": scenario_restart_compile,
    "verify_overhead": scenario_verify_overhead,
    "codegen_kernel": scenario_codegen_kernel,
    "warm_mmap": scenario_warm_mmap,
    "serve_throughput": scenario_serve_throughput,
    "minimize": scenario_minimize,
    "proof_overhead": scenario_proof_overhead,
    "explain_throughput": scenario_explain_throughput,
}


# -- comparison against the previous baseline ----------------------------------
def previous_baseline(output_dir: str, current: str):
    paths = [p for p in sorted(glob.glob(os.path.join(output_dir,
                                                      "BENCH_*.json")))
             if os.path.abspath(p) != os.path.abspath(current)]
    if not paths:
        return None, None
    path = paths[-1]
    try:
        with open(path) as handle:
            return os.path.basename(path), json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None, None


#: drift estimation needs at least this many signalful samples — below
#: that a median is dominated by individual scenarios and a genuinely
#: regressed run could normalize its own regression away
MIN_DRIFT_SAMPLES = 4

#: drift correction is clamped to this factor either way; a "drift"
#: beyond it is not host noise, it is something real
MAX_DRIFT = 2.0


def host_drift(report, baseline):
    """Median wall-clock ratio over timing-signalful scenarios.

    A different machine (or a loaded one) shifts *every* scenario by
    roughly the same factor; a real regression shifts one or a few.
    The median over all signalful scenarios estimates the uniform
    host-drift component, which the gate then divides out — so a
    uniform 1.3× slower host does not trip 13 scenarios, and a real
    2× regression on one path is still 2×/median visible.
    Returns 1.0 when fewer than ``MIN_DRIFT_SAMPLES`` samples exist.
    """
    ratios = []
    for name, result in report["scenarios"].items():
        old = baseline.get("scenarios", {}).get(name)
        if old and old.get("optimized_s", 0) > 0 and (
                result["optimized_s"] >= MIN_GATE_SECONDS or
                old["optimized_s"] >= MIN_GATE_SECONDS):
            ratios.append(result["optimized_s"] / old["optimized_s"])
    if len(ratios) < MIN_DRIFT_SAMPLES:
        return 1.0
    ratios.sort()
    mid = len(ratios) // 2
    median = ratios[mid] if len(ratios) % 2 else \
        (ratios[mid - 1] + ratios[mid]) / 2.0
    return min(MAX_DRIFT, max(1.0 / MAX_DRIFT, median))


def compare(report, baseline):
    """Flag wall-time regressions vs the previous BENCH_*.json,
    normalized by the estimated uniform host drift."""
    regressions = []
    if baseline.get("quick") != report["quick"]:
        return {"baseline_quick": baseline.get("quick"),
                "comparable": False, "regressions": []}
    drift = host_drift(report, baseline)
    old_figures = {f["file"]: f for f in baseline.get("figures", [])}
    for fig in report["figures"]:
        old = old_figures.get(fig["file"])
        if old and old["seconds"] > 0:
            ratio = fig["seconds"] / old["seconds"] / drift
            if ratio > NOISE_THRESHOLD:
                regressions.append({"what": fig["file"],
                                    "ratio": round(ratio, 2)})
    for name, result in report["scenarios"].items():
        old = baseline.get("scenarios", {}).get(name)
        if old and old.get("optimized_s", 0) > 0:
            ratio = result["optimized_s"] / old["optimized_s"] / drift
            if ratio > NOISE_THRESHOLD and (
                    result["optimized_s"] >= MIN_GATE_SECONDS or
                    old["optimized_s"] >= MIN_GATE_SECONDS):
                regressions.append({"what": f"scenario:{name}",
                                    "ratio": round(ratio, 2)})
    return {"comparable": True, "drift": round(drift, 4),
            "regressions": regressions}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scenario instances (smoke test)")
    parser.add_argument("--skip-figures", action="store_true",
                        help="run only the engine speed scenarios")
    parser.add_argument("--output-dir", default=REPO_ROOT,
                        help="where BENCH_<timestamp>.json is written")
    parser.add_argument("--advisory", action="store_true",
                        help="warn on regressions instead of exiting "
                             "non-zero (for noisy machines)")
    parser.add_argument("--cache-dir",
                        help="persistent artifact-store directory for "
                             "the warm_compile scenario (default: a "
                             "throwaway temp directory)")
    parser.add_argument("--scenario-timeout", type=float, default=300.0,
                        help="per-scenario wall-clock budget in seconds "
                             "(ambient Budget scope; also bounds each "
                             "figure subprocess)")
    args = parser.parse_args(argv)
    if args.cache_dir:
        global _CACHE_DIR
        _CACHE_DIR = args.cache_dir

    report = {
        "schema": SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": args.quick,
        "python": platform.python_version(),
        "figures": [],
        "scenarios": {},
    }
    if not args.skip_figures:
        print("== figure benchmarks ==")
        report["figures"] = run_figures(args.quick,
                                        timeout=args.scenario_timeout)
    print("== engine speed scenarios ==")
    for name, scenario in SCENARIOS.items():
        try:
            # ambient scope: every budget-aware engine the scenario
            # touches shares this one wall-clock allowance
            with Budget(deadline_s=args.scenario_timeout).scope():
                result = scenario(args.quick)
        except BudgetExceeded as error:
            result = {"agree": False, "optimized_s": 0, "legacy_s": 0,
                      "speedup": 0, "budget_exceeded": str(error),
                      "counters": {}}
        report["scenarios"][name] = result
        line = (f"  {name:15s} optimized {result['optimized_s']:8.3f}s"
                f"  legacy {result['legacy_s']:8.3f}s"
                f"  speedup {result['speedup']:5.2f}x"
                f"  agree={result['agree']}")
        if "cache_hit_rate" in result:
            line += f"  hit-rate={result['cache_hit_rate']:.2f}"
        print(line)

    stamp = time.strftime("%Y%m%d-%H%M%S")
    os.makedirs(args.output_dir, exist_ok=True)
    out_path = os.path.join(args.output_dir, f"BENCH_{stamp}.json")
    base_name, baseline = previous_baseline(args.output_dir, out_path)
    flagged = []
    if baseline is not None:
        report["comparison"] = {"against": base_name,
                                **compare(report, baseline)}
        flagged = report["comparison"]["regressions"]
        drift = report["comparison"].get("drift")
        if drift is not None and abs(drift - 1.0) > 0.01:
            print(f"host drift estimate {drift}x "
                  "(ratios normalized by it)")
        if flagged:
            print(f"!! {len(flagged)} regression(s) vs {base_name}:")
            for item in flagged:
                print(f"   {item['what']}: {item['ratio']}x slower")
        elif report["comparison"]["comparable"]:
            print(f"no regressions vs {base_name}")
        else:
            print(f"previous baseline {base_name} not comparable "
                  "(quick/full mismatch)")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    failed = [f["file"] for f in report["figures"] if not f["passed"]]
    disagree = [n for n, r in report["scenarios"].items() if not r["agree"]]
    if failed or disagree:
        print(f"FAILURES: figures={failed} disagreements={disagree}")
        return 1
    if flagged and not args.advisory:
        # scriptable gate: timing regressions past NOISE_THRESHOLD fail
        # the run (use --advisory on noisy shared machines)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
