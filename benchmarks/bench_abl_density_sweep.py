"""ABL5 — compilation effort across the random 3-CNF density spectrum.

The classic picture behind the paper's "improving knowledge compilers
is the bottleneck" remark: SAT solvers struggle hardest at the
satisfiability transition (m/n ≈ 4.26), but *counting/compilation*
effort peaks well below it, where formulas are satisfiable yet no
longer decompose into trivial components — very sparse formulas fall
apart into independent pieces, very dense ones refute quickly.
"""

import random

from repro.compile import DnnfCompiler
from repro.logic import random_kcnf
from repro.nnf import model_count
from repro.sat import ModelCounter

NUM_VARS = 13
TRIALS = 6


def _experiment():
    rng = random.Random(55)
    rows = []
    for ratio in (0.4, 1.0, 1.5, 2.0, 3.0, 4.3, 6.0, 8.0):
        decisions = 0
        edges = 0
        sat_count = 0
        models = 0
        for _ in range(TRIALS):
            cnf = random_kcnf(NUM_VARS, round(ratio * NUM_VARS), k=3,
                              rng=rng)
            counter = ModelCounter()
            count = counter.count(cnf)
            compiler = DnnfCompiler()
            circuit = compiler.compile(cnf)
            assert model_count(circuit, range(1, NUM_VARS + 1)) == count
            decisions += counter.decisions
            edges += circuit.edge_count()
            models += count
            sat_count += count > 0
        rows.append((ratio, decisions / TRIALS, edges / TRIALS,
                     models / TRIALS, sat_count / TRIALS))
    return rows


def test_abl5_density_sweep(benchmark, table):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    table(f"ABL5: random 3-CNF over {NUM_VARS} vars "
          f"(averages over {TRIALS} instances)",
          [[f"{ratio:.1f}", f"{dec:.1f}", f"{edges:.1f}",
            f"{models:.1f}", f"{sat:.0%}"]
           for ratio, dec, edges, models, sat in rows],
          headers=["m/n ratio", "search decisions", "d-DNNF edges",
                   "avg #models", "SAT fraction"])

    ratios = [row[0] for row in rows]
    decisions = [row[1] for row in rows]
    models = [row[3] for row in rows]
    sat = [row[4] for row in rows]
    # models decrease monotonically with density
    assert all(a >= b for a, b in zip(models, models[1:]))
    # the under-constrained side is fully SAT; the over-constrained side
    # mostly UNSAT
    assert sat[0] == 1.0
    assert sat[-1] <= 0.5
    # counting effort peaks in the interior, below the SAT transition
    peak = max(range(len(rows)), key=lambda i: decisions[i])
    assert 0 < peak < len(rows) - 1
    assert ratios[peak] < 4.3
