"""FIG2 — the Fig 2 medical network and its four queries.

Regenerates: the MPE instantiation, the per-variable/value MAR table,
the MAP over {sex, c}, the SDP for the operate-if-Pr(c)≥0.9 decision,
and the decision-problem/complexity-class table on the right of Fig 2.
"""

from repro.bayesnet import (map_query, mar, medical_network, mpe, sdp)
from repro.wmc import WmcPipeline, same_decision_probability


def _fig2_queries():
    network = medical_network()
    instantiation, p_mpe = mpe(network)
    marginals = {name: {s: mar(network, {name: s}) for s in (0, 1)}
                 for name in network.variables}
    y_map, p_map = map_query(network, ["sex", "c"])
    p_sdp = sdp(network, "c", 1, 0.9, ["T1", "T2"])
    # the same four queries via the circuit route (NP/PP/NP^PP/PP^PP)
    pipeline = WmcPipeline(network)
    _i, circuit_mpe = pipeline.mpe()
    circuit_mar = pipeline.mar({"c": 1})
    _y, circuit_map = pipeline.map_query(["sex", "c"])
    circuit_sdp = same_decision_probability(network, "c", 1, 0.9,
                                            ["T1", "T2"])
    circuit_answers = (circuit_mpe, circuit_mar, circuit_map,
                       circuit_sdp)
    return (instantiation, p_mpe, marginals, y_map, p_map, p_sdp,
            circuit_answers)


def test_fig2_bn_queries(benchmark, table):
    (instantiation, p_mpe, marginals, y_map, p_map, p_sdp,
     circuit_answers) = benchmark(_fig2_queries)

    table("Fig 2 (left): MPE of the medical network",
          [[", ".join(f"{k}={v}" for k, v in instantiation.items()),
            f"{p_mpe:.4f}"]],
          headers=["instantiation", "Pr"])
    table("Fig 2 (left): MAR per variable/value",
          [[name, f"{m[0]:.4f}", f"{m[1]:.4f}"]
           for name, m in marginals.items()],
          headers=["variable", "Pr(=0)", "Pr(=1)"])
    table("Fig 2: MAP over {sex, c} and SDP",
          [["MAP", f"{y_map}", f"{p_map:.4f}"],
           ["SDP (T=0.9, observe T1,T2)", "", f"{p_sdp:.4f}"]],
          headers=["query", "argmax", "value"])
    circuit_mpe, circuit_mar, circuit_map, circuit_sdp = circuit_answers
    table("Fig 2 (right): decision problems, classes, circuit route",
          [["D-MPE", "NP", f"{circuit_mpe:.4f}"],
           ["D-MAR", "PP", f"{circuit_mar:.4f}"],
           ["D-MAP", "NP^PP", f"{circuit_map:.4f}"],
           ["D-SDP", "PP^PP", f"{circuit_sdp:.4f}"]],
          headers=["problem", "complete for", "via compilation"])

    # shape checks: the condition is rare, MPE is the healthy profile,
    # the SDP is informative (< 1) because strong double-positive tests
    # push the posterior past the 0.9 threshold
    assert marginals["c"][1] < 0.05
    assert instantiation["c"] == 0 and instantiation["AGREE"] == 1
    assert y_map["c"] == 0
    assert 0.9 < p_sdp < 1.0
    assert mar(medical_network(), {"c": 1}, {"T1": 1, "T2": 1}) > 0.9
    # the circuit route agrees with the dedicated algorithms
    assert abs(circuit_mpe - p_mpe) < 1e-9
    assert abs(circuit_mar - marginals["c"][1]) < 1e-9
    assert abs(circuit_map - p_map) < 1e-9
    assert abs(circuit_sdp - p_sdp) < 1e-9
