"""FIG17 — learning preference distributions over rankings.

Regenerates: the ranking-space sizes (n! models over n² variables), and
the [17] case study — a PSDD learned on the compiled ranking space is
*competitive* with the dedicated Mallows model on data drawn from a
Mallows distribution (test log-likelihood), while also supporting
arbitrary evidence queries the dedicated model cannot.
"""

import math
import random

from repro.psdd import (learn_parameters, log_likelihood, marginal,
                        psdd_from_sdd)
from repro.sdd import model_count
from repro.spaces import MallowsModel, RankingSpace, fit_mallows


def _ranking_experiment():
    space_rows = []
    for n in (2, 3, 4):
        space = RankingSpace(n)
        sdd, _manager = space.compile()
        space_rows.append((n, n * n, model_count(sdd),
                           math.factorial(n), sdd.size()))

    n = 4
    rng = random.Random(17)
    truth = MallowsModel([2, 0, 3, 1], phi=0.45)
    space = RankingSpace(n)
    sdd, _manager = space.compile()

    def draw(count):
        aggregate = {}
        for _ in range(count):
            r = tuple(truth.sample(rng))
            aggregate[r] = aggregate.get(r, 0) + 1
        return [(list(r), c) for r, c in aggregate.items()]

    train, test = draw(1500), draw(1500)
    test_total = sum(c for _r, c in test)

    psdd = psdd_from_sdd(sdd)
    psdd_data = [(space.ranking_assignment(r), c) for r, c in train]
    learn_parameters(psdd, psdd_data, alpha=0.1)
    psdd_ll = sum(c * math.log(psdd.probability(
        space.ranking_assignment(r))) for r, c in test) / test_total

    mallows = fit_mallows(train)
    mallows_ll = mallows.log_likelihood(test) / test_total
    truth_ll = truth.log_likelihood(test) / test_total

    # a query the dedicated model has no native support for:
    # Pr(item 2 ranked first)
    first_place = marginal(psdd, {space.variable(2, 0): True})
    return space_rows, psdd_ll, mallows_ll, truth_ll, mallows, first_place


def test_fig17_rankings(benchmark, table):
    (space_rows, psdd_ll, mallows_ll, truth_ll, mallows,
     first_place) = benchmark.pedantic(_ranking_experiment, rounds=1,
                                       iterations=1)

    table("Fig 17: ranking spaces (n items, n^2 Boolean variables)",
          [[n, vars_, models, expected, size]
           for n, vars_, models, expected, size in space_rows],
          headers=["n", "variables", "SDD models", "n!", "SDD size"])
    table("the [17] case study: PSDD vs dedicated Mallows model "
          "(test log-likelihood per ranking; higher is better)",
          [["PSDD on compiled space", f"{psdd_ll:.4f}"],
           [f"fitted Mallows (phi={mallows.phi:.3f})",
            f"{mallows_ll:.4f}"],
           ["generating Mallows (oracle)", f"{truth_ll:.4f}"]],
          headers=["model", "test LL"])
    print(f"\n  bonus query on the PSDD: Pr(item 2 ranked first) = "
          f"{first_place:.3f}")

    for n, _v, models, expected, _s in space_rows:
        assert models == expected
    # competitive: within 10% of the dedicated model's (negative) LL
    assert psdd_ll >= mallows_ll - 0.1 * abs(mallows_ll)
    # nobody beats the oracle by much (sampling noise only)
    assert psdd_ll <= truth_ll + 0.05
    assert mallows.center == [2, 0, 3, 1]
    assert 0 <= first_place <= 1
