"""FIG27 — explaining and auditing the admissions classifier.

Regenerates the figure's analysis structure: Robin is admitted with
sufficient reasons of which some but not all touch the protected
feature (decision unbiased, classifier biased); Scott is admitted with
every reason touching it (decision biased — flipping R alone reverses
it); both complete-reason circuits are built and verified monotone.

The paper's exact OBDD is not recoverable from the text, so reason
*counts* may differ from the figure; the bias verdicts and circuit
properties are the reproduced content (see EXPERIMENTS.md).
"""

from repro.classifiers import (ADMISSIONS_FEATURES,
                               admissions_classifier)
from repro.explain import (all_sufficient_reasons, bias_from_reasons,
                           classifier_is_biased, decision_is_biased,
                           reason_circuit, reason_prime_implicants)

NAMES = {v: k for k, v in ADMISSIONS_FEATURES.items()}
PROTECTED = [ADMISSIONS_FEATURES["R"]]

ROBIN = {1: True, 2: True, 3: True, 4: True, 5: True}
SCOTT = {1: False, 2: True, 3: True, 4: False, 5: True}


def _audit():
    manager, node = admissions_classifier()
    results = {}
    for name, instance in (("Robin", ROBIN), ("Scott", SCOTT)):
        reasons = all_sufficient_reasons(node, instance)
        circuit = reason_circuit(node, instance)
        results[name] = {
            "decision": node.evaluate(instance),
            "reasons": reasons,
            "touching": [any(abs(l) in PROTECTED for l in r)
                         for r in reasons],
            "direct_bias": decision_is_biased(node, instance, PROTECTED),
            "reason_bias": bias_from_reasons(node, instance, PROTECTED),
            "circuit_nodes": circuit.node_count(),
            "circuit_pis": reason_prime_implicants(circuit),
        }
    results["classifier_biased"] = classifier_is_biased(node, PROTECTED)
    return results


def test_fig27_admissions(benchmark, table):
    results = benchmark(_audit)

    def pretty(term):
        return " & ".join(("" if l > 0 else "~") + NAMES[abs(l)]
                          for l in sorted(term, key=abs))

    for name in ("Robin", "Scott"):
        r = results[name]
        rows = [[pretty(reason),
                 "protected" if touch else "merit"]
                for reason, touch in zip(r["reasons"], r["touching"])]
        table(f"Fig 27: {name} — "
              f"{'ADMITTED' if r['decision'] else 'DECLINED'}, "
              f"{len(r['reasons'])} sufficient reasons", rows,
              headers=["sufficient reason", "kind"])
        print(f"  decision biased: {r['direct_bias']}   "
              f"reason circuit: {r['circuit_nodes']} nodes")
    print(f"\n  classifier biased w.r.t. R: "
          f"{results['classifier_biased']}")

    robin, scott = results["Robin"], results["Scott"]
    # both admitted
    assert robin["decision"] and scott["decision"]
    # Robin: some but not all reasons touch R -> decision unbiased,
    # classifier provably biased
    assert any(robin["touching"]) and not all(robin["touching"])
    assert not robin["direct_bias"]
    assert robin["reason_bias"]["classifier_biased_witness"]
    # Scott: every reason touches R -> decision biased
    assert all(scott["touching"])
    assert scott["direct_bias"]
    # the theorem: reason-based and direct bias verdicts agree
    for r in (robin, scott):
        assert r["reason_bias"]["decision_biased"] == r["direct_bias"]
        # reason circuits reproduce the sufficient reasons exactly
        assert set(r["circuit_pis"]) == set(r["reasons"])
    assert results["classifier_biased"]
