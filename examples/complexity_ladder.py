"""Climbing the complexity ladder with one compiled circuit family.

Section 2 of the paper organises probabilistic reasoning around four
complexity classes.  This example solves one representative of each on
the same Boolean formula — SAT (NP), #SAT/MAJSAT (PP), E-MAJSAT
(NP^PP) and MAJMAJSAT (PP^PP) — entirely by knowledge compilation,
then shows the probabilistic counterparts on a Bayesian network
(MPE / MAR / MAP through the same machinery).

Run:  python examples/complexity_ladder.py
"""

from repro.bayesnet import medical_network
from repro.logic import Cnf
from repro.solvers import (emajsat_value, majmajsat_histogram,
                           solve_count, solve_emajsat, solve_majmajsat,
                           solve_majsat, solve_sat)
from repro.wmc import WmcPipeline, same_decision_probability

# a small "planning under uncertainty" toy: y-variables are choices,
# z-variables are chance; Δ(y, z) says the plan works out
DELTA = Cnf([(1, 4), (-1, 5), (2, -5, 6), (3, 4, -6), (-2, -4),
             (1, 2, 3)], num_vars=6)
CHOICES = [1, 2, 3]


def boolean_side():
    print("=== the Boolean ladder (one formula, four classes) ===")
    print(f"Δ has {len(DELTA)} clauses over {DELTA.num_vars} variables; "
          f"choices Y = {CHOICES}, chance Z = [4, 5, 6]\n")
    print(f"NP     SAT: is Δ satisfiable at all?        "
          f"{solve_sat(DELTA)}")
    count = solve_count(DELTA)
    print(f"PP     #SAT / MAJSAT: {count} of 64 inputs satisfy "
          f"-> majority? {solve_majsat(DELTA)}")
    value, witness = emajsat_value(DELTA, CHOICES)
    pretty = {f"y{v}": s for v, s in sorted(witness.items())}
    print(f"NP^PP  E-MAJSAT: best choice {pretty} makes {value} of 8 "
          f"chance outcomes work -> majority? "
          f"{solve_emajsat(DELTA, CHOICES)}")
    histogram = majmajsat_histogram(DELTA, CHOICES)
    print(f"PP^PP  MAJMAJSAT: choices by #working outcomes: "
          f"{dict(sorted(histogram.items()))} -> majority of choices "
          f"see a majority? {solve_majmajsat(DELTA, CHOICES)}")


def probabilistic_side():
    print("\n=== the probabilistic ladder (same machinery) ===")
    network = medical_network()
    pipeline = WmcPipeline(network, exploit_determinism=True)
    print(f"network compiled once: {pipeline.circuit_size()} circuit "
          "edges (0/1-aware encoding)\n")
    instantiation, p = pipeline.mpe()
    print(f"NP     MPE: {instantiation}  Pr = {p:.4f}")
    print(f"PP     MAR: Pr(c=1 | T1=1, T2=1) = "
          f"{pipeline.mar({'c': 1}, {'T1': 1, 'T2': 1}):.4f}")
    y, py = pipeline.map_query(["sex", "c"])
    print(f"NP^PP  MAP: argmax over (sex, c) = {y}, Pr = {py:.4f}")
    s = same_decision_probability(network, "c", 1, 0.9, ["T1", "T2"])
    print(f"PP^PP  SDP: Pr the operate-decision sticks after the tests "
          f"= {s:.4f}")


if __name__ == "__main__":
    boolean_side()
    probabilistic_side()
