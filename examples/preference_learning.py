"""Learning preference distributions over combinatorial objects
(Section 4.1: rankings, Fig 17; subset selection, [77]).

Two structured spaces, one recipe: encode the objects with Boolean
variables, compile the validity constraint into an SDD, learn a PSDD
from observed choices, and reason with it.

Run:  python examples/preference_learning.py
"""

import random

from repro.psdd import learn_parameters, marginal, mpe, psdd_from_sdd
from repro.sdd import model_count
from repro.spaces import (MallowsModel, RankingSpace, SubsetSpace,
                          fit_mallows)

ITEMS = ["espresso", "filter", "cappuccino", "flat white"]


def rankings():
    print("=== ranking the coffee menu (Fig 17) ===")
    n = len(ITEMS)
    space = RankingSpace(n)
    sdd, _manager = space.compile()
    print(f"{n} items -> {n * n} Boolean variables; the constraint "
          f"SDD has {model_count(sdd)} models = {n}! rankings")

    # customers roughly agree: espresso > filter > cappuccino > flat white
    rng = random.Random(41)
    truth = MallowsModel([0, 1, 2, 3], phi=0.5)
    votes = {}
    for _ in range(800):
        ranking = tuple(truth.sample(rng))
        votes[ranking] = votes.get(ranking, 0) + 1

    psdd = psdd_from_sdd(sdd)
    data = [(space.ranking_assignment(list(r)), c)
            for r, c in votes.items()]
    learn_parameters(psdd, data, alpha=0.1)

    mallows = fit_mallows([(list(r), c) for r, c in votes.items()])
    print(f"fitted Mallows: center "
          f"{[ITEMS[i] for i in mallows.center]}, phi={mallows.phi:.2f}")
    first = {ITEMS[i]: marginal(psdd, {space.variable(i, 0): True})
             for i in range(n)}
    print("PSDD: Pr(item ranked first):")
    for item, p in sorted(first.items(), key=lambda kv: -kv[1]):
        print(f"  {item:12s} {p:.3f}")
    inst, p = mpe(psdd)
    best = [ITEMS[i] for i in space.assignment_ranking(inst)]
    print(f"most probable ranking: {best} (Pr {p:.3f})")


def subsets():
    print("\n=== choosing a 2-item tasting flight ([77]) ===")
    n, k = len(ITEMS), 2
    space = SubsetSpace(n, k)
    print(f"exactly-{k}-of-{n} space: {model_count(space.sdd)} subsets, "
          f"SDD size {space.sdd.size()} (O(n*k))")
    psdd = space.psdd()
    rng = random.Random(42)
    # espresso is on most flights; cappuccino+flat white never together
    observed = []
    pool = [([1, 2], 30), ([1, 3], 25), ([1, 4], 20), ([2, 3], 10),
            ([2, 4], 10), ([3, 4], 5)]
    data = [(space.subset_assignment(s), c) for s, c in pool]
    learn_parameters(psdd, data, alpha=0.5)
    for i in range(1, n + 1):
        print(f"  Pr({ITEMS[i - 1]} on the flight) = "
              f"{marginal(psdd, {i: True}):.3f}")
    inst, p = mpe(psdd)
    flight = [ITEMS[i - 1] for i in space.assignment_subset(inst)]
    print(f"most probable flight: {flight} (Pr {p:.3f})")


if __name__ == "__main__":
    rankings()
    subsets()
