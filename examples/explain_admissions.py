"""Explaining and auditing an admissions classifier (Fig 27).

The classifier is an OBDD over five features, one protected (rich
hometown).  We extract sufficient reasons and complete-reason circuits
for two applicants, decide whether each decision is biased, whether the
classifier is biased, and check a counterfactual statement.

Run:  python examples/explain_admissions.py
"""

from repro.classifiers import ADMISSIONS_FEATURES, admissions_classifier
from repro.explain import (all_sufficient_reasons, bias_from_reasons,
                           classifier_is_biased, decision_is_biased,
                           reason_circuit, reason_implies,
                           verify_even_if_because)

NAMES = {v: k for k, v in ADMISSIONS_FEATURES.items()}
LONG = {"E": "passed entrance exam", "F": "first-time applicant",
        "G": "good GPA", "W": "work experience",
        "R": "rich hometown (protected)"}


def pretty(term):
    return " & ".join(f"{'' if l > 0 else 'not '}{NAMES[abs(l)]}"
                      for l in sorted(term, key=abs))


def audit(manager, node, name, instance, protected):
    decision = node.evaluate(instance)
    print(f"{name}: {'ADMITTED' if decision else 'DECLINED'}")
    held = [NAMES[v] for v, value in sorted(instance.items()) if value]
    print(f"  profile: {', '.join(held) or 'nothing'}")
    reasons = all_sufficient_reasons(node, instance)
    print(f"  sufficient reasons ({len(reasons)}):")
    for reason in reasons:
        flag = " [touches protected]" if any(abs(l) in protected
                                             for l in reason) else ""
        print(f"    {pretty(reason)}{flag}")
    analysis = bias_from_reasons(node, instance, protected)
    direct = decision_is_biased(node, instance, protected)
    print(f"  decision biased: {direct} "
          f"(reason criterion agrees: "
          f"{analysis['decision_biased'] == direct})")
    if not direct and analysis["classifier_biased_witness"]:
        print("  ...but some reasons touch the protected feature, so "
              "the CLASSIFIER is biased on other instances")
    print()


def main():
    manager, node = admissions_classifier()
    protected = [ADMISSIONS_FEATURES["R"]]
    print("admissions classifier over features:",
          ", ".join(f"{k}={LONG[k]}" for k in ADMISSIONS_FEATURES))
    print(f"classifier biased w.r.t. R: "
          f"{classifier_is_biased(node, protected)}\n")

    robin = {1: True, 2: True, 3: True, 4: True, 5: True}
    scott = {1: False, 2: True, 3: True, 4: False, 5: True}
    audit(manager, node, "Robin", robin, protected)
    audit(manager, node, "Scott", scott, protected)

    # the complete reason behind Robin's admission, as a circuit
    circuit = reason_circuit(node, robin)
    print(f"Robin's complete-reason circuit: {circuit.node_count()} "
          f"nodes, {circuit.edge_count()} edges (monotone)")
    print(f"  does 'passed exam + good GPA' trigger the decision? "
          f"{reason_implies(circuit, [1, 3])}")
    print(f"  does 'good GPA' alone trigger it? "
          f"{reason_implies(circuit, [3])}\n")

    # a counterfactual, the paper's April sentence
    april = {1: True, 2: False, 3: True, 4: True, 5: False}
    result = verify_even_if_because(node, april, flipped=[4],
                                    because=[1, 3])
    print("counterfactual: 'the decision on April would stick even if "
          "she had no work experience, because she passed the exam "
          "with a good GPA'")
    print(f"  verified: {result['valid']}")


if __name__ == "__main__":
    main()
