"""Learning route distributions (Figs 16, 18–22).

We compile the space of simple routes across a grid "city" into an SDD,
learn a PSDD from synthetic GPS trajectories, and query it.  Then we
rebuild the same city *hierarchically* — two districts joined by
crossings — as a structured Bayesian network of conditional PSDDs, the
paper's recipe for scaling to real maps.

Run:  python examples/route_learning.py
"""

import random

from repro.condpsdd import HierarchicalMap
from repro.spaces import RouteModel, grid_map


def main():
    rng = random.Random(2020)
    city = grid_map(3, 4)
    source, destination = (0, 0), (2, 3)
    print(f"city: 3x4 grid, {city.num_edges} streets; commuting "
          f"{source} -> {destination}\n")

    # -- flat compilation (Fig 16) ---------------------------------------
    model = RouteModel(city, source, destination)
    print(f"flat route space: {len(model.routes)} valid routes, "
          f"SDD size {model.sdd.size()}, PSDD size {model.psdd.size()}")

    # synthetic GPS data: a commuter who prefers the riverside (top) road
    def preference(route):
        top_edges = sum(1 for a, b in zip(route, route[1:])
                        if a[0] == 0 and b[0] == 0)
        return 1 + 3 * top_edges

    weights = [preference(route) for route in model.routes]
    total = sum(weights)
    trajectories = rng.choices(model.routes, weights=weights, k=500)
    model.fit(trajectories, alpha=0.1)

    print("\nlearned edge marginals (top row vs bottom row):")
    for row in (0, 2):
        marginals = [model.edge_marginal((row, c), (row, c + 1))
                     for c in range(3)]
        label = "top   " if row == 0 else "bottom"
        print(f"  {label} row streets: " +
              " ".join(f"{m:.2f}" for m in marginals))
    best, p = model.most_probable_route()
    print(f"most probable route (Pr {p:.3f}): {best}")

    # -- hierarchical compilation (Figs 18-22) ------------------------------
    print("\n--- hierarchical map: west + east districts ---")
    regions = {"west": [(r, c) for r in range(3) for c in range(2)],
               "east": [(r, c) for r in range(3) for c in range(2, 4)]}
    hierarchical = HierarchicalMap(city, regions, source, destination)
    print(f"hierarchical route space: {len(hierarchical.routes)} routes "
          f"(of {len(hierarchical.all_routes)} total; region-simple only)")
    print(f"hierarchical circuit size {hierarchical.size()} vs flat "
          f"{model.psdd.size()}")
    trajectories = [t for t in trajectories
                    if hierarchical.is_hierarchical_route(t)]
    hierarchical.fit(trajectories, alpha=0.1)
    example = hierarchical.routes[0]
    print(f"Pr(example route) = "
          f"{hierarchical.route_probability(example):.4f}")
    sample = hierarchical.sample_route_assignment(rng)
    sampled_streets = city.assignment_route_edges(sample)
    print(f"a sampled commute uses {len(sampled_streets)} streets and is "
          f"a valid route: "
          f"{city.is_route(sample, source, destination)}")


if __name__ == "__main__":
    main()
