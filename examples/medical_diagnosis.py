"""The Fig 2 medical network: MPE, MAR, MAP and SDP — twice.

Once with the classical dedicated algorithms (variable elimination +
enumeration), and once through the modern route the paper advocates:
encode the network as a weighted CNF, compile it once into a tractable
circuit, and answer queries by circuit evaluations.

Run:  python examples/medical_diagnosis.py
"""

from repro.bayesnet import map_query, mar, medical_network, mpe, sdp
from repro.wmc import WmcPipeline


def main():
    network = medical_network()
    print("Fig 2 medical network:", ", ".join(network.variables))
    print(f"({network.parameter_count()} CPT parameters)\n")

    # -- dedicated algorithms --------------------------------------------
    print("--- dedicated algorithms (variable elimination) ---")
    instantiation, p = mpe(network)
    pretty = ", ".join(f"{k}={v}" for k, v in instantiation.items())
    print(f"MPE  (NP):    {pretty}  with Pr = {p:.4f}")
    for name in network.variables:
        print(f"MAR  (PP):    Pr({name}=1) = {mar(network, {name: 1}):.4f}")
    y, py = map_query(network, ["sex", "c"])
    print(f"MAP  (NP^PP): argmax over (sex, c) = {y}, Pr = {py:.4f}")
    s = sdp(network, "c", 1, 0.9, ["T1", "T2"])
    print(f"SDP  (PP^PP): Pr the decision [Pr(c) >= 0.9] sticks after "
          f"seeing T1, T2 = {s:.4f}\n")

    # -- the reduction route ------------------------------------------------
    print("--- compile once, query many (BN -> CNF -> d-DNNF) ---")
    pipeline = WmcPipeline(network, encoding="multistate")
    print(f"encoding: {len(pipeline.encoding.cnf)} clauses over "
          f"{pipeline.encoding.cnf.num_vars} variables; compiled circuit "
          f"has {pipeline.circuit_size()} edges")
    inst2, p2 = pipeline.mpe()
    print(f"MPE via circuit:  Pr = {p2:.4f} "
          f"({'agrees' if abs(p2 - p) < 1e-9 else 'DISAGREES'})")
    marginals = pipeline.marginals()
    print("all marginals from ONE differential pass:")
    for name in network.variables:
        ve = mar(network, {name: 1})
        circuit = marginals[name][1]
        flag = "ok" if abs(ve - circuit) < 1e-9 else "MISMATCH"
        print(f"  Pr({name}=1) = {circuit:.4f}   [{flag}]")
    print("\nposterior after a positive first test:")
    print(f"  Pr(c=1 | T1=1) = {pipeline.mar({'c': 1}, {'T1': 1}):.4f}")
    print(f"  Pr(c=1 | T1=1, T2=1) = "
          f"{pipeline.mar({'c': 1}, {'T1': 1, 'T2': 1}):.4f}")


if __name__ == "__main__":
    main()
