"""Verifying a neural network by compiling it to a circuit (Figs 28–29).

We train a small binarized neural network to tell digit 0 from digit 1
on synthetic binary images, compile it into an OBDD with identical
input-output behaviour, and then do what is impossible on the raw net:
exact explanations, exact robustness over ALL inputs, and neuron-level
interpretation.

Run:  python examples/verify_network.py
"""

import random

from repro.classifiers import (BinarizedNeuralNetwork, compile_bnn,
                               digit_dataset, digit_template,
                               render_image)
from repro.explain import (minimal_sufficient_reason,
                           smallest_sufficient_reason)
from repro.obdd import model_count
from repro.robust import decision_robustness, robustness_summary

SIZE = 4  # 4x4 images = 16 inputs (the paper uses 16x16; see DESIGN.md)


def main():
    rng = random.Random(28)
    instances, labels = digit_dataset(0, 1, 80, size=SIZE, noise=0.08,
                                      rng=rng)
    split = int(0.75 * len(instances))
    network = BinarizedNeuralNetwork.train(instances[:split],
                                           labels[:split],
                                           hidden=(4,), seed=1)
    accuracy = network.accuracy(instances[split:], labels[split:])
    print(f"trained {network!r}; test accuracy {accuracy:.2%}\n")

    circuit, layers = compile_bnn(network)
    print(f"compiled into an OBDD with {circuit.size()} decision nodes")
    positives = model_count(circuit)
    print(f"of all 2^{SIZE * SIZE} images, the net calls "
          f"{positives} 'digit 0'\n")

    image = digit_template(0, SIZE)
    assert circuit.evaluate(image) == network.forward(image)
    print("a clean digit-0 image:")
    print(render_image(image, SIZE))
    reason = smallest_sufficient_reason(circuit, image, max_size=4) or \
        minimal_sufficient_reason(circuit, image)
    print(f"\nsmallest sufficient reason uses {len(reason)} of "
          f"{SIZE * SIZE} pixels (paper's Fig 28: 3 of 256):")
    highlight = {v: False for v in image}
    for lit in reason:
        highlight[abs(lit)] = True
    print(render_image(highlight, SIZE, on="*", off="."))
    print("(keep the * pixels as they are and the classification can "
          "never change)")

    print(f"\nrobustness of this decision: "
          f"{decision_robustness(circuit, image):.0f} pixel flips")
    summary = robustness_summary(circuit)
    print(f"model robustness (avg over ALL {2 ** (SIZE * SIZE)} images): "
          f"{summary['model_robustness']:.2f}")
    print(f"max robustness: {summary['max_robustness']}")

    # neuron-level interpretation (Section 5.2)
    print("\nneuron interpretation: for each hidden neuron, the share "
          "of all inputs that make it fire:")
    total = 2 ** (SIZE * SIZE)
    for i, neuron in enumerate(layers[0]):
        share = model_count(neuron) / total
        print(f"  neuron {i}: fires on {share:.1%} of inputs "
              f"(circuit size {neuron.size()})")


if __name__ == "__main__":
    main()
