"""Learning from data AND knowledge: the Figs 13–15 enrollment story.

A CS department offers Logic (L), Knowledge Representation (K),
Probability (P) and AI (A), with rules: every student takes P or L;
AI requires P; KR requires AI or L.  We compile the rules into an SDD,
attach a distribution to it (a PSDD), learn maximum-likelihood
parameters from enrollment data, and reason with the result.

Run:  python examples/enrollment_psdd.py
"""

from repro.logic import VarMap, iter_assignments, parse, to_cnf
from repro.psdd import (entropy, learn_parameters, marginal, mpe,
                        psdd_from_sdd, support_size)
from repro.sdd import compile_cnf_sdd


def main():
    vm = VarMap()
    rules = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    P, L, A, K = (vm.index(n) for n in "PLAK")
    names = {P: "P", L: "L", A: "A", K: "K"}

    sdd, _manager = compile_cnf_sdd(to_cnf(rules))
    print(f"course rules compile to an SDD of size {sdd.size()}")
    psdd = psdd_from_sdd(sdd)
    print(f"its PSDD spans {support_size(psdd)} valid course "
          f"combinations (of 16 possible)\n")

    # enrollment counts (each row satisfies the rules)
    data = [
        ({L: 1, K: 1, P: 1, A: 1}, 6),
        ({L: 1, K: 1, P: 1, A: 0}, 10),
        ({L: 1, K: 0, P: 1, A: 1}, 4),
        ({L: 1, K: 0, P: 1, A: 0}, 54),
        ({L: 0, K: 1, P: 1, A: 1}, 8),
        ({L: 0, K: 0, P: 1, A: 1}, 4),
        ({L: 0, K: 0, P: 1, A: 0}, 114),
        ({L: 1, K: 1, P: 0, A: 0}, 10),
        ({L: 1, K: 0, P: 0, A: 0}, 30),
    ]
    data = [({v: bool(s) for v, s in row.items()}, c) for row, c in data]
    total = sum(c for _r, c in data)
    learn_parameters(psdd, data)
    print(f"learned ML parameters from {total} student records")

    print("\nthe learned distribution (Fig 14 style):")
    mass = 0.0
    for assignment in iter_assignments([P, L, A, K]):
        p = psdd.probability(assignment)
        mass += p
        if p > 0:
            row = " ".join(f"{names[v]}={int(assignment[v])}"
                           for v in (L, K, P, A))
            print(f"  {row}   Pr = {p:.4f}")
    print(f"  (sums to {mass:.4f}; every rule-violating combination "
          "has probability exactly 0)")

    print("\nqueries, all linear in the PSDD size:")
    print(f"  Pr(takes KR)           = {marginal(psdd, {K: True}):.4f}")
    p_ai_given_logic = marginal(psdd, {A: True, L: True}) / \
        marginal(psdd, {L: True})
    print(f"  Pr(takes AI | Logic)   = {p_ai_given_logic:.4f}")
    inst, p = mpe(psdd)
    row = ", ".join(f"{names[v]}={int(inst[v])}" for v in (L, K, P, A))
    print(f"  most probable profile  = {row}  (Pr {p:.4f})")
    print(f"  entropy of the model   = {entropy(psdd):.4f} nats")


if __name__ == "__main__":
    main()
