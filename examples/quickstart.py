"""Quickstart: the three roles of logic in five minutes.

Run:  python examples/quickstart.py
"""

from repro.logic import VarMap, parse, to_cnf
from repro.compile import compile_cnf
from repro.nnf import model_count, weighted_model_count
from repro.sdd import compile_cnf_sdd, model_count as sdd_count
from repro.psdd import learn_parameters, marginal, psdd_from_sdd
from repro.classifiers import compile_naive_bayes, pregnancy_classifier
from repro.explain import all_sufficient_reasons
from repro.robust import decision_robustness


def role_1_computation():
    """Compile a formula once; count, weight and query in linear time."""
    print("=== Role 1: logic as a basis for computation ===")
    vm = VarMap()
    formula = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    cnf = to_cnf(formula)

    circuit = compile_cnf(cnf)  # Decision-DNNF via exhaustive DPLL
    count = model_count(circuit, range(1, cnf.num_vars + 1))
    print(f"the constraint has {count} models out of 16 (paper: 9)")

    weights = {}
    for v in range(1, 5):
        weights[v] = 0.7
        weights[-v] = 0.3
    wmc = weighted_model_count(circuit, weights, range(1, 5))
    print(f"weighted model count under iid-0.7 weights: {wmc:.4f}")


def role_2_learning():
    """Learn a distribution over the models of symbolic knowledge."""
    print("\n=== Role 2: learning from data and knowledge ===")
    vm = VarMap()
    formula = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
    P, L, A, K = (vm.index(n) for n in "PLAK")

    sdd, _manager = compile_cnf_sdd(to_cnf(formula))
    psdd = psdd_from_sdd(sdd)

    # an enrollment dataset (Fig 15 style): all rows satisfy the rules
    data = [
        ({P: True, L: True, A: True, K: True}, 6),
        ({P: True, L: True, A: False, K: False}, 54),
        ({P: True, L: False, A: True, K: False}, 10),
        ({P: True, L: False, A: False, K: False}, 114),
        ({P: False, L: True, A: False, K: False}, 30),
    ]
    learn_parameters(psdd, data)
    print(f"Pr(student takes Logic)       = "
          f"{marginal(psdd, {L: True}):.3f}")
    print(f"Pr(takes AI | takes Logic)    = "
          f"{marginal(psdd, {A: True, L: True}) / marginal(psdd, {L: True}):.3f}")
    impossible = {P: False, L: False, A: False, K: False}
    print(f"Pr(violating the rules)       = "
          f"{psdd.probability(impossible):.3f} (always 0)")


def role_3_meta_reasoning():
    """Compile a classifier and reason about its decisions."""
    print("\n=== Role 3: reasoning about a machine learning system ===")
    # the Fig 25 pregnancy classifier: tests B(=1), U(=2), S(=3)
    classifier = pregnancy_classifier(threshold=0.9)
    circuit = compile_naive_bayes(classifier)

    susan = {1: True, 2: True, 3: True}
    print(f"posterior for Susan: {classifier.posterior(susan):.3f} "
          f"-> decision {classifier.decide(susan)}")
    reasons = all_sufficient_reasons(circuit, susan)
    names = {1: "B", 2: "U", 3: "S"}

    def pretty(term):
        return " & ".join(
            f"{names[abs(l)]}={'+' if l > 0 else '-'}ve"
            for l in sorted(term, key=abs))

    print("sufficient reasons for the decision:")
    for reason in reasons:
        print(f"  {pretty(reason)}")
    print(f"decision robustness (flips to overturn): "
          f"{decision_robustness(circuit, susan):.0f}")


if __name__ == "__main__":
    role_1_computation()
    role_2_learning()
    role_3_meta_reasoning()
