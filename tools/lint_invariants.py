#!/usr/bin/env python3
"""Project-invariant lint: AST checks ruff/mypy cannot express.

Seven rules, each guarding a deliberate architectural boundary:

1. **legacy-isolation** — production modules must not import
   ``repro.compat`` or any ``*_legacy`` name/module at module level.
   The sanctioned pattern is a function-local import (the lazy
   dispatch in ``repro.nnf.queries._legacy``), so the legacy baseline
   stays reachable for benchmarks without ever being on a production
   import path.  ``src/repro/compat.py`` itself and ``*_legacy``
   modules are exempt; tests are not linted (``tools/`` and
   ``benchmarks/`` are — see below).

2. **clock-injection** — budget-governed modules (``repro.limits``,
   ``repro.sat``, ``repro.compile``, ``repro.ir``) must not call
   ``time.time()`` or import ``time.time``: wall-clock reads go
   through the injectable clock (``Budget(clock=...)``), so the
   fault harness (:mod:`repro.limits.faults`) can steer time in
   tests.  ``time.perf_counter`` is fine (pure measurement).

3. **flag-trust** — query-layer modules must not read the IR's
   self-declared property ``flags`` (``FLAG_*`` constants,
   ``.has_flag``, ``.flags``): property requirements are checked by
   the gate (:mod:`repro.analyze.gate`) against *certified* flags.
   Lowering/serialization code legitimately writes flags and is not
   in the query layer.

4. **audited-compile** — generated-evaluator sources are artifact
   bytes and must never reach the interpreter except through the one
   sealed entry point: no production module may call the builtin
   ``eval``/``exec``/``compile`` outside ``audited_compile`` in
   ``ir/codegen.py``, which verifies the source's embedded
   self-hash before compiling it with empty builtins.  Method calls
   like ``cnf.compile(...)`` are fine — only the bare builtins are
   flagged.

5. **serve-isolation** — the serving layer (``repro/serve/``) must
   never call engine internals directly: the only sanctioned repro
   imports (module-level *or* lazy) are the service facade
   (``repro.ir.facade``), the store (``repro.ir.store``), the kernel
   (``repro.ir.kernel``), budgets (``repro.limits``), perf counters
   (``repro.perf``), and serve-internal modules.  Compilers, SAT
   engines, circuit walkers etc. change shape freely behind the
   facade; a server reaching around it would freeze them.

6. **rewrite-isolation** — only the sanctioned modules may construct
   a :class:`CircuitIR` (directly or via ``IrBuilder``): the IR core
   itself, the lowerings, the serializers, and the certified pass
   manager (``repro/ir/passes.py``), where every rewrite is
   verification-gated before it can replace a circuit.
   ``analyze/repair.py`` stays on the allowlist as the migration shim
   for the gate's auto-smoothing.  An ad-hoc ``IrBuilder`` elsewhere
   would be an unaudited circuit rewrite — exactly the class of bug
   the certification gate exists to catch.

7. **proof-isolation** — the equivalence-proof checker
   (``repro/proof/``) must stay independent of the engine it audits:
   the only sanctioned repro imports (module-level *or* lazy) are the
   proof package itself, the CNF representation (``repro.logic``) and
   budgets (``repro.limits``).  A checker that imported
   ``repro.sat`` or ``repro.compile`` could inherit the very bug
   whose absence it is supposed to certify; this rule is what makes a
   ``PROVED`` verdict worth more than the compiler's own say-so.

Scanned roots: ``src/repro`` (relative paths like ``ir/store.py``),
plus ``tools/`` and ``benchmarks/`` under those prefixes — so the
src-keyed rules (clock-injection, flag-trust, ...) cannot misfire on
them, while the everywhere-rules (audited-compile, legacy-isolation,
rewrite-isolation) do apply.  Tests are not linted.

Exit status 1 with ``file:line: rule message`` diagnostics on any
violation; 0 on a clean tree.  Stdlib only — runs anywhere.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: budget-governed packages (rule 2), relative to src/repro
CLOCK_GOVERNED = ("limits", "sat", "compile", "ir")

#: query-layer modules (rule 3), relative to src/repro
QUERY_LAYER = (
    "ir/kernel.py",
    "nnf/queries.py",
    "nnf/kernel.py",
    "sdd/queries.py",
    "obdd/ops.py",
    "psdd/queries.py",
    "wmc/pipeline.py",
    "wmc/arithmetic_circuit.py",
    "wmc/encoding.py",
    "wmc/sdp.py",
)

Violation = Tuple[Path, int, str, str]  # file, line, rule, message


def _module_level_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Imports outside any function body (class bodies and
    module-level ``if``/``try`` blocks still count: they execute at
    import time)."""
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            continue
        else:
            for child in ast.iter_child_nodes(node):
                stack.append(child)


def _is_legacy_name(name: str) -> bool:
    return "_legacy" in name


def check_legacy_isolation(path: Path, rel: str,
                           tree: ast.Module) -> Iterator[Violation]:
    if rel == "compat.py" or _is_legacy_name(Path(rel).stem):
        return
    for node in _module_level_imports(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "compat" or module.endswith(".compat") or \
                    module == "repro.compat":
                yield (path, node.lineno, "legacy-isolation",
                       "module-level import of repro.compat (use a "
                       "function-local import for lazy dispatch)")
                continue
            if _is_legacy_name(module):
                yield (path, node.lineno, "legacy-isolation",
                       f"module-level import of legacy module "
                       f"{module!r}")
                continue
            for alias in node.names:
                if _is_legacy_name(alias.name):
                    yield (path, node.lineno, "legacy-isolation",
                           f"module-level import of legacy name "
                           f"{alias.name!r}")
        else:
            for alias in node.names:
                if alias.name == "repro.compat" or \
                        _is_legacy_name(alias.name):
                    yield (path, node.lineno, "legacy-isolation",
                           f"module-level import of {alias.name!r}")


def check_clock_injection(path: Path, rel: str,
                          tree: ast.Module) -> Iterator[Violation]:
    if not rel.startswith(tuple(p + "/" for p in CLOCK_GOVERNED)):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr == "time" and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == "time":
                yield (path, node.lineno, "clock-injection",
                       "time.time() in a budget-governed module "
                       "(inject a clock via Budget(clock=...))")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    yield (path, node.lineno, "clock-injection",
                           "importing time.time in a budget-governed "
                           "module (inject a clock instead)")


def check_flag_trust(path: Path, rel: str,
                     tree: ast.Module) -> Iterator[Violation]:
    if rel not in QUERY_LAYER:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id.startswith("FLAG_"):
            yield (path, node.lineno, "flag-trust",
                   f"query-layer reference to {node.id} (property "
                   f"requirements go through repro.analyze.gate)")
        elif isinstance(node, ast.Attribute) and \
                node.attr in ("has_flag", "flags"):
            yield (path, node.lineno, "flag-trust",
                   f"query-layer read of .{node.attr} (trusting "
                   f"declared flags; go through repro.analyze.gate)")
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name.startswith("FLAG_"):
                    yield (path, node.lineno, "flag-trust",
                           f"query-layer import of {alias.name}")


#: the one function allowed to call compile()/exec() (rule 4)
AUDITED_COMPILE = ("ir/codegen.py", "audited_compile")


def check_audited_compile(path: Path, rel: str,
                          tree: ast.Module) -> Iterator[Violation]:
    allowed_file, allowed_func = AUDITED_COMPILE

    def scan(node: ast.AST, inside_audited: bool) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            here = inside_audited
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                here = rel == allowed_file and \
                    child.name == allowed_func
            if isinstance(child, ast.Call) and \
                    isinstance(child.func, ast.Name) and \
                    child.func.id in ("eval", "exec", "compile") and \
                    not here:
                yield (path, child.lineno, "audited-compile",
                       f"bare {child.func.id}() outside "
                       f"{allowed_file}:{allowed_func} — generated "
                       f"sources compile only through the audited, "
                       f"integrity-checked entry point")
            yield from scan(child, here)

    yield from scan(tree, False)


#: repro packages/modules the serving layer may import (rule 5) —
#: the facade, the store/kernel behind it, budgets, and perf
#: counters.  A prefix matches itself and any submodule.
SERVE_ALLOWED_PREFIXES = (
    "repro.serve",
    "repro.ir.facade",
    "repro.ir.store",
    "repro.ir.kernel",
    "repro.limits",
    "repro.perf",
)


def _serve_allowed(module: str) -> bool:
    if not (module == "repro" or module.startswith("repro.")):
        return True  # stdlib / third-party: not this rule's concern
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in SERVE_ALLOWED_PREFIXES)


def check_serve_isolation(path: Path, rel: str,
                          tree: ast.Module) -> Iterator[Violation]:
    parts = Path(rel).parts
    if "serve" not in parts[:-1]:
        return
    # dotted package of this file, rooted at repro (rel is relative
    # to src/repro): serve/app.py lives in package repro.serve
    package = ["repro", *parts[:-1]]
    for node in ast.walk(tree):  # lazy imports count too
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not _serve_allowed(alias.name):
                    yield (path, node.lineno, "serve-isolation",
                           f"serving layer imports engine internal "
                           f"{alias.name!r} (go through repro.ir."
                           f"facade / ArtifactStore / Budget)")
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package[:len(package) - (node.level - 1)]
                module = ".".join(base + ([node.module]
                                          if node.module else []))
            else:
                module = node.module or ""
            if not (module == "repro" or module.startswith("repro.")):
                continue
            for alias in node.names:
                # `from ..ir import facade` binds repro.ir.facade:
                # judge the bound name, not just the source module,
                # so allowed submodules pass and `from repro.ir
                # import compiler_guts` cannot smuggle one through
                candidate = f"{module}.{alias.name}"
                if not (_serve_allowed(module) or
                        _serve_allowed(candidate)):
                    yield (path, node.lineno, "serve-isolation",
                           f"serving layer imports engine internal "
                           f"{candidate!r} (go through repro.ir."
                           f"facade / ArtifactStore / Budget)")


#: repro packages/modules the proof checker may import (rule 7) — the
#: proof package itself, the CNF representation, and budgets.  No
#: engine internals: independence is the checker's whole value.
PROOF_ALLOWED_PREFIXES = (
    "repro.proof",
    "repro.logic",
    "repro.limits",
)


def _proof_allowed(module: str) -> bool:
    if not (module == "repro" or module.startswith("repro.")):
        return True  # stdlib: not this rule's concern
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in PROOF_ALLOWED_PREFIXES)


def check_proof_isolation(path: Path, rel: str,
                          tree: ast.Module) -> Iterator[Violation]:
    parts = Path(rel).parts
    if not parts or parts[0] != "proof" or len(parts) < 2:
        return
    package = ["repro", *parts[:-1]]
    for node in ast.walk(tree):  # lazy imports count too
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not _proof_allowed(alias.name):
                    yield (path, node.lineno, "proof-isolation",
                           f"proof checker imports engine module "
                           f"{alias.name!r} (only repro.logic / "
                           f"repro.limits keep the checker "
                           f"independent of what it audits)")
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package[:len(package) - (node.level - 1)]
                module = ".".join(base + ([node.module]
                                          if node.module else []))
            else:
                module = node.module or ""
            if not (module == "repro" or module.startswith("repro.")):
                continue
            for alias in node.names:
                candidate = f"{module}.{alias.name}"
                if not (_proof_allowed(module) or
                        _proof_allowed(candidate)):
                    yield (path, node.lineno, "proof-isolation",
                           f"proof checker imports engine module "
                           f"{candidate!r} (only repro.logic / "
                           f"repro.limits keep the checker "
                           f"independent of what it audits)")


#: modules allowed to construct CircuitIR/IrBuilder (rule 6),
#: relative to src/repro
REWRITE_ALLOWED = (
    "ir/core.py",
    "ir/lower.py",
    "ir/serialize.py",
    "ir/passes.py",
    "analyze/repair.py",  # migration shim; delegates to ir/passes
)


def check_rewrite_isolation(path: Path, rel: str,
                            tree: ast.Module) -> Iterator[Violation]:
    if rel in REWRITE_ALLOWED:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id in ("IrBuilder", "CircuitIR"):
            yield (path, node.lineno, "rewrite-isolation",
                   f"{node.func.id}() outside the sanctioned rewrite "
                   f"modules ({', '.join(REWRITE_ALLOWED)}) — circuit "
                   f"rewrites belong in repro.ir.passes, behind the "
                   f"certification gate")


def collect_violations(src_root: Path,
                       extra_roots: "List[Tuple[Path, str]]" = []
                       ) -> List[Violation]:
    """Lint ``src_root`` (rel paths rooted at it) plus any ``(root,
    prefix)`` extras, whose rel paths are namespaced under
    ``prefix/`` so src-keyed rules cannot match them by accident."""
    sources: List[Tuple[Path, str]] = []
    for path in sorted(Path(src_root).rglob("*.py")):
        sources.append((path, path.relative_to(src_root).as_posix()))
    for root, prefix in extra_roots:
        for path in sorted(Path(root).rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            sources.append((path, f"{prefix}/{rel}"))
    violations: List[Violation] = []
    for path, rel in sources:
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as error:
            violations.append((path, error.lineno or 0, "parse",
                               f"syntax error: {error.msg}"))
            continue
        violations.extend(check_legacy_isolation(path, rel, tree))
        violations.extend(check_clock_injection(path, rel, tree))
        violations.extend(check_flag_trust(path, rel, tree))
        violations.extend(check_audited_compile(path, rel, tree))
        violations.extend(check_serve_isolation(path, rel, tree))
        violations.extend(check_rewrite_isolation(path, rel, tree))
        violations.extend(check_proof_isolation(path, rel, tree))
    return violations


def main(argv: List[str]) -> int:
    repo = Path(__file__).resolve().parent.parent
    root = Path(argv[1]) if len(argv) > 1 else repo / "src" / "repro"
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    extras = []
    if len(argv) <= 1:  # default layout: lint tools + benchmarks too
        for name in ("tools", "benchmarks"):
            if (repo / name).is_dir():
                extras.append((repo / name, name))
    violations = collect_violations(root, extras)
    for path, line, rule, message in violations:
        print(f"{path}:{line}: [{rule}] {message}")
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    scanned = ", ".join([str(root)] + [str(r) for r, _ in extras])
    print(f"invariant lint clean: {scanned}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
