#!/usr/bin/env python3
"""CI gate for proof-logged compilation.

Compiles a small CNF corpus — handcrafted edge cases plus randomized
3-CNFs — with ``repro compile --proof`` (the real CLI, one subprocess
per instance, exercising the store path: trace sidecar, independent
replay, digest binding, ``.cert`` memoisation) and requires every
verdict to be ``PROVED`` with exit code 0.  A single ``REFUTED``
(exit 5) or ``INCOMPLETE`` (exit 3) fails the job.

The corpus is compiled once per requested backend value so the job
covers both ``REPRO_BACKEND=codegen`` and ``interp`` deployments; a
second pass over a warm store additionally checks the memoised
verdict still answers ``repro check --proof`` with exit 0.

Stdlib + the installed ``repro`` package only — no test framework, so
it can run as a bare CI step.

Usage::

    python tools/proof_check.py [--random 25] [--seed 17]
        [--backends codegen,interp]
"""

from __future__ import annotations

import argparse
import os
import random
import subprocess
import sys
import tempfile

#: handcrafted shapes the checker's step grammar must close over:
#: tautologies, unsat roots, unit cascades, disjoint components,
#: cache-heavy repetition
EDGE_CASES = [
    "p cnf 3 0\n",
    "p cnf 2 1\n0\n",
    "p cnf 2 2\n1 0\n2 0\n",
    "p cnf 1 2\n1 0\n-1 0\n",
    "p cnf 3 2\n1 -1 0\n2 3 0\n",
    "p cnf 4 2\n1 2 0\n3 4 0\n",
    "p cnf 4 3\n1 2 0\n-2 3 0\n3 -4 0\n",
    "p cnf 4 4\n1 2 0\n3 4 0\n-1 3 4 0\n-2 3 4 0\n",
]


def random_corpus(count: int, seed: int) -> list:
    rng = random.Random(seed)
    corpus = []
    for _ in range(count):
        num_vars = rng.randint(2, 10)
        lines = []
        clauses = rng.randint(1, 3 * num_vars)
        for _ in range(clauses):
            width = rng.randint(1, 3)
            lits = [rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(width)]
            lines.append(" ".join(str(l) for l in lits) + " 0")
        corpus.append(f"p cnf {num_vars} {clauses}\n"
                      + "\n".join(lines) + "\n")
    return corpus


def run_cli(args: list, backend: str) -> "subprocess.CompletedProcess":
    env = dict(os.environ)
    env["REPRO_BACKEND"] = backend
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          env=env, capture_output=True, text=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--random", type=int, default=25,
                        help="randomized instances per backend")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--backends", default="codegen,interp",
                        help="comma-separated REPRO_BACKEND values")
    args = parser.parse_args(argv)

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    failures = 0
    for backend in backends:
        corpus = EDGE_CASES + random_corpus(args.random, args.seed)
        with tempfile.TemporaryDirectory(prefix="repro-proof-") as work:
            cache = os.path.join(work, "cache")
            for index, dimacs in enumerate(corpus):
                path = os.path.join(work, f"i{index}.cnf")
                with open(path, "w") as handle:
                    handle.write(dimacs)
                compiled = run_cli(
                    ["compile", path, "--proof", "--cache-dir", cache],
                    backend)
                rechecked = run_cli(
                    ["check", path, "--proof", "--cache-dir", cache],
                    backend)
                ok = compiled.returncode == 0 and \
                    rechecked.returncode == 0
                if not ok:
                    failures += 1
                    print(f"FAIL backend={backend} instance={index} "
                          f"compile_rc={compiled.returncode} "
                          f"check_rc={rechecked.returncode}")
                    print((compiled.stdout + compiled.stderr +
                           rechecked.stdout + rechecked.stderr)[-2000:])
        print(f"backend={backend}: {len(corpus)} instances "
              f"compiled + proof-checked")
    if failures:
        print(f"proof check FAILED: {failures} refuted/incomplete")
        return 1
    print(f"proof check clean: {len(backends)} backend(s), "
          f"zero refutations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
