#!/usr/bin/env python3
"""End-to-end smoke test for the compilation service.

Starts a real ``repro serve`` subprocess on an OS-assigned port,
fires a 50-request mixed burst (duplicate-heavy compiles followed by
count/WMC queries) through :func:`repro.serve.loadgen.run_load`, and
asserts the two service-level invariants CI cares about:

* in-flight dedup actually collapsed duplicate compiles
  (``dedup_hit_rate`` > 0), and
* the server answered every request without a 5xx.

Then SIGTERMs the server and requires a clean exit.  Stdlib + the
installed ``repro`` package only — no test framework, so it can run
as a bare CI step.

Usage::

    python tools/serve_smoke.py [--requests 50] [--workers 2]
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time


def start_server(workers: int, cache_dir: str) -> "tuple[subprocess.Popen, str, int]":
    """Launch ``repro serve`` and wait for its listening banner."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", str(workers), "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 60.0
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before listening (rc={proc.wait()})")
        sys.stdout.write(line)
        if line.startswith("c serve listening"):
            _, _, _, host, port = line.split()
            return proc, host, int(port)
    proc.kill()
    raise SystemExit("server never printed its listening banner")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=50,
                        help="total burst size (compiles + queries)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.serve.loadgen import run_load

    # duplicate-heavy mix: 3 distinct CNFs x 8 submissions = 24
    # compiles, remainder queries — 50 requests at the defaults
    distinct, duplicates = 3, 8
    queries = max(args.requests - distinct * duplicates, 1)

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as cache:
        proc, host, port = start_server(args.workers, cache)
        try:
            report = run_load(host, port, distinct=distinct,
                              duplicates=duplicates, queries=queries,
                              threads=4, num_vars=20, num_clauses=50,
                              seed=11, deadline_s=30.0)
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                rc = proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                rc = -9

    report.pop("server_stats", None)
    print(json.dumps(report, indent=2, sort_keys=True))

    failures = []
    if report["server_5xx"] != 0:
        failures.append(f"server answered {report['server_5xx']} 5xx")
    if not report["dedup_hit_rate"] > 0:
        failures.append("duplicate compiles were not deduplicated")
    if report["failures"]:
        failures.append(f"client-side failures: {report['failures']}")
    if rc != 0:
        failures.append(f"server exited {rc} on SIGTERM, expected 0")
    for failure in failures:
        print(f"SMOKE FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"serve smoke ok: {report['requests']} requests, "
          f"dedup {report['dedup_hit_rate']:.2f}, zero 5xx, "
          f"clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
